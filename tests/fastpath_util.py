"""Back-compat shim: the scenario runner now lives in the package.

The fast-path differential and golden-trace suites predate
:mod:`repro.net.scenario`; the runner moved into the package so the
double-run determinism gate (:mod:`repro.analysis.static.doublerun`) can
execute the same scenarios in clean subprocesses.  This module re-exports
the public names so older imports keep working.
"""

from __future__ import annotations

from repro.net.scenario import (  # noqa: F401 - re-exports
    GOLDEN_SCENARIOS,
    SERVICES,
    counters_snapshot,
    run_scenario,
)
