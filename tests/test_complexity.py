"""Table 2 reproduction at test granularity: measured == closed form."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import (
    dfs_message_count,
    echo_message_count,
    priocast_message_count,
    table2,
    table2_row,
    tag_bits_estimate,
    ttl_search_probes,
)
from repro.core.runtime import SmartSouthRuntime
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi


def runtime_on(n=12, p=0.3, seed=21, mode="interpreted"):
    topo = erdos_renyi(n, p, seed=seed)
    return SmartSouthRuntime(Network(topo), mode=mode), topo


class TestClosedForms:
    def test_dfs_count_formula(self):
        # Tree: 2(n-1); each extra edge adds 4.
        assert dfs_message_count(5, 4) == 8
        assert dfs_message_count(5, 5) == 12

    def test_echo_count(self):
        assert echo_message_count(5, 7) == 28

    def test_priocast_is_double(self):
        assert priocast_message_count(9, 20) == 2 * dfs_message_count(9, 20)

    def test_ttl_probe_budget_logarithmic(self):
        assert ttl_search_probes(16) < ttl_search_probes(4096)
        assert ttl_search_probes(4096) <= 18

    def test_row_lookup(self):
        assert table2_row("snap").service == "Snapshot"
        assert table2_row("critical").exact_out_band(10, 20) == 2
        with pytest.raises(KeyError):
            table2_row("nope")

    def test_six_rows(self):
        assert len(table2()) == 6

    def test_tag_bits(self):
        assert tag_bits_estimate(10, 3) == 10 * 2 * 2


class TestMeasuredAgainstTable2:
    def test_snapshot_row(self, engine_mode):
        runtime, topo = runtime_on(mode=engine_mode)
        row = table2_row("Snapshot")
        outcome = runtime.snapshot(0)
        n, e = topo.num_nodes, topo.num_edges
        assert outcome.result.out_band_messages == row.exact_out_band(n, e)
        assert outcome.result.in_band_messages == row.exact_in_band(n, e)

    def test_anycast_row(self, engine_mode):
        runtime, topo = runtime_on(mode=engine_mode)
        row = table2_row("Anycast")
        result = runtime.anycast(0, 1, {1: {topo.num_nodes - 1}})
        n, e = topo.num_nodes, topo.num_edges
        assert result.out_band_messages == row.exact_out_band(n, e)
        assert result.in_band_messages <= row.exact_in_band(n, e)

    def test_anycast_worst_case_tight(self, engine_mode):
        # No member: the traversal is a full DFS, matching the bound exactly.
        runtime, topo = runtime_on(mode=engine_mode)
        result = runtime.anycast(0, 1, {1: set()})
        assert result.in_band_messages == dfs_message_count(
            topo.num_nodes, topo.num_edges
        )

    def test_priocast_row(self, engine_mode):
        runtime, topo = runtime_on(mode=engine_mode)
        row = table2_row("Priocast")
        result = runtime.priocast(0, 1, {1: {topo.num_nodes - 1: 9}})
        n, e = topo.num_nodes, topo.num_edges
        assert result.out_band_messages == 0
        assert result.in_band_messages <= row.exact_in_band(n, e)

    def test_blackhole_counters_row(self, engine_mode):
        runtime, topo = runtime_on(mode=engine_mode)
        row = table2_row("Blackhole 2")
        verdict = runtime.detect_blackhole_smart(0)
        n, e = topo.num_nodes, topo.num_edges
        assert verdict.out_band_messages == row.exact_out_band(n, e)
        assert verdict.in_band_messages == row.exact_in_band(n, e)

    def test_blackhole_ttl_row(self, engine_mode):
        topo = erdos_renyi(12, 0.3, seed=21)
        net = Network(topo)
        net.links[4].set_blackhole()
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        row = table2_row("Blackhole 1")
        verdict = runtime.detect_blackhole_ttl(0)
        n, e = topo.num_nodes, topo.num_edges
        assert verdict.out_band_messages <= row.exact_out_band(n, e)
        assert verdict.in_band_messages <= row.exact_in_band(n, e)

    def test_critical_row(self, engine_mode):
        runtime, topo = runtime_on(mode=engine_mode)
        row = table2_row("Critical")
        outcome = runtime.critical(0)
        n, e = topo.num_nodes, topo.num_edges
        assert outcome.result.out_band_messages == row.exact_out_band(n, e)
        assert outcome.result.in_band_messages <= row.exact_in_band(n, e)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 16), st.integers(0, 300))
    def test_all_bounds_hold_on_random_graphs(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        e = topo.num_edges
        runtime = SmartSouthRuntime(Network(topo))
        snap = runtime.snapshot(0)
        assert snap.result.in_band_messages == dfs_message_count(n, e)
        verdict = runtime.detect_blackhole_smart(0)
        assert verdict.in_band_messages == echo_message_count(
            n, e
        ) + dfs_message_count(n, e)
