"""The seeded chaos-campaign harness and its CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.net.chaos import (
    DEGRADED_CORRECT,
    HUNG,
    PROFILES,
    RECOVERED,
    SERVICES,
    TOPOLOGIES,
    WRONG_RESULT,
    CampaignReport,
    ChaosConfig,
    RunRecord,
    run_campaign,
    run_one,
)


class TestChaosConfig:
    def test_defaults_valid(self):
        ChaosConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"runs": 0},
            {"services": ("snapshot", "nope")},
            {"topologies": ("torus3x3", "nope")},
            {"profiles": ("nope",)},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosConfig(**kwargs).validate()

    def test_stock_menus_cover_the_paper(self):
        assert set(SERVICES) == {"snapshot", "anycast", "blackhole", "critical"}
        assert set(TOPOLOGIES) == {"torus3x3", "complete5"}
        assert set(PROFILES) == {
            "lossy", "partition", "blackhole",
            "ctrl-lossy", "ctrl-flap", "ctrl-crash",
            "sw-crash", "sw-flap", "table-pressure",
        }


class TestRunOne:
    def test_seeded_run_is_deterministic(self):
        a = run_one(0, "snapshot", "torus3x3", "lossy", run_seed=42)
        b = run_one(0, "snapshot", "torus3x3", "lossy", run_seed=42)
        assert a.to_dict() == b.to_dict()

    def test_record_carries_fault_plan(self):
        record = run_one(0, "snapshot", "complete5", "lossy", run_seed=3)
        assert record.outcome in (RECOVERED, DEGRADED_CORRECT)
        for fault in record.faults:
            kind = fault.split(":")[0]
            assert kind in ("loss", "blackhole", "fail", "dup", "jitter",
                            "disconnect")

    def test_blackhole_service_skips_visible_mid_failures(self):
        # §3.3 premise: failover masks visible failures before the sweep.
        for seed in range(12):
            record = run_one(0, "blackhole", "torus3x3", "partition", seed)
            assert not any(f.startswith("fail:") for f in record.faults)


class TestCampaign:
    def test_small_campaign_meets_the_bar(self):
        report = run_campaign(ChaosConfig(runs=24, seed=5))
        counts = report.outcome_counts()
        assert sum(counts.values()) == 24
        assert counts[WRONG_RESULT] == 0
        assert counts[HUNG] == 0
        assert report.ok

    def test_round_robin_covers_the_grid(self):
        report = run_campaign(ChaosConfig(runs=24, seed=1))
        combos = {(r.service, r.topology, r.profile) for r in report.records}
        assert len(combos) == 24  # 4 services x 2 topologies x 3 profiles

    def test_same_seed_byte_identical_json(self):
        config = ChaosConfig(runs=12, seed=8)
        assert run_campaign(config).to_json() == run_campaign(config).to_json()

    def test_different_seed_differs(self):
        a = run_campaign(ChaosConfig(runs=12, seed=0))
        b = run_campaign(ChaosConfig(runs=12, seed=1))
        assert a.to_json() != b.to_json()

    def test_report_verdict_logic(self):
        config = ChaosConfig(runs=1)
        ok = CampaignReport(config=config, records=[
            RunRecord(0, "snapshot", "torus3x3", "lossy", 0, 0, [], RECOVERED),
        ])
        assert ok.ok
        lied = CampaignReport(config=config, records=[
            RunRecord(0, "snapshot", "torus3x3", "lossy", 0, 0, [], WRONG_RESULT),
        ])
        assert not lied.ok
        hung = CampaignReport(config=config, records=[
            RunRecord(0, "snapshot", "torus3x3", "lossy", 0, 0, [], HUNG),
        ])
        assert not hung.ok

    def test_summary_mentions_every_outcome_class(self):
        report = run_campaign(ChaosConfig(runs=6, seed=2))
        text = report.format_summary()
        for token in ("recovered", "degraded-correct", "wrong-result", "hung",
                      "verdict:"):
            assert token in text


class TestChaosCli:
    def test_cli_summary_and_exit_code(self, capsys):
        code = cli_main(["chaos", "--runs", "6", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos campaign: 6 runs, seed 3" in out
        assert "verdict: OK" in out

    def test_cli_json_report(self, capsys, tmp_path):
        out_file = tmp_path / "report.json"
        code = cli_main([
            "chaos", "--runs", "6", "--seed", "3", "--json",
            "--json-out", str(out_file),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["records"]) == 6
        assert json.loads(out_file.read_text()) == payload

    def test_cli_subset_filters(self, capsys):
        code = cli_main([
            "chaos", "--runs", "4", "--services", "anycast",
            "--topologies", "complete5", "--profiles", "lossy",
        ])
        assert code == 0
        assert "anycast" in capsys.readouterr().out

    def test_cli_rejects_unknown_service(self):
        with pytest.raises(SystemExit):
            cli_main(["chaos", "--runs", "2", "--services", "nope"])


class TestControlPlaneProfiles:
    def test_ctrl_lossy_plans_channel_faults(self):
        record = run_one(0, "snapshot", "torus3x3", "ctrl-lossy", run_seed=1)
        assert any(f.startswith("channel:") for f in record.faults)
        assert record.outcome in (RECOVERED, DEGRADED_CORRECT)

    def test_ctrl_flap_plans_flap_windows(self):
        record = run_one(0, "snapshot", "torus3x3", "ctrl-flap", run_seed=1)
        assert any(f.startswith("flap:") for f in record.faults)

    def test_ctrl_crash_runs_fire_resync(self):
        # Over a seed sweep, at least one crash fires mid-run, and every
        # fired crash produces a converged resync with an epoch jump.
        fired = 0
        for seed in range(12):
            record = run_one(0, "snapshot", "torus3x3", "ctrl-crash", seed)
            assert record.outcome in (RECOVERED, DEGRADED_CORRECT), (
                record.reason
            )
            resync = record.detail.get("resync")
            if resync is None:
                continue
            fired += 1
            assert resync["converged"]
            before, after = resync["epoch_jump"]
            assert after != before
        assert fired > 0

    def test_anycast_is_control_plane_immune(self):
        # Anycast delivery needs no management plane at all: a crash run
        # cannot even schedule the crash (channel is None by construction).
        for seed in range(6):
            record = run_one(0, "anycast", "complete5", "ctrl-crash", seed)
            assert not any(
                f.startswith("ctrl-crash@") for f in record.faults
            )

    def test_control_runs_are_seed_deterministic(self):
        for profile in ("ctrl-lossy", "ctrl-flap", "ctrl-crash"):
            a = run_one(0, "snapshot", "torus3x3", profile, run_seed=7)
            b = run_one(0, "snapshot", "torus3x3", profile, run_seed=7)
            assert a.to_dict() == b.to_dict()


class TestControlPlaneOracles:
    def test_outage_liveness_holds_on_stock_topologies(self):
        from repro.net.chaos import check_outage_liveness

        for topology in ("torus3x3", "complete5"):
            assert check_outage_liveness(0, topology) == []

    def test_resync_problems_flags_missing_jump(self):
        from repro.control.supervisor import ResyncReport
        from repro.net.chaos import resync_problems

        stuck = ResyncReport(
            converged=True, rounds=1, epoch_before=5, epoch_after=5,
            relearned_nodes={0}, relearned_links=set(),
            topology_degraded=False,
        )
        assert any("epoch" in p for p in resync_problems(stuck))

    def test_resync_problems_flags_divergence(self):
        from repro.control.supervisor import ResyncReport
        from repro.net.chaos import resync_problems

        diverged = ResyncReport(
            converged=False, rounds=3, epoch_before=5, epoch_after=8,
            relearned_nodes={0}, relearned_links=set(),
            topology_degraded=False,
        )
        assert any("converge" in p for p in resync_problems(diverged))
        clean = ResyncReport(
            converged=True, rounds=1, epoch_before=5, epoch_after=8,
            relearned_nodes={0}, relearned_links=set(),
            topology_degraded=False,
        )
        assert resync_problems(clean) == []


class TestControlCampaign:
    def test_small_control_campaign_meets_the_bar(self):
        from repro.net.chaos import run_control_campaign

        report = run_control_campaign(runs=24, seed=3)
        counts = report.outcome_counts()
        assert counts[WRONG_RESULT] == 0
        assert counts[HUNG] == 0
        assert report.outage_liveness is not None
        assert all(not v for v in report.outage_liveness.values())
        assert report.ok

    def test_liveness_failure_flips_the_verdict(self):
        from repro.net.chaos import ChaosConfig as _Config

        report = CampaignReport(config=_Config(runs=1), records=[
            RunRecord(0, "snapshot", "torus3x3", "lossy", 0, 0, [], RECOVERED),
        ])
        assert report.ok
        report.outage_liveness = {"torus3x3": ["snapshot hung"]}
        assert not report.ok
        assert "outage-liveness" in report.format_summary()

    def test_control_campaign_byte_identical(self):
        from repro.net.chaos import run_control_campaign

        assert (
            run_control_campaign(runs=18, seed=4).to_json()
            == run_control_campaign(runs=18, seed=4).to_json()
        )


class TestControlCli:
    def test_cli_control_flag(self, capsys):
        code = cli_main(["chaos", "--runs", "18", "--seed", "2", "--control"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outage-liveness" in out
        assert "verdict: OK" in out

    def test_cli_control_json_carries_liveness(self, capsys):
        code = cli_main([
            "chaos", "--runs", "9", "--seed", "2", "--control", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert set(payload["outage_liveness"]) == {"torus3x3", "complete5"}
        assert all(not v for v in payload["outage_liveness"].values())
        from repro.net.chaos import CONTROL_PROFILES

        assert {r["profile"] for r in payload["records"]} <= set(
            CONTROL_PROFILES
        )


class TestSwitchPlaneProfiles:
    def test_sw_crash_plans_victim_and_outage(self):
        record = run_one(0, "snapshot", "torus3x3", "sw-crash", run_seed=1)
        assert any(f.startswith("sw-crash:") for f in record.faults)
        assert record.outcome in (RECOVERED, DEGRADED_CORRECT)

    def test_sw_flap_plans_cycles(self):
        record = run_one(0, "snapshot", "torus3x3", "sw-flap", run_seed=1)
        flaps = [f for f in record.faults if f.startswith("sw-flap:")]
        assert flaps and "down" in flaps[0] and "up" in flaps[0]

    def test_table_pressure_records_eviction_stats(self):
        fired = 0
        for seed in range(8):
            record = run_one(
                0, "snapshot", "torus3x3", "table-pressure", seed
            )
            assert record.outcome in (RECOVERED, DEGRADED_CORRECT), (
                record.reason
            )
            stats = record.detail.get("table_pressure")
            if stats is None:
                continue
            fired += 1
            assert stats["installed"] <= stats["capacity"]
            assert (
                stats["installed"] + stats["rejected"] + stats["evicted"]
                >= stats["capacity"]
            )
        assert fired > 0

    def test_switch_runs_carry_readopt_oracle(self):
        converged = 0
        for seed in range(8):
            record = run_one(0, "snapshot", "torus3x3", "sw-crash", seed)
            readopt = record.detail.get("readopt")
            assert readopt is not None
            assert readopt["converged"]
            assert not readopt["dark"]
            converged += 1
            if readopt["reprogrammed"]:
                # The retry ledger audits every attempt of the recovery.
                assert sum(readopt["ledger"].values()) > 0
        assert converged == 8

    def test_blackhole_is_exempt_from_switch_faults(self):
        # Blackhole detection builds a fresh engine per attempt, so there
        # is no persistent switch whose recovery the oracle could observe.
        for seed in range(4):
            record = run_one(0, "blackhole", "torus3x3", "sw-crash", seed)
            assert not any(f.startswith("sw-") for f in record.faults)
            assert "readopt" not in record.detail

    def test_switch_runs_are_seed_deterministic(self):
        for profile in ("sw-crash", "sw-flap", "table-pressure"):
            a = run_one(0, "snapshot", "torus3x3", profile, run_seed=7)
            b = run_one(0, "snapshot", "torus3x3", profile, run_seed=7)
            assert a.to_dict() == b.to_dict()


class TestSwitchPlaneOracles:
    def test_readopt_problems_flags_divergence_and_dark(self):
        from repro.control.supervisor import ReadoptReport
        from repro.net.chaos import readopt_problems

        diverged = ReadoptReport(
            converged=False, rounds=4, drifted_nodes=[2]
        )
        assert any("converge" in p for p in readopt_problems(diverged))
        dark = ReadoptReport(converged=True, rounds=1, dark_nodes=[3])
        assert any("dark" in p for p in readopt_problems(dark))
        clean = ReadoptReport(converged=True, rounds=1)
        assert readopt_problems(clean) == []


class TestSwitchCampaign:
    def test_small_switch_campaign_meets_the_bar(self):
        from repro.net.chaos import run_switch_campaign

        report = run_switch_campaign(runs=18, seed=3)
        counts = report.outcome_counts()
        assert counts[WRONG_RESULT] == 0
        assert counts[HUNG] == 0
        assert report.ok

    def test_switch_campaign_byte_identical(self):
        from repro.net.chaos import run_switch_campaign

        assert (
            run_switch_campaign(runs=12, seed=4).to_json()
            == run_switch_campaign(runs=12, seed=4).to_json()
        )

    def test_switch_config_uses_switch_profiles(self):
        from repro.net.chaos import SWITCH_PROFILES, switch_plane_config

        config = switch_plane_config(runs=9, seed=0)
        assert config.profiles == SWITCH_PROFILES
        config.validate()


class TestReplay:
    def test_replay_reproduces_a_recorded_run(self):
        from repro.net.chaos import replay_run, switch_plane_config

        report = run_campaign(switch_plane_config(runs=6, seed=5))
        payload = json.loads(report.to_json())
        record, mismatches = replay_run(payload, 3)
        assert mismatches == []
        assert record.to_dict() == payload["records"][3]

    def test_replay_rejects_unknown_run(self):
        from repro.net.chaos import replay_run

        report = run_campaign(ChaosConfig(runs=2))
        with pytest.raises(ValueError):
            replay_run(json.loads(report.to_json()), 99)

    def test_replay_reports_divergence(self):
        from repro.net.chaos import replay_run

        report = run_campaign(ChaosConfig(runs=2))
        payload = json.loads(report.to_json())
        payload["records"][1]["outcome"] = "wrong-result"
        _record, mismatches = replay_run(payload, 1)
        assert any("outcome" in m for m in mismatches)


class TestSwitchCli:
    def test_cli_switch_flag(self, capsys):
        code = cli_main(["chaos", "--runs", "9", "--seed", "2", "--switch"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: OK" in out

    def test_cli_switch_json_uses_switch_profiles(self, capsys):
        from repro.net.chaos import SWITCH_PROFILES

        code = cli_main([
            "chaos", "--runs", "9", "--seed", "2", "--switch", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert {r["profile"] for r in payload["records"]} <= set(
            SWITCH_PROFILES
        )

    def test_cli_replay_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "campaign.json"
        assert cli_main([
            "chaos", "--runs", "6", "--seed", "5", "--switch",
            "--json-out", str(out_file),
        ]) == 0
        capsys.readouterr()
        code = cli_main([
            "chaos", "--replay", str(out_file), "--run", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "matched the record" in out

    def test_cli_replay_needs_run_index(self, tmp_path):
        out_file = tmp_path / "campaign.json"
        out_file.write_text("{}")
        with pytest.raises(SystemExit):
            cli_main(["chaos", "--replay", str(out_file)])
