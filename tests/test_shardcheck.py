"""The interprocedural effect & ownership analyzer, end to end.

The corpus under ``tests/fixtures/shardcheck/`` pins precision *and*
recall for the EFF/SHARD rules the same way the sancheck corpus does for
the per-site rules: every line marked ``# expect[RULE]`` must be flagged
by exactly that rule, and no unmarked line may be flagged at all.  The
remaining tests cover call-graph edge resolution (the analyzer's load
bearing wall), the effect fixpoint and its manifest masking, the gate on
the repo itself (zero unbaselined findings, ≥90% resolution), and the
CLI surface.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis.static import build_models
from repro.analysis.static.baseline import SHARD_BASELINE_NAME
from repro.analysis.static.callgraph import EXTERNAL, RESOLVED, UNRESOLVED
from repro.analysis.static.runner import (
    EFFECTS_NAME,
    SanConfig,
    analyze_program,
    load_effects,
    run_shardcheck,
)
from repro.analysis.static.shardrules import IPA_RULES

FIXTURES = Path(__file__).parent / "fixtures" / "shardcheck"
REPO_ROOT = Path(__file__).parent.parent

_EXPECT_RE = re.compile(r"#\s*expect\[([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]")


def corpus_expectations() -> set[tuple[str, int, str]]:
    """(file, line, rule) triples the corpus demands, from its markers."""
    expected: set[tuple[str, int, str]] = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, text in enumerate(path.read_text().splitlines(), 1):
            match = _EXPECT_RE.search(text)
            if match:
                for rule in match.group(1).split(","):
                    expected.add((path.name, lineno, rule.strip()))
    return expected


def corpus_findings() -> set[tuple[str, int, str]]:
    models = build_models(FIXTURES, rel_base=FIXTURES)
    committed = load_effects(FIXTURES / "effects.json")
    findings, _, _, _ = analyze_program(models, committed_effects=committed)
    return {(f.path, f.line, f.rule) for f in findings if f.active}


def analyze_sources(tmp_path: Path, sources: dict[str, str], committed=None):
    """Build a little program from (filename -> source) and analyze it."""
    for name, text in sources.items():
        (tmp_path / name).write_text(textwrap.dedent(text))
    models = build_models(tmp_path, rel_base=tmp_path)
    return analyze_program(models, committed_effects=committed)


def edges_of(program, caller_fqn: str):
    return list(program.edges.get(caller_fqn, []))


class TestCorpus:
    def test_recall_every_marked_line_is_caught(self):
        missed = corpus_expectations() - corpus_findings()
        assert not missed, f"true positives the analyzer missed: {sorted(missed)}"

    def test_precision_no_benign_line_is_flagged(self):
        extra = corpus_findings() - corpus_expectations()
        assert not extra, f"benign look-alikes falsely flagged: {sorted(extra)}"

    def test_corpus_exercises_every_registered_rule(self):
        covered = {rule for _, _, rule in corpus_expectations()}
        assert covered == set(IPA_RULES), (
            "every interprocedural rule needs at least one true positive "
            f"in the corpus; missing: {sorted(set(IPA_RULES) - covered)}"
        )

    def test_corpus_has_benign_lookalikes(self):
        for path in sorted(FIXTURES.glob("*.py")):
            assert "def good_" in path.read_text(), (
                f"{path.name} has no benign look-alike functions"
            )

    def test_corpus_resolves_fully(self):
        # The corpus is written to be statically resolvable: a parse or
        # import regression shows up here as a resolution drop.
        models = build_models(FIXTURES, rel_base=FIXTURES)
        _, _, program, _ = analyze_program(models)
        assert program.resolution_stats()["unresolved"] == 0


class TestCallGraph:
    def test_module_function_call_resolves(self, tmp_path):
        _, _, program, _ = analyze_sources(
            tmp_path,
            {
                "a.py": """
                def callee():
                    return 1

                def caller():
                    return callee()
                """
            },
        )
        edges = edges_of(program, "a.caller")
        assert [(e.status, e.target) for e in edges] == [
            (RESOLVED, "a.callee")
        ]

    def test_method_call_through_self_resolves(self, tmp_path):
        _, _, program, _ = analyze_sources(
            tmp_path,
            {
                "a.py": """
                class C:
                    def helper(self):
                        return 1

                    def run(self):
                        return self.helper()
                """
            },
        )
        edges = edges_of(program, "a.C.run")
        assert [(e.status, e.target) for e in edges] == [
            (RESOLVED, "a.C.helper")
        ]

    def test_inherited_method_resolves_across_modules(self, tmp_path):
        _, _, program, _ = analyze_sources(
            tmp_path,
            {
                "base.py": """
                class Base:
                    def ping(self):
                        return "pong"
                """,
                "child.py": """
                from base import Base

                class Child(Base):
                    def run(self):
                        return self.ping()
                """,
            },
        )
        edges = edges_of(program, "child.Child.run")
        assert [(e.status, e.target) for e in edges] == [
            (RESOLVED, "base.Base.ping")
        ]

    def test_imported_module_function_resolves(self, tmp_path):
        _, _, program, _ = analyze_sources(
            tmp_path,
            {
                "util.py": """
                def helper():
                    return 1
                """,
                "app.py": """
                from util import helper

                def go():
                    return helper()
                """,
            },
        )
        edges = edges_of(program, "app.go")
        assert [(e.status, e.target) for e in edges] == [
            (RESOLVED, "util.helper")
        ]

    def test_typed_attr_method_call_resolves(self, tmp_path):
        _, _, program, _ = analyze_sources(
            tmp_path,
            {
                "a.py": """
                class Engine:
                    def start(self):
                        return True

                def boot(engine: Engine):
                    return engine.start()
                """
            },
        )
        edges = edges_of(program, "a.boot")
        assert [(e.status, e.target) for e in edges] == [
            (RESOLVED, "a.Engine.start")
        ]

    def test_stdlib_call_is_external_not_unresolved(self, tmp_path):
        _, _, program, _ = analyze_sources(
            tmp_path,
            {
                "a.py": """
                import math

                def area(r):
                    return math.pi * math.pow(r, 2)
                """
            },
        )
        statuses = {e.status for e in edges_of(program, "a.area")}
        assert statuses == {EXTERNAL}
        assert program.resolution_stats()["unresolved"] == 0

    def test_dynamic_call_is_counted_not_dropped(self, tmp_path):
        _, _, program, _ = analyze_sources(
            tmp_path,
            {
                "a.py": """
                def go(callbacks):
                    return callbacks[0]()
                """
            },
        )
        stats = program.resolution_stats()
        assert stats["unresolved"] == 1
        sites = program.unresolved_sites()
        assert len(sites) == 1
        entry = sites[0].to_dict()
        assert entry["caller"] == "a.go"
        assert entry["status"] == UNRESOLVED
        assert entry["reason"], "unresolved edges must say why"
        assert entry["line"] > 0

    def test_resolution_rate_counts_all_sites(self, tmp_path):
        _, _, program, _ = analyze_sources(
            tmp_path,
            {
                "a.py": """
                def known():
                    return 1

                def go(handlers):
                    known()
                    return handlers[0]()
                """
            },
        )
        stats = program.resolution_stats()
        assert stats["call_sites"] == 2
        assert stats["resolved"] == 1
        assert stats["unresolved"] == 1
        assert stats["resolution_rate"] == pytest.approx(0.5)


class TestEffects:
    def test_global_mutation_propagates_to_fixpoint(self, tmp_path):
        _, _, _, table = analyze_sources(
            tmp_path,
            {
                "a.py": """
                STATE = {}

                def outer():
                    return middle()

                def middle():
                    return inner()

                def inner():
                    STATE["k"] = 1
                """
            },
        )
        for fqn in ("a.inner", "a.middle", "a.outer"):
            assert "global:a.STATE" in table.effects_of(fqn)

    def test_param_mutation_is_recorded_but_not_propagated(self, tmp_path):
        _, _, _, table = analyze_sources(
            tmp_path,
            {
                "a.py": """
                def fill(bucket):
                    bucket.append(1)

                def caller():
                    items = []
                    fill(items)
                    return items
                """
            },
        )
        assert "param:bucket" in table.effects_of("a.fill")
        assert not any(
            atom.startswith("param:") for atom in table.effects_of("a.caller")
        )

    def test_provider_masking_hides_raw_internals(self, tmp_path):
        _, _, _, table = analyze_sources(
            tmp_path,
            {
                "determinism.py": """
                import random

                def seeded_rng(seed):
                    return random.Random(seed)
                """,
                "app.py": """
                from determinism import seeded_rng

                def draw(seed):
                    return seeded_rng(seed).random()
                """,
            },
        )
        assert table.effects_of("determinism.seeded_rng") == {"rng:seeded"}
        assert table.effects_of("app.draw") == {"rng:seeded"}

    def test_unblessed_rng_ctor_is_raw(self, tmp_path):
        _, _, _, table = analyze_sources(
            tmp_path,
            {
                "a.py": """
                import random

                def local_stream(seed):
                    return random.Random(seed)
                """
            },
        )
        assert "rng:raw" in table.effects_of("a.local_stream")

    def test_channel_call_contributes_only_its_atom(self, tmp_path):
        _, _, _, table = analyze_sources(
            tmp_path,
            {
                "a.py": """
                class ControlChannel:
                    def __init__(self):
                        self.outbox: list = []

                    def packet_out(self, packet):
                        self.outbox.append(packet)

                def send(channel: ControlChannel, packet):
                    channel.packet_out(packet)
                """
            },
        )
        # The channel's internals stay its own business...
        assert "attr:a.ControlChannel.outbox" in table.effects_of(
            "a.ControlChannel.packet_out"
        )
        # ...while callers inherit exactly the sanctioned atom.
        assert table.effects_of("a.send") == {"channel:send"}

    def test_public_summary_lists_public_apis_only(self, tmp_path):
        _, _, _, table = analyze_sources(
            tmp_path,
            {
                "a.py": """
                def api(items):
                    items.append(1)

                def _internal():
                    return 2
                """
            },
        )
        summary = table.public_summary()
        assert summary == {"a.api": ["param:items"]}


class TestRegistry:
    def test_rules_have_docs_severities_and_hints(self):
        for rule in IPA_RULES.values():
            assert rule.doc, f"{rule.rule_id} has no docstring"
            assert rule.severity in ("error", "warning", "info")
            assert rule.fix_hint, f"{rule.rule_id} has no fix hint"

    def test_duplicate_rule_id_rejected(self):
        from repro.analysis.static.shardrules import ipa_rule

        with pytest.raises(ValueError, match="duplicate"):
            @ipa_rule("EFF001", "dup", "error", fix_hint="x")
            def dup(ctx, rule):  # pragma: no cover - never runs
                yield

    def test_disable_and_subset_configs(self, tmp_path):
        findings, rules_run, _, _ = analyze_sources(
            tmp_path,
            {"a.py": "def f():\n    return 1\n"},
        )
        assert rules_run == list(IPA_RULES)
        _, rules_run, _, _ = analyze_program(
            build_models(tmp_path, rel_base=tmp_path),
            SanConfig(disable=frozenset({"EFF001"})),
        )
        assert "EFF001" not in rules_run
        _, rules_run, _, _ = analyze_program(
            build_models(tmp_path, rel_base=tmp_path),
            SanConfig(rules=("SHARD001",)),
        )
        assert rules_run == ["SHARD001"]


class TestRepoGate:
    def test_repo_has_zero_unbaselined_findings(self):
        report = run_shardcheck()
        assert report.exit_code == 0, (
            "new interprocedural findings in the repo source:\n"
            + report.format_text()
        )

    def test_repo_resolution_rate_meets_the_floor(self):
        report = run_shardcheck()
        rate = report.resolution["resolution_rate"]
        assert rate >= 0.9, (
            f"call-site resolution regressed to {rate:.1%}; "
            "annotate the new receivers instead of lowering the gate"
        )

    def test_unresolved_sites_are_reported_not_dropped(self):
        report = run_shardcheck()
        assert len(report.unresolved) == report.resolution["unresolved"]
        for entry in report.unresolved:
            assert entry["caller"] and entry["reason"]

    def test_committed_baseline_has_no_stale_entries(self):
        report = run_shardcheck()
        assert not report.stale_baseline, (
            "shardcheck baseline entries whose sites are fixed — prune "
            f"them: {report.stale_baseline}"
        )

    def test_effects_contract_is_committed_and_current(self):
        report = run_shardcheck()
        assert report.effects_path is not None, (
            f"no {EFFECTS_NAME} found above the scan root"
        )
        committed = load_effects(Path(report.effects_path))
        assert committed == report.effects, (
            "shardcheck-effects.json drifted from the computed summary; "
            "regenerate with: smartsouth shardcheck --write-effects"
        )

    def test_repo_scan_paths_are_package_relative(self):
        report = run_shardcheck()
        assert all(f.path.startswith("repro/") for f in report.findings)


class TestCli:
    def test_shardcheck_text_and_exit(self, capsys):
        from repro.cli import main

        assert main(["shardcheck"]) == 0
        out = capsys.readouterr().out
        assert "shardcheck:" in out and "0 new" in out
        assert "call sites resolved" in out

    def test_shardcheck_json_carries_the_evidence(self, capsys):
        from repro.cli import main

        assert main(["shardcheck", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 0
        assert payload["resolution"]["resolution_rate"] >= 0.9
        assert len(payload["unresolved_sites"]) == payload["resolution"]["unresolved"]
        assert payload["effects"]

    def test_min_resolution_gate_fails_high_bar(self, capsys):
        from repro.cli import main

        assert main(["shardcheck", "--min-resolution", "0.999"]) == 1
        assert "below the --min-resolution gate" in capsys.readouterr().out

    def test_min_resolution_gate_passes_the_floor(self):
        from repro.cli import main

        assert main(["shardcheck", "--min-resolution", "0.9",
                     "--fail-on-stale"]) == 0

    def test_repo_scan_is_clean_without_baseline(self):
        from repro.cli import main

        # The ``_packet_ids`` EFF001 debts are paid down (the allocator
        # lives in the determinism provider now), so the repo passes even
        # with the baseline disabled.
        assert main(["shardcheck", "--no-baseline"]) == 0

    def test_format_github_emits_annotations(self, capsys):
        from repro.cli import main

        # The corpus EFF001 true positive surfaces as a workflow annotation.
        fixture = str(FIXTURES / "eff_globals.py")
        assert main([
            "shardcheck", "--root", fixture, "--no-baseline", "--no-effects",
            "--format", "github",
        ]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "title=EFF001" in out

    def test_write_effects_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "mod.py"
        target.write_text("def api(items):\n    items.append(1)\n")
        effects = tmp_path / "shardcheck-effects.json"
        assert main([
            "shardcheck", "--root", str(target),
            "--effects", str(effects), "--write-effects", "--no-baseline",
        ]) == 0
        assert load_effects(effects) == {"mod.api": ["param:items"]}
        capsys.readouterr()
        # With the contract committed, a rescan is clean; after an effect
        # change, EFF003 reports the drift.
        assert main([
            "shardcheck", "--root", str(target),
            "--effects", str(effects), "--no-baseline",
        ]) == 0
        target.write_text(
            "STATE = {}\n\ndef api(items):\n    STATE['k'] = 1\n"
        )
        capsys.readouterr()
        assert main([
            "shardcheck", "--root", str(target),
            "--effects", str(effects), "--no-baseline",
        ]) == 1
        assert "EFF003" in capsys.readouterr().out

    def test_prune_baseline_ratchet(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "mod.py"
        target.write_text("STATE = {}\n\ndef api():\n    STATE['k'] = 1\n")
        baseline = tmp_path / SHARD_BASELINE_NAME
        assert main([
            "shardcheck", "--root", str(target), "--baseline", str(baseline),
            "--no-effects", "--write-baseline",
        ]) == 0
        assert main([
            "shardcheck", "--root", str(target), "--baseline", str(baseline),
            "--no-effects", "--fail-on-stale",
        ]) == 0
        # Fix the site: the stale entry now fails the ratchet...
        target.write_text("STATE = {}\n\ndef api():\n    return STATE\n")
        capsys.readouterr()
        assert main([
            "shardcheck", "--root", str(target), "--baseline", str(baseline),
            "--no-effects", "--fail-on-stale",
        ]) == 1
        # ...and pruning empties the baseline.
        assert main([
            "shardcheck", "--root", str(target), "--baseline", str(baseline),
            "--no-effects", "--prune-baseline",
        ]) == 0
        assert json.loads(baseline.read_text())["findings"] == []

    def test_sancheck_interprocedural_runs_both_passes(self, capsys):
        from repro.cli import main

        assert main(["sancheck", "--interprocedural"]) == 0
        out = capsys.readouterr().out
        assert "sancheck:" in out and "shardcheck:" in out

    def test_root_is_repeatable(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "a.py").write_text("def api_a():\n    return 1\n")
        (tmp_path / "b.py").write_text("def api_b():\n    return 2\n")
        assert main([
            "shardcheck", "--root", str(tmp_path / "a.py"),
            "--root", str(tmp_path / "b.py"),
            "--no-baseline", "--no-effects",
        ]) == 0
        assert "across 2 file(s)" in capsys.readouterr().out

    def test_sancheck_fail_on_stale(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "mod.py"
        target.write_text(
            "import random\n\ndef f():\n    return random.random()\n"
        )
        baseline = tmp_path / "sancheck-baseline.json"
        assert main([
            "sancheck", "--root", str(target),
            "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        target.write_text("def f():\n    return 4\n")
        capsys.readouterr()
        assert main([
            "sancheck", "--root", str(target), "--baseline", str(baseline),
        ]) == 0
        assert main([
            "sancheck", "--root", str(target), "--baseline", str(baseline),
            "--fail-on-stale",
        ]) == 1
