"""The SmartSouth controller app and the counter-polling alternative."""

from __future__ import annotations

import pytest

from repro.control.apps.counter_polling import CounterPollingDetector
from repro.control.apps.smartsouth_manager import SmartSouthManager
from repro.control.controller import Controller
from repro.core.fields import FIELD_REPEAT
from repro.core.services.blackhole import BlackholeService, REPEAT_PROBE
from repro.core.services.critical import FIELD_CRITICAL, NOT_CRITICAL
from repro.core.services.critical import CriticalNodeService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, ring


def manager_on(topology, services=None):
    net = Network(topology)
    controller = Controller(net)
    manager = controller.register(
        SmartSouthManager(services or [SnapshotService(), CriticalNodeService()])
    )
    return controller, manager


class TestManagerLifecycle:
    def test_snapshot_through_channel(self):
        topo = erdos_renyi(10, 0.3, seed=5)
        controller, manager = manager_on(topo)
        outcome = manager.snapshot(0)
        assert outcome is not None
        nodes, links = outcome
        assert links == topo.port_pair_set()
        # One packet-out, one packet-in.
        assert controller.channel.packet_outs_sent == 1
        assert controller.channel.packet_ins_received == 1

    def test_trigger_unreachable_entry_fails(self):
        topo = ring(6)
        controller, manager = manager_on(topo)
        controller.channel.disconnect(0)
        assert manager.snapshot(0) is None

    def test_any_other_connected_switch_works(self):
        """The paper's robustness story: one manageable switch suffices."""
        topo = erdos_renyi(10, 0.3, seed=5)
        controller, manager = manager_on(topo)
        for node in range(topo.num_nodes - 1):
            controller.channel.disconnect(node)
        entry = manager.first_reachable_switch()
        assert entry == topo.num_nodes - 1
        outcome = manager.snapshot(entry)
        assert outcome is not None
        assert outcome[1] == topo.port_pair_set()

    def test_verdict_lost_if_entry_disconnects_midway(self):
        # Disconnect after the trigger was sent but before the verdict:
        # the packet-in is filtered by the channel.
        topo = ring(5)
        controller, manager = manager_on(topo)
        mark = len(manager.verdicts)
        controller.channel.packet_out(
            0,
            __import__("repro.openflow.packet", fromlist=["Packet"]).Packet(
                fields={"svc": SnapshotService.service_id}
            ),
            in_port=-3,
        )
        controller.channel.disconnect(0)
        controller.network.run()
        assert manager.verdicts[mark:] == []

    def test_critical_service_through_manager(self):
        topo = ring(6)
        _controller, manager = manager_on(topo)
        verdicts = manager.trigger(CriticalNodeService.service_id, 2)
        assert verdicts
        assert verdicts[0][1].get(FIELD_CRITICAL) == NOT_CRITICAL

    def test_unknown_service_rejected(self):
        _controller, manager = manager_on(ring(4))
        with pytest.raises(KeyError):
            manager.trigger(99, 0)

    def test_snapshot_requires_snapshot_service(self):
        _controller, manager = manager_on(
            ring(4), services=[CriticalNodeService()]
        )
        with pytest.raises(KeyError):
            manager.snapshot(0)

    def test_duplicate_services_rejected(self):
        with pytest.raises(ValueError):
            SmartSouthManager([SnapshotService(), SnapshotService()])


class TestCounterPolling:
    def _setup(self, topology, blackhole_edge=None):
        net = Network(topology)
        if blackhole_edge is not None:
            net.links[blackhole_edge].set_blackhole()
        controller = Controller(net)
        manager = controller.register(SmartSouthManager([BlackholeService()]))
        poller = controller.register(CounterPollingDetector(manager.switches))
        manager.trigger(
            BlackholeService.service_id, 0, fields={FIELD_REPEAT: REPEAT_PROBE}
        )
        return controller, poller

    def test_healthy_network_no_suspects(self):
        topo = erdos_renyi(8, 0.35, seed=2)
        _controller, poller = self._setup(topo)
        result = poller.poll()
        assert result.suspects == set()
        assert result.switches_polled == topo.num_nodes

    def test_blackhole_found_by_polling(self):
        topo = erdos_renyi(8, 0.35, seed=2)
        victim = 3
        _controller, poller = self._setup(topo, blackhole_edge=victim)
        result = poller.poll()
        edge = topo.edge(victim)
        expected = {(edge.a.node, edge.a.port), (edge.b.node, edge.b.port)}
        assert result.suspects and result.suspects <= expected

    def test_polling_costs_theta_n_messages(self):
        topo = erdos_renyi(8, 0.35, seed=2)
        _controller, poller = self._setup(topo, blackhole_edge=1)
        result = poller.poll()
        assert result.out_band_messages == 2 * topo.num_nodes

    def test_polling_blind_at_unmanageable_switch(self):
        topo = ring(6)
        victim = 2  # edge between nodes 2 and 3
        controller, poller = self._setup(topo, blackhole_edge=victim)
        edge = topo.edge(victim)
        controller.channel.disconnect(edge.a.node)
        controller.channel.disconnect(edge.b.node)
        result = poller.poll()
        assert result.suspects == set()  # the outage hides the blackhole
        assert result.switches_unreachable == 2
