"""The PYTHONHASHSEED double-run determinism gate."""

import json
import subprocess
import sys

from repro.analysis.static.doublerun import (
    DEFAULT_HASH_SEEDS,
    DoubleRunReport,
    double_run,
    scenario_digests,
    _child_env,
)
from repro.net.scenario import GOLDEN_SCENARIOS

# One cheap scenario keeps the subprocess tests fast; the full matrix
# runs in CI via `smartsouth sancheck --double-run`.
SMALL = (GOLDEN_SCENARIOS[0],)


def test_digests_are_stable_in_process():
    assert scenario_digests(SMALL) == scenario_digests(SMALL)


def test_digest_covers_every_scenario():
    digests = scenario_digests(SMALL)
    assert len(digests) == len(SMALL)
    for digest in digests.values():
        assert len(digest) == 64  # SHA-256 hex


def test_double_run_passes_across_hash_seeds():
    report = double_run(scenarios=SMALL)
    assert report.ok, report.format_text()
    assert report.hash_seeds == DEFAULT_HASH_SEEDS
    first, second = (report.digests[s] for s in DEFAULT_HASH_SEEDS)
    assert first == second and len(first) == len(SMALL)


def test_child_env_pins_hash_seed_and_path():
    env = _child_env(7)
    assert env["PYTHONHASHSEED"] == "7"
    assert "repro" in subprocess.run(
        [sys.executable, "-c", "import repro; print(repro.__name__)"],
        env=env, capture_output=True, text=True,
    ).stdout


def test_child_emit_mode_prints_digest_map():
    spec = json.dumps([list(s) for s in SMALL], sort_keys=True)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.static.doublerun",
         "--emit", "--scenarios", spec],
        env=_child_env(0), capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    assert set(payload) == set(scenario_digests(SMALL))


def test_report_flags_mismatch():
    report = DoubleRunReport(
        hash_seeds=(0, 1),
        digests={0: {"s": "a"}, 1: {"s": "b"}},
        mismatches=["s"],
    )
    assert not report.ok
    assert "MISMATCH s" in report.format_text()
    assert report.to_dict()["ok"] is False


def test_report_flags_child_error():
    report = DoubleRunReport(
        hash_seeds=(0, 1),
        digests={0: {}, 1: {}},
        errors=["PYTHONHASHSEED=1 run failed (exit 1): boom"],
    )
    assert not report.ok
    assert "FAILED" in report.format_text()
