"""Property-based fuzz: batched pipeline execution ≡ per-packet execution.

Random packet populations run through random multi-table pipelines on twin
switches — one processed packet by packet (the reference), one through
:meth:`Switch.process_batch` — and every observable must agree: emitted
(port, fields, packet id) triples per input packet, entry counters, group
counters, and SELECT round-robin cursors.

Beyond plain equivalence, the suite drives the batch engine's split
machinery on purpose:

* **SELECT interleaving** — several packets of one batch traverse one
  shared SELECT group, so the round-robin cursor must advance in exact
  packet order across the batch.
* **FF failover mid-batch** — the deliver callback flips a watched port
  dead after packet *k*, so packets ``k+1..`` of the *same batch* must take
  the backup bucket (liveness is consulted per packet, never cached per
  batch).
* **Table mutation mid-batch** — the deliver callback installs a
  higher-priority entry after packet *k*, so the batch's pre-resolved
  table-0 lookups and memo entries must be abandoned for packets ``k+1..``
  (the compiled index recompiles into a fresh object; stale memo keys die
  with the old one).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openflow.actions import GroupAction, Instructions, Output, SetField
from repro.openflow.group import Bucket, Group, GroupType
from repro.openflow.match import FieldTest, Match
from repro.openflow.packet import Packet, reset_packet_ids
from repro.openflow.switch import Switch

#: Small value domain so random packets collide with match values often.
FIELDS = ("a", "b", "c")
VALUES = st.integers(0, 7)
MASKS = st.sampled_from([None, 0, 1, 3, 5, 6, 7])


@st.composite
def field_tests(draw):
    name = draw(st.sampled_from(FIELDS + ("in_port", "metadata")))
    mask = draw(MASKS)
    value = draw(VALUES)
    if mask is not None:
        value &= mask  # FieldTest rejects value bits outside the mask
    return FieldTest(name, value, mask)


@st.composite
def matches(draw):
    tests = draw(st.lists(field_tests(), max_size=3))
    unique = {test.name: test for test in tests}
    return Match(unique.values())


@st.composite
def rule_sets(draw, with_groups: bool = False):
    """A random 3-table pipeline: matches, set-fields, outputs, goto chains,
    and (optionally) group actions over groups 1..3."""
    rules = []
    for table_id in range(3):
        for _ in range(draw(st.integers(0, 6))):
            actions = []
            if draw(st.booleans()):
                actions.append(
                    SetField(draw(st.sampled_from(("a", "b"))), draw(VALUES))
                )
            if with_groups and draw(st.booleans()):
                actions.append(GroupAction(draw(st.integers(1, 3))))
            if draw(st.booleans()):
                actions.append(Output(draw(st.integers(1, 3))))
            goto = None
            if table_id < 2 and draw(st.booleans()):
                goto = draw(st.integers(table_id + 1, 2))
            rules.append(
                (
                    table_id,
                    draw(matches()),
                    Instructions(apply_actions=tuple(actions), goto_table=goto),
                    draw(st.integers(0, 3)),
                )
            )
    return rules


@st.composite
def populations(draw):
    """A batch of arrivals: (fields, in_port) pairs."""
    return draw(
        st.lists(
            st.tuples(
                st.dictionaries(st.sampled_from(FIELDS), VALUES, max_size=3),
                st.integers(1, 3),
            ),
            min_size=1,
            max_size=10,
        )
    )


def _build_switch(rules, fast_path: bool, groups: bool = False) -> Switch:
    switch = Switch(node_id=0, num_ports=3, fast_path=fast_path)
    for table_id in range(3):
        switch.table(table_id)  # goto targets must exist even if empty
    if groups:
        switch.add_group(
            Group(1, GroupType.SELECT, [Bucket([Output(1)]), Bucket([Output(2)])])
        )
        switch.add_group(
            Group(
                2,
                GroupType.FF,
                [
                    Bucket([Output(1)], watch_port=1),
                    Bucket([Output(2)], watch_port=2),
                    Bucket([Output(3)]),  # terminal: always live
                ],
            )
        )
        switch.add_group(
            Group(3, GroupType.ALL, [Bucket([Output(2)]), Bucket([Output(3)])])
        )
    for table_id, match, instructions, priority in rules:
        switch.install(table_id, match, instructions, priority)
    return switch


def _signature(port, packet) -> tuple:
    return (port, sorted(packet.fields.items()), packet.packet_id)


def _counters(switch: Switch):
    return (
        switch.packets_processed,
        switch.table_misses,
        [
            (table_id, entry.seq, entry.packet_count)
            for table_id, entry in switch.iter_entries()
        ],
        [
            (
                group.group_id,
                group.packet_count,
                group.rr_next,
                [bucket.packet_count for bucket in group.buckets],
            )
            for group in switch.groups.groups()
        ],
    )


def _make_items(population):
    """All input packets are constructed before any is processed — the
    event queue holds fully-built packets in both drain modes, so packet-id
    allocation bases match and emitted-copy ids are comparable."""
    reset_packet_ids()
    return [
        (Packet(fields=dict(fields)), in_port) for fields, in_port in population
    ]


def _run_scalar(switch, population, between=None):
    items = _make_items(population)
    results = []
    for index, (packet, in_port) in enumerate(items):
        outs = switch.process(packet, in_port)
        results.append([_signature(o.port, o.packet) for o in outs])
        if between is not None:
            between(switch, index)
    return results


def _run_batched(switch, population, between=None):
    items = _make_items(population)
    results = [None] * len(items)

    def deliver(index, outputs):
        results[index] = [_signature(port, pkt) for port, pkt in outputs]
        if between is not None:
            between(switch, index)

    switch.process_batch(items, deliver)
    return results


@settings(max_examples=200, deadline=None)
@given(rule_sets(), populations())
def test_batch_pipeline_equivalence(rules, population):
    scalar = _build_switch(rules, fast_path=True)
    batched = _build_switch(rules, fast_path=True)
    assert _run_scalar(scalar, population) == _run_batched(batched, population)
    assert _counters(scalar) == _counters(batched)


@settings(max_examples=100, deadline=None)
@given(rule_sets(), populations())
def test_interpreted_batch_equivalence(rules, population):
    """process_batch must honour the same contract with the fast path off."""
    scalar = _build_switch(rules, fast_path=False)
    batched = _build_switch(rules, fast_path=False)
    assert _run_scalar(scalar, population) == _run_batched(batched, population)
    assert _counters(scalar) == _counters(batched)


@settings(max_examples=200, deadline=None)
@given(rule_sets(with_groups=True), populations())
def test_batch_group_equivalence(rules, population):
    """SELECT cursors, FF liveness, ALL fan-out: group state advances in
    exact packet order whether the packets share a batch or not."""
    scalar = _build_switch(rules, fast_path=True, groups=True)
    batched = _build_switch(rules, fast_path=True, groups=True)
    assert _run_scalar(scalar, population) == _run_batched(batched, population)
    assert _counters(scalar) == _counters(batched)


def _group_rules():
    """A fixed table-0 program sending every packet through FF group 2 and
    SELECT group 1 (deterministic scaffolding for the mid-batch tests)."""
    return [
        (
            0,
            Match([]),
            Instructions(apply_actions=(GroupAction(2), GroupAction(1))),
            1,
        )
    ]


@settings(max_examples=100, deadline=None)
@given(populations(), st.integers(0, 9), st.sampled_from([1, 2]))
def test_ff_failover_flips_mid_batch(population, flip_after, dead_port):
    """Killing a watched port from inside the deliver callback must reroute
    the *rest of the same batch* through the backup bucket."""

    def make_liveness(state):
        return lambda port: state.get(port, True)

    def make_between(state):
        def between(_switch, index):
            if index == flip_after:
                state[dead_port] = False

        return between

    scalar_state, batched_state = {}, {}
    scalar = _build_switch(_group_rules(), fast_path=True, groups=True)
    scalar.set_liveness(make_liveness(scalar_state))
    batched = _build_switch(_group_rules(), fast_path=True, groups=True)
    batched.set_liveness(make_liveness(batched_state))

    assert _run_scalar(
        scalar, population, between=make_between(scalar_state)
    ) == _run_batched(batched, population, between=make_between(batched_state))
    assert _counters(scalar) == _counters(batched)


@settings(max_examples=100, deadline=None)
@given(populations(), st.integers(0, 9), VALUES)
def test_table_mutation_mid_batch(population, install_after, set_value):
    """Installing a higher-priority table-0 entry from inside the deliver
    callback must take effect for the rest of the same batch — the batch's
    pre-resolved lookups and memo must not outlive the mutation."""

    def between(switch, index):
        if index == install_after:
            switch.install(
                0,
                Match([]),
                Instructions(
                    apply_actions=(SetField("a", set_value), Output(3))
                ),
                priority=7,
            )

    scalar = _build_switch(_group_rules(), fast_path=True, groups=True)
    batched = _build_switch(_group_rules(), fast_path=True, groups=True)

    assert _run_scalar(scalar, population, between=between) == _run_batched(
        batched, population, between=between
    )
    assert _counters(scalar) == _counters(batched)


@settings(max_examples=100, deadline=None)
@given(
    rule_sets(),
    populations(),
    st.integers(0, 9),
    st.integers(0, 2),
    VALUES,
)
def test_late_table_mutation_mid_batch(
    rules, population, install_after, target_table, set_value
):
    """Mutating a *later* table mid-batch must invalidate recorded chains.

    The batch engine memoizes whole entry chains per union key, so an
    install into table 1 or 2 — which the table-0 identity of a pre-resolved
    entry cannot see — must still retire every chain recorded before the
    install (the generation guard sums all table versions, not just
    table 0's)."""

    def between(switch, index):
        if index == install_after:
            switch.install(
                target_table,
                Match([]),
                Instructions(
                    apply_actions=(SetField("b", set_value), Output(2))
                ),
                priority=9,
            )

    scalar = _build_switch(rules, fast_path=True)
    batched = _build_switch(rules, fast_path=True)

    assert _run_scalar(scalar, population, between=between) == _run_batched(
        batched, population, between=between
    )
    assert _counters(scalar) == _counters(batched)
