"""Shardcheck corpus: EFF002 (public APIs reaching the process RNG).

DET001 flags the draw itself; EFF002 names every public entry point it
contaminates, so the markers sit on the ``def`` lines.
"""

import random

from determinism import seeded_rng


def bad_jitter():  # expect[EFF002]
    return random.random()


def bad_sampled_ports(count):  # expect[EFF002]
    # Raw entropy two frames down: the finding carries the chain
    # bad_sampled_ports -> _pick -> _draw.
    return [_pick() for _ in range(count)]


def _pick():
    return _draw()


def _draw():
    return random.randrange(64)


def good_seeded_jitter(seed):
    # The blessed seam: provider masking turns this into rng:seeded.
    return seeded_rng(seed).random()


def good_derived_stream(rng):
    # Drawing from a caller-supplied generator is the threaded-seed
    # pattern EFF002's fix hint asks for.
    return rng.random()
