"""Shardcheck corpus: EFF003 (drift against the committed summary).

``effects.json`` next to this corpus declares effect sets for the two
APIs below: an empty set for ``bad_drifting_api`` (stale — the function
has since gained a param mutation) and the accurate set for
``good_stable_api``.  APIs absent from the committed file are never
compared, so the rest of the corpus stays quiet under EFF003.
"""


def bad_drifting_api(items):  # expect[EFF003]
    items.append("grew an effect the summary never re-declared")


def good_stable_api(items):
    # Same shape, but the committed summary declares param:items.
    items.append("declared")


def good_undeclared_api(items):
    # Not in the committed summary at all: adding a function is not noise.
    items.append("new")
