"""Shardcheck corpus: a local stand-in for the determinism providers.

The manifest matches providers on dotted suffixes, so this module's
``determinism.seeded_rng`` hits the same entry as the real package's
``repro.core.determinism.seeded_rng`` — which is exactly what lets the
corpus exercise provider masking without importing the package.
"""

import random
import time


def seeded_rng(seed):
    # Masked by the manifest: callers see `rng:seeded`, not the raw
    # random.Random construction below.
    return random.Random(seed)


def derive_seed(seed, label):
    return (seed * 1000003) ^ hash(label)


def wall_clock():
    # Masked to `clock:wall` — the one blessed door to real time.
    return time.time()


def good_seeded_consumer(seed):
    # Public API whose only effect is rng:seeded — clean under EFF002.
    return seeded_rng(seed).random()
