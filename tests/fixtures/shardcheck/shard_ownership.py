"""Shardcheck corpus: SHARD001 (crossing-state writes) and SHARD004
(frozen-state writes).

The classes are *local* — the manifest keys ownership on bare class
names, so this ``Link``/``ControlChannel``/``Topology`` inherit the real
contract.  Both rules anchor at the mutation site, so the markers ride
the mutating statements.
"""


class Link:
    """Shard-crossing: both endpoints' workers touch it."""

    def __init__(self):
        self.up = True
        self.queue: list = []

    def set_blackhole(self, rate):
        # Channel API (`Link.set_blackhole` -> link:admin): its own
        # internals are the owner's business.
        self.up = rate < 1.0


class ControlChannel:
    """Shard-crossing: the fabric may mutate fellow fabric state."""

    def __init__(self, link: Link):
        self.link = link

    def good_fabric_write(self, link: Link):
        # Crossing classes mutate each other: the boundary implementing
        # itself, exempt by design.
        link.up = False


def bad_cut(link: Link):
    link.up = False  # expect[SHARD001]


def bad_queue_push(link: Link, packet):
    link.queue.append(packet)  # expect[SHARD001]


def good_admin_cut(link: Link):
    # The designated door: callers inherit link:admin, not the write.
    link.set_blackhole(1.0)


def good_reads_crossing(link: Link):
    return link.up and len(link.queue)


class Topology:
    """Frozen: built once, replicated into every shard."""

    def __init__(self):
        self.nodes = []
        self.name = "unnamed"

    def add_node(self, node):
        # Declared builder: the sanctioned write path.
        self.nodes.append(node)


def bad_patch_topology(topo: Topology):
    topo.name = "patched-after-build"  # expect[SHARD004]


def bad_late_node(topo: Topology, node):
    topo.nodes.append(node)  # expect[SHARD004]


def good_grow_topology(topo: Topology, node):
    # Going through the builder is fine even transitively: SHARD004
    # judges direct writes, the builder owns its own.
    topo.add_node(node)


def good_rebuild_topology(nodes):
    topo = Topology()
    for node in nodes:
        topo.add_node(node)
    return topo
