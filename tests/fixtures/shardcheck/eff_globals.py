"""Shardcheck corpus: EFF001 (public APIs mutating module globals).

Module globals are per-process state: after sharding, each worker
mutates its own copy.  EFF001 anchors at the *public* entry point, so
the markers ride the ``def`` lines, not the mutation sites.
"""

REGISTRY = {}
_COUNTER = 0


def bad_register(name, value):  # expect[EFF001]
    REGISTRY[name] = value


def bad_batch_register(pairs):  # expect[EFF001]
    REGISTRY.update(pairs)


def bad_lookup_with_stats(name):  # expect[EFF001]
    # The mutation hides two calls down; the finding names this API and
    # cites the witness chain to _bump.
    _note(name)
    return REGISTRY.get(name)


def _note(name):
    _bump()


def _bump():
    global _COUNTER
    _COUNTER += 1


def good_reads_global(name):
    # Reading shared config is shard-safe; only writes diverge.
    return REGISTRY.get(name)


def good_local_shadow():
    # A fresh local dict that happens to share the global's shape.
    registry = {}
    registry["k"] = "v"
    return registry


def good_mutates_param(registry, name, value):
    # Caller-visible aliasing (param:) is tracked but is not a global.
    registry[name] = value
