"""Shardcheck corpus: SHARD003 (hash-order iteration of crossing sets).

Two workers replaying the same events must visit members in the same
order for their traces to match, so iterating a set owned by
shard-crossing state (here: ``Network``) in hash order is flagged.  The
rule anchors at the iterated attribute expression.
"""


class Network:
    """Shard-crossing: every worker sees (a slice of) it."""

    members: set
    ordered: list

    def __init__(self):
        self.members = set()
        self.ordered = []


class Cluster:
    """Unclassified look-alike with the same shape."""

    members: set

    def __init__(self):
        self.members = set()


def bad_member_total(net: Network):
    total = 0
    for member in net.members:  # expect[SHARD003]
        total += member
    return total


def bad_member_tags(net: Network):
    return {member: member * 2 for member in net.members}  # expect[SHARD003]


def good_sorted_members(net: Network):
    # Sorting pins replay order across shards.
    total = 0
    for member in sorted(net.members):
        total += member
    return total


def good_ordered_iteration(net: Network):
    # Lists replay in insertion order everywhere.
    return [member for member in net.ordered]


def good_unclassified_set(cluster: Cluster):
    # Same iteration shape, but Cluster crosses no shard boundary.
    return {member for member in cluster.members}


def good_membership_test(net: Network, member):
    # Containment checks are order-free.
    return member in net.members
