"""Shardcheck corpus: SHARD002 (raw entropy inside shard-owned code).

``Switch`` is shard-owned, so its replicas must stay bit-identical:
drawing from the process RNG or the wall clock makes them diverge.  The
rule anchors at the offending method's ``def`` line.  Methods are
private on purpose — public ones would (correctly) trip EFF002 too,
which the EFF corpus already covers.
"""

import random
import time

from determinism import seeded_rng


class Switch:
    """Shard-owned: one worker's private world."""

    def __init__(self, seed):
        self.rng = seeded_rng(seed)
        self.ports: list = []

    def _bad_pick_port(self):  # expect[SHARD002]
        return self.ports[random.randrange(len(self.ports))]

    def _bad_timestamp(self):  # expect[SHARD002]
        # Transitive: the wall-clock read hides in _now_ms.
        return _now_ms()

    def good_pick_port(self):
        # Drawing from the seeded per-switch stream replays identically.
        return self.ports[self.rng.randrange(len(self.ports))]

    def good_step_counter(self, step):
        # Logical time instead of wall time.
        return step + 1


def _now_ms():
    return int(time.time() * 1000)


class Dashboard:
    """Unclassified: SHARD002 keeps out of non-shard code's entropy."""

    def _good_refresh_jitter(self):
        return random.random()
