"""Sanitizer corpus: RACE001/RACE002/RACE003 (shared mutable state)."""

REGISTRY: dict = {}
LIMITS = [10, 20]
FROZEN = ("a", "b")
NAMES = frozenset({"x", "y"})

REGISTRY["boot"] = True  # import-time init is exempt
LIMITS.append(30)  # likewise


def bad_register(name, value):
    REGISTRY[name] = value  # expect[RACE001]


def bad_append(value):
    LIMITS.append(value)  # expect[RACE001]


def bad_delete(name):
    del REGISTRY[name]  # expect[RACE001]


def bad_global_augment():
    global LIMITS
    LIMITS += [40]  # expect[RACE001]


def good_local_shadow():
    REGISTRY = {}
    REGISTRY["x"] = 1
    return REGISTRY


def good_param_shadow(LIMITS):
    LIMITS.append(99)
    return LIMITS


def good_read_only(name):
    return REGISTRY.get(name), len(LIMITS), FROZEN, NAMES


class BadTable:
    rows: list = []

    def add(self, row):
        self.rows.append(row)  # expect[RACE002]


class BadCounter:
    hits = {}

    def bump(self, key):
        self.hits[key] = self.hits.get(key, 0) + 1  # expect[RACE002]


class GoodTable:
    rows: list = []  # a default; every instance rebinds it

    def __init__(self):
        self.rows = []

    def add(self, row):
        self.rows.append(row)


class GoodConstants:
    WEIGHTS = (1, 2, 3)

    def total(self):
        return sum(self.WEIGHTS)


def bad_default(items=[]):  # expect[RACE003]
    items.append(1)
    return items


def bad_kw_default(*, seen={}):  # expect[RACE003]
    return seen


def bad_ctor_default(queue=list()):  # expect[RACE003]
    return queue


def good_none_default(items=None):
    items = [] if items is None else items
    items.append(1)
    return items


def good_immutable_defaults(pair=(), names=frozenset(), label="x"):
    return pair, names, label
