"""Sanitizer corpus: DET006 (id() escapes) and DET007 (hash() order)."""


def bad_id_as_key(cache: dict, obj):
    cache[id(obj)] = obj  # expect[DET006]


def bad_id_as_tag(obj):
    return f"obj-{id(obj)}"  # expect[DET006]


def known_miss_id_sort_key(objects):
    # A bare `id` passed as a function reference is a real hazard the
    # rule does not catch (it only sees calls); kept here to document it.
    return sorted(objects, key=id)


def good_id_compare(a, b):
    # Same-process identity test (better spelled `a is b`) is tolerated.
    return id(a) == id(b)


def bad_hash_bucket(name: str, shards: int):
    return hash(name) % shards  # expect[DET007]


def bad_hash_emitted(record):
    return {"digest": hash(record)}  # expect[DET007]


class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def __hash__(self):
        # Inside __hash__ the interpreter owns the salting contract.
        return hash((self.x, self.y))

    def __eq__(self, other):
        return (self.x, self.y) == (other.x, other.y)
