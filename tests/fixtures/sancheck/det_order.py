"""Sanitizer corpus: DET004 (unsorted JSON) and DET005 (set order escapes)."""

import json


def bad_dump_dynamic(payload: dict) -> str:
    return json.dumps(payload)  # expect[DET004]


def bad_dump_computed(counters) -> str:
    data = {key: value for key, value in counters}
    return json.dumps(data, indent=2)  # expect[DET004]


def bad_dump_to_file(payload: dict, fh) -> None:
    json.dump(payload, fh)  # expect[DET004]


def good_sorted_dump(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def good_constant_literal() -> str:
    # A dict literal's order is part of the source, not of hashing.
    return json.dumps({"kind": "hop", "node": 3})


def good_constant_named() -> str:
    record = {"kind": "hop", "node": 3}
    return json.dumps(record)


def good_loads(text: str):
    return json.loads(text)


def bad_for_over_set(xs):
    nodes = set(xs)
    out = []
    for node in nodes:  # expect[DET005]
        out.append(node)
    return out


def bad_listcomp_over_literal():
    return [n * 2 for n in {1, 2, 3}]  # expect[DET005]


def bad_list_of_set(xs):
    return list(set(xs))  # expect[DET005]


def bad_join_over_set():
    tags = {"a", "b", "c"}
    return ",".join(tags)  # expect[DET005]


def bad_enumerate_union(left, right):
    members = set(left)
    return enumerate(members | set(right))  # expect[DET005]


def good_sorted_escape(xs):
    nodes = set(xs)
    return [n for n in sorted(nodes)]


def good_reductions(xs):
    nodes = set(xs)
    return len(nodes), sum(nodes), min(nodes), max(nodes), any(nodes)


def good_membership(xs, probe):
    nodes = set(xs)
    return probe in nodes


def good_setcomp(xs):
    # Set-to-set transforms never expose an order.
    nodes = set(xs)
    return {n + 1 for n in nodes}


def good_list_of_list(xs):
    rows = list(xs)
    return list(rows)
