"""Sanitizer corpus: DET003 (wall-clock reads outside the provider)."""

import datetime
import time
from datetime import datetime as dt

from repro.core.determinism import wall_clock


def bad_time():
    return time.time()  # expect[DET003]


def bad_perf_counter():
    return time.perf_counter()  # expect[DET003]


def bad_monotonic_ns():
    return time.monotonic_ns()  # expect[DET003]


def bad_datetime_now():
    return datetime.datetime.now()  # expect[DET003]


def bad_aliased_utcnow():
    return dt.utcnow()  # expect[DET003]


def bad_date_today():
    return datetime.date.today()  # expect[DET003]


def good_virtual_clock(network):
    return network.sim.now


def good_provider_escape_hatch():
    return wall_clock()


def good_sleepless_duration(a: float, b: float):
    return datetime.timedelta(seconds=b - a)


def good_constructed_datetime():
    return datetime.datetime(2014, 10, 27, 12, 0, 0)
