"""Sanitizer corpus: DET001 (unseeded RNG) and DET002 (OS entropy).

Each ``# expect[RULE]`` marks a line the rule must flag (recall); every
unmarked line is a benign look-alike the rule must NOT flag (precision).
This file is analysis input only — it is never imported by tests.
"""

import os
import random
import random as rnd
import secrets
import uuid
from random import randint

from repro.core.determinism import seeded_rng


def bad_global_stream():
    return random.random()  # expect[DET001]


def bad_aliased_module():
    return rnd.choice([1, 2, 3])  # expect[DET001]


def bad_from_import():
    return randint(0, 9)  # expect[DET001]


def bad_global_shuffle(items):
    random.shuffle(items)  # expect[DET001]
    return items


def bad_unseeded_instance():
    return random.Random()  # expect[DET001]


def bad_urandom():
    return os.urandom(8)  # expect[DET002]


def bad_uuid4():
    return uuid.uuid4()  # expect[DET002]


def bad_system_random():
    return random.SystemRandom()  # expect[DET002]


def bad_secrets():
    return secrets.token_hex(4)  # expect[DET002]


def good_provider(seed: int):
    return seeded_rng(seed).random()


def good_seeded_instance(seed: int):
    return random.Random(seed).random()


def good_instance_method(rng):
    # Methods on a passed-in RNG object resolve to nothing global.
    return rng.random() + rng.randint(0, 3)


def good_uuid5(namespace, name):
    # uuid5 is a deterministic hash of its inputs.
    return uuid.uuid5(namespace, name)


def good_local_random_name():
    random = 4  # shadows the module; calls through it are not RNG reads
    return random


def good_os_path(path):
    return os.path.basename(path)
