"""Switch crash/reboot semantics, table capacity, and re-adoption."""

from __future__ import annotations

import pytest

from repro.control.channel import ControlChannel
from repro.control.supervisor import (
    READOPT_DARK,
    READOPT_FAILED,
    READOPT_REPROGRAMMED,
    SupervisedRuntime,
    SupervisorConfig,
)
from repro.core.compiler import compile_service
from repro.openflow.actions import Instructions, Output, SetField
from repro.openflow.errors import InstallError, TableError, TableFullError
from repro.openflow.group import Bucket, Group, GroupType
from repro.openflow.match import Match
from repro.openflow.packet import Packet
from repro.openflow.switch import Switch, SwitchFaultConfig
from repro.net.simulator import Network
from repro.net.topology import ring


def make_switch(num_ports=4):
    return Switch(1, num_ports, liveness=lambda p: True)


class TestCrashReboot:
    def test_crashed_switch_drops_everything(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(2),)))
        assert [o.port for o in switch.process(Packet(), in_port=1)] == [2]
        switch.crash()
        assert switch.down
        assert switch.process(Packet(), in_port=1) == []

    def test_crashed_switch_drops_batches(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(2),)))
        switch.crash()
        got = {}
        switch.process_batch(
            [(Packet(), 1), (Packet(), 1)],
            lambda index, outs: got.__setitem__(index, outs),
        )
        assert got == {0: [], 1: []}

    def test_crash_is_idempotent_and_preserves_state_until_reboot(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(2),)))
        before = switch.inventory_digest()
        switch.crash()
        switch.crash()
        # The dead box still *holds* its config; reboot is what loses it.
        assert switch.inventory_digest() == before

    def test_reboot_loses_tables_and_groups(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(2),)))
        switch.groups.add(
            Group(1, GroupType.ALL, [Bucket(actions=(Output(2),))])
        )
        switch.crash()
        switch.reboot()
        assert not switch.down
        assert switch.tables == {}
        assert list(switch.groups.groups()) == []
        # Bare table 0 miss-drops (does not raise).
        assert switch.process(Packet(), in_port=1) == []
        assert switch.table_misses == 1

    def test_reboot_without_crash_is_a_noop(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(2),)))
        before = switch.inventory_digest()
        switch.reboot()
        assert switch.inventory_digest() == before

    def test_reboot_invalidates_fast_path(self):
        # After a reboot, fresh FlowTables restart their version counters;
        # the reboot must invalidate the compiled cache so stale programs
        # can never be served for colliding (table-id, version) keys.
        switch = make_switch()
        switch.enable_fast_path()
        switch.install(0, Match(), Instructions(apply_actions=(Output(2),)))
        assert [o.port for o in switch.process(Packet(), in_port=1)] == [2]
        switch.crash()
        switch.reboot()
        assert switch.process(Packet(), in_port=1) == []
        switch.install(0, Match(), Instructions(apply_actions=(Output(3),)))
        assert [o.port for o in switch.process(Packet(), in_port=1)] == [3]


class TestFlowTableCapacity:
    def install_n(self, switch, n, priority=5):
        for i in range(n):
            switch.install(
                0,
                Match(x=i),
                Instructions(apply_actions=(Output(1),)),
                priority=priority,
            )

    def test_capacity_validates(self):
        switch = make_switch()
        with pytest.raises(TableError):
            switch.table(0).set_capacity(0)

    def test_full_table_raises_without_evict(self):
        switch = make_switch()
        switch.table(0).set_capacity(2)
        self.install_n(switch, 2)
        with pytest.raises(TableFullError) as err:
            self.install_n(switch, 1)
        assert err.value.table_id == 0
        assert err.value.capacity == 2
        assert len(switch.table(0)) == 2

    def test_evicts_lowest_priority_oldest_first(self):
        switch = make_switch()
        table = switch.table(0)
        table.set_capacity(2, evict=True)
        switch.install(0, Match(x=0), Instructions(), priority=1)
        switch.install(0, Match(x=1), Instructions(), priority=3)
        # Victim must be the priority-1 entry (strictly below incoming 5).
        switch.install(0, Match(x=2), Instructions(), priority=5)
        assert table.evictions == 1
        priorities = sorted(e.priority for e in table.entries())
        assert priorities == [3, 5]

    def test_equal_priority_never_evicted(self):
        # Eviction requires a *strictly* lower-priority victim: an install
        # storm at one priority cannot cannibalize its own rules.
        switch = make_switch()
        switch.table(0).set_capacity(2, evict=True)
        self.install_n(switch, 2, priority=5)
        with pytest.raises(TableFullError):
            self.install_n(switch, 1, priority=5)

    def test_shrink_below_occupancy_applies_on_next_install(self):
        switch = make_switch()
        self.install_n(switch, 4)
        switch.table(0).set_capacity(2)  # allowed; applied going forward
        assert len(switch.table(0)) == 4
        with pytest.raises(TableFullError):
            self.install_n(switch, 1)


class TestSwitchFaultConfig:
    def test_validates(self):
        with pytest.raises(ValueError):
            SwitchFaultConfig(partial_install_prob=1.5).validate()
        with pytest.raises(ValueError):
            SwitchFaultConfig(fail_budget=-1).validate()

    def test_inactive_config_allocates_no_rng(self):
        switch = make_switch()
        switch.set_faults(SwitchFaultConfig())
        assert switch._fault_rng is None

    def test_partial_install_fails_then_budget_exhausts(self):
        donor = make_switch()
        donor.install(0, Match(x=0), Instructions(), priority=1)
        donor.install(0, Match(x=1), Instructions(), priority=1)
        donor.install(1, Match(x=2), Instructions(), priority=1)
        target = make_switch()
        target.set_faults(
            SwitchFaultConfig(
                partial_install_prob=1.0, fail_budget=2, seed=11
            )
        )
        failures = 0
        for _attempt in range(4):
            try:
                target.adopt_program(donor)
            except InstallError:
                failures += 1
        assert failures == 2  # budget, then clean installs
        assert target.inventory_digest() == donor.inventory_digest()

    def test_seeded_faults_are_deterministic(self):
        donor = make_switch()
        for i in range(6):
            donor.install(0, Match(x=i), Instructions(), priority=1)

        def run(seed):
            target = make_switch()
            target.set_faults(
                SwitchFaultConfig(
                    partial_install_prob=0.5, fail_budget=2, seed=seed
                )
            )
            outcomes = []
            for _ in range(4):
                try:
                    target.adopt_program(donor)
                    outcomes.append("ok")
                except InstallError:
                    outcomes.append("fail")
            return outcomes, target.inventory_digest()

        assert run(7) == run(7)

    def test_interrupted_push_leaves_honest_drift(self):
        donor = make_switch()
        for i in range(8):
            donor.install(0, Match(x=i), Instructions(), priority=1)
        target = make_switch()
        target.set_faults(
            SwitchFaultConfig(
                partial_install_prob=1.0, fail_budget=1, seed=3
            )
        )
        with pytest.raises(InstallError):
            target.adopt_program(donor)
        assert target.inventory_digest() != donor.inventory_digest()


class TestDigestCoversGroups:
    def base(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(2),)))
        return switch

    def test_bucket_actions_in_digest(self):
        a, b = self.base(), self.base()
        a.groups.add(Group(1, GroupType.ALL, [Bucket(actions=(Output(2),))]))
        b.groups.add(Group(1, GroupType.ALL, [Bucket(actions=(Output(3),))]))
        assert a.inventory_digest() != b.inventory_digest()

    def test_ff_watch_port_in_digest(self):
        a, b = self.base(), self.base()
        a.groups.add(
            Group(
                1,
                GroupType.FF,
                [Bucket(actions=(Output(2),), watch_port=2)],
            )
        )
        b.groups.add(
            Group(
                1,
                GroupType.FF,
                [Bucket(actions=(Output(2),), watch_port=3)],
            )
        )
        assert a.inventory_digest() != b.inventory_digest()

    def test_set_field_payload_in_digest(self):
        a, b = self.base(), self.base()
        a.groups.add(
            Group(1, GroupType.ALL, [Bucket(actions=(SetField("x", 1),))])
        )
        b.groups.add(
            Group(1, GroupType.ALL, [Bucket(actions=(SetField("x", 2),))])
        )
        assert a.inventory_digest() != b.inventory_digest()


class TestReadopt:
    def runtime(self, channel=True):
        network = Network(ring(4))
        chan = ControlChannel(network) if channel else None
        runtime = SupervisedRuntime(
            network, mode="compiled", config=SupervisorConfig(), channel=chan
        )
        outcome = runtime.snapshot(0)
        assert outcome.ok
        return network, runtime

    def expected_digest(self, runtime, node):
        supervisor = runtime._supervisors[sorted(runtime._supervisors)[0]]
        expected = compile_service(
            runtime.network,
            node,
            supervisor.service,
            fast_path=getattr(supervisor.engine, "fast_path", None),
        )
        return expected.inventory_digest()

    def test_clean_fleet_converges_in_one_round(self):
        _network, runtime = self.runtime()
        report = runtime.readopt()
        assert report.converged
        assert report.rounds == 1
        assert report.reprogrammed_nodes == []

    def test_rebooted_switch_is_reprogrammed_to_fixed_point(self):
        _network, runtime = self.runtime()
        (victim,) = runtime.switches_at(2)
        victim.crash()
        victim.reboot()
        assert victim.tables == {}
        report = runtime.readopt()
        assert report.converged
        assert report.reprogrammed_nodes == [2]
        assert victim.inventory_digest() == self.expected_digest(runtime, 2)

    def test_dark_switch_reported_not_awaited(self):
        _network, runtime = self.runtime()
        (victim,) = runtime.switches_at(1)
        victim.crash()
        report = runtime.readopt()
        assert report.converged  # dark boxes don't block convergence
        assert report.dark_nodes == [1]
        assert any(a.status == READOPT_DARK for a in report.attempts)

    def test_unreachable_switch_reported_not_awaited(self):
        _network, runtime = self.runtime()
        runtime.channel.disconnect(3)
        report = runtime.readopt()
        assert report.converged
        assert report.unreachable_nodes == [3]

    def test_install_faults_retried_with_ledger(self):
        _network, runtime = self.runtime()
        (victim,) = runtime.switches_at(2)
        victim.crash()
        victim.reboot()
        victim.set_faults(
            SwitchFaultConfig(
                partial_install_prob=1.0, fail_budget=1, seed=5
            )
        )
        report = runtime.readopt()
        assert report.converged
        assert report.rounds == 2
        ledger = [
            (a.round_index, a.status)
            for a in report.attempts
            if a.node == 2
        ]
        assert ledger == [(0, READOPT_FAILED), (1, READOPT_REPROGRAMMED)]
        assert victim.inventory_digest() == self.expected_digest(runtime, 2)

    def test_budget_exhaustion_reports_unconverged(self):
        _network, runtime = self.runtime()
        (victim,) = runtime.switches_at(2)
        victim.crash()
        victim.reboot()
        victim.set_faults(
            SwitchFaultConfig(
                partial_install_prob=1.0, fail_budget=99, seed=5
            )
        )
        report = runtime.readopt(max_rounds=2)
        assert not report.converged
        assert report.drifted_nodes == [2]


class TestCrashMidTraversal:
    def test_seeded_crash_resyncs_to_fixed_point_with_audited_retries(self):
        """The acceptance scenario: a switch crashes mid-traversal, the
        supervised call degrades honestly, and re-adoption converges to the
        compiled program's digest with every retry in the attempt ledger."""
        network = Network(ring(4), seed=17)
        channel = ControlChannel(network)
        runtime = SupervisedRuntime(
            network,
            mode="compiled",
            config=SupervisorConfig(),
            channel=channel,
        )

        def crash_victims() -> None:
            for switch in runtime.switches_at(2):
                switch.crash()

        network.at_packet_step(3, crash_victims)
        outcome = runtime.snapshot(0)
        # The victim ate the traversal mid-flight: degraded, never a hang.
        assert not outcome.ok
        assert outcome.degraded

        (victim,) = runtime.switches_at(2)
        assert victim.down
        victim.reboot()
        victim.set_faults(
            SwitchFaultConfig(
                partial_install_prob=1.0, fail_budget=1, seed=23
            )
        )
        report = runtime.readopt()
        assert report.converged
        ledger = [
            (a.round_index, a.status)
            for a in report.attempts
            if a.node == 2
        ]
        assert ledger == [(0, READOPT_FAILED), (1, READOPT_REPROGRAMMED)]

        supervisor = runtime._supervisors[sorted(runtime._supervisors)[0]]
        expected = compile_service(
            network,
            2,
            supervisor.service,
            fast_path=getattr(supervisor.engine, "fast_path", None),
        )
        assert victim.inventory_digest() == expected.inventory_digest()
        # The fixed point is stable: another sweep reprograms nothing.
        again = runtime.readopt()
        assert again.converged and again.rounds == 1
        assert again.reprogrammed_nodes == []
        # And the recovered fleet serves a full, correct snapshot again.
        healed = runtime.snapshot(0)
        assert healed.ok
        assert healed.links == network.live_port_pairs()
