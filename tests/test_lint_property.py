"""Property tests: compiled pipelines are verifiably clean, and injected
faults never escape the linter.

Every service the compiler supports, on random connected topologies, must
pass both the static verifier and the lint suite with zero errors — the
paper's claim that in-switch services keep the forwarding state formally
checkable.  Conversely a deliberately shadowed rule must always be flagged.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint import lint_engine, run_lint
from repro.analysis.verify import verify_engine
from repro.core.compiler import T_CLASSIFY, compile_service
from repro.core.engine import CompiledEngine
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import PlainTraversalService
from repro.core.services.blackhole import BlackholeService, BlackholeTtlService
from repro.core.services.critical import CriticalNodeService
from repro.core.services.snapshot import ChunkedSnapshotService, SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi
from repro.openflow.actions import Instructions, Output
from repro.openflow.match import Match

SERVICE_NAMES = (
    "plain",
    "snapshot",
    "snapshot_chunked",
    "blackhole",
    "blackhole_ttl",
    "critical",
    "anycast",
    "priocast",
)


def build_service(name, nodes):
    """A configured service instance; membership derived from *nodes*."""
    if name == "plain":
        return PlainTraversalService()
    if name == "snapshot":
        return SnapshotService()
    if name == "snapshot_chunked":
        return ChunkedSnapshotService(max_records=16)
    if name == "blackhole":
        return BlackholeService()
    if name == "blackhole_ttl":
        return BlackholeTtlService()
    if name == "critical":
        return CriticalNodeService()
    if name == "anycast":
        return AnycastService(
            groups={1: {nodes[-1]}, 2: set(nodes[: max(1, len(nodes) // 2)])}
        )
    if name == "priocast":
        return PriocastService(
            priorities={1: {node: (i % 6) + 1 for i, node in enumerate(nodes)}}
        )
    raise AssertionError(name)


def assert_clean(topo, service):
    engine = CompiledEngine(Network(topo), service)
    for report in verify_engine(engine):
        assert report.errors == [], (topo.name, service.name, report.errors)
    lint = lint_engine(engine)
    assert lint.errors == [], (
        topo.name,
        service.name,
        [f.format() for f in lint.errors],
    )


class TestCompiledPipelinesAreClean:
    def test_every_service_on_one_random_topology(self):
        # Deterministic coverage of the full service matrix (hypothesis
        # sampling below may not hit every service every run).
        topo = erdos_renyi(6, 0.4, seed=7, connect=True)
        for name in SERVICE_NAMES:
            assert_clean(topo, build_service(name, topo.nodes()))

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(2, 8),
        st.integers(0, 500),
        st.sampled_from(SERVICE_NAMES),
    )
    def test_random_topology_service_pairs(self, n, seed, name):
        topo = erdos_renyi(n, 0.4, seed=seed, connect=True)
        assert_clean(topo, build_service(name, topo.nodes()))


class TestInjectedFaultsAreCaught:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 8), st.integers(0, 500))
    def test_shadowed_rule_always_flagged(self, n, seed):
        topo = erdos_renyi(n, 0.4, seed=seed, connect=True)
        service = PlainTraversalService()
        net = Network(topo)
        switches = {
            node: compile_service(net, node, service) for node in topo.nodes()
        }
        victim = topo.nodes()[seed % n]
        table = switches[victim].tables[T_CLASSIFY]
        table.install(
            Match(start=3),
            Instructions(goto_table=T_CLASSIFY + 1),
            priority=300,
            cookie="seed:cover",
        )
        table.install(
            Match(start=3, gid=1),
            Instructions(apply_actions=[Output(1)]),
            priority=299,
            cookie="seed:shadowed",
        )
        report = run_lint(switches, topo, service=service, rules=["SS002"])
        assert any(
            f.rule == "SS002" and f.node == victim
            and f.cookie == "seed:shadowed"
            for f in report.findings
        ), [f.format() for f in report.findings]
