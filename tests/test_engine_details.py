"""Engine plumbing: binding, deferred triggers, result bookkeeping."""

from __future__ import annotations


from repro.core.engine import (
    InterpretedEngine,
    MultiServiceEngine,
    TraversalResult,
    make_engine,
)
from repro.core.services.base import PlainTraversalService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, ring
from repro.openflow.packet import Packet


class TestBinding:
    def test_compiled_engine_compiles_once(self):
        net = Network(ring(5))
        engine = make_engine(net, SnapshotService(), "compiled")
        engine.install()
        switches = dict(engine.switches)
        engine.install()  # re-binding must not recompile
        assert engine.switches == switches
        assert all(engine.switches[n] is switches[n] for n in switches)

    def test_last_engine_owns_the_sinks(self):
        net = Network(ring(5))
        first = make_engine(net, SnapshotService(), "compiled")
        second = make_engine(net, PlainTraversalService(), "compiled")
        first.trigger(0)
        second.trigger(0)
        result = first.trigger(0)  # first re-binds and still collects
        assert result.reports

    def test_modes_exposed(self):
        net = Network(ring(4))
        assert make_engine(net, SnapshotService(), "interpreted").mode == "interpreted"
        assert make_engine(net, SnapshotService(), "compiled").mode == "compiled"

    def test_interpreted_counters_live_on_the_interpreter(self):
        net = Network(ring(4))
        engine = make_engine(net, PlainTraversalService(), "interpreted")
        assert isinstance(engine, InterpretedEngine)
        assert set(engine.interpreter.counters) == set(range(4))


class TestDeferredTrigger:
    def test_run_false_enqueues_without_draining(self):
        net = Network(ring(5))
        engine = make_engine(net, PlainTraversalService(), "compiled")
        result = engine.trigger(0, run=False)
        assert result.reports == []
        assert net.sim.pending == 1
        net.run()
        assert engine.reports  # the verdict arrived once the caller ran

    def test_two_deferred_triggers_interleave_on_the_clock(self):
        # Two plain traversals launched together share the network without
        # corrupting each other (their state lives in separate packets).
        net = Network(ring(6))
        engine = make_engine(net, PlainTraversalService(), "compiled")
        engine.trigger(0, run=False)
        engine.trigger(3, run=False)
        net.run()
        assert len(engine.reports) == 2
        assert {node for node, _ in engine.reports} == {0, 3}


class TestTraversalResult:
    def test_delivered_at_none_without_deliveries(self):
        result = TraversalResult(root=0, packet=Packet())
        assert result.delivered_at is None
        assert not result.completed

    def test_completed_with_reports(self):
        result = TraversalResult(root=0, packet=Packet(),
                                 reports=[(1, Packet())])
        assert result.completed

    def test_message_counts_are_per_run(self):
        topo = erdos_renyi(8, 0.35, seed=1)
        net = Network(topo)
        engine = make_engine(net, PlainTraversalService(), "compiled")
        first = engine.trigger(0)
        second = engine.trigger(0)
        assert first.in_band_messages == second.in_band_messages
        assert first.out_band_messages == second.out_band_messages == 2


class TestMultiServiceDetails:
    def test_interpreted_counters_isolated_per_service(self):
        from repro.core.services.blackhole import BlackholeService

        net = Network(ring(4))
        engine = MultiServiceEngine(
            net, [BlackholeService(), PlainTraversalService()],
            mode="interpreted",
        )
        engine.install()
        banks = engine._interpreters
        assert banks[BlackholeService.service_id].counters is not (
            banks[PlainTraversalService.service_id].counters
        )

    def test_total_rules_requires_compiled(self):
        net = Network(ring(4))
        engine = MultiServiceEngine(net, [SnapshotService()], mode="compiled")
        assert engine.total_rules() > 0

    def test_trigger_accepts_service_instance(self):
        net = Network(ring(4))
        service = SnapshotService()
        engine = MultiServiceEngine(net, [service], mode="interpreted")
        assert engine.trigger(service, 0).reports
