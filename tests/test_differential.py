"""Differential testing: compiled OpenFlow rules ≡ interpreted Algorithm 1.

This is the mechanical check of the paper's expressibility claim: for every
service, on every topology, the hop-by-hop link-crossing sequence of the
compiled pipelines must equal the reference interpreter's, and so must the
externally visible outcomes (deliveries, reports, verdicts).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import make_engine
from repro.core.fields import FIELD_GID, FIELD_REPEAT, FIELD_TTL
from repro.core.runtime import SmartSouthRuntime
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import PlainTraversalService
from repro.core.services.blackhole import BlackholeService, BlackholeTtlService
from repro.core.services.critical import CriticalNodeService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi


def hop_sequences(topology, make_service, fields=None, root=0, fail=()):
    """Run both engines on identical networks; return their hop sequences
    and the (reports, deliveries) outcomes."""
    results = []
    for mode in ("interpreted", "compiled"):
        net = Network(topology)
        for u, v in fail:
            net.fail_link(u, v)
        engine = make_engine(net, make_service(), mode)
        outcome = engine.trigger(root, fields=dict(fields or {}))
        results.append(
            (
                net.trace.hop_sequence(),
                [node for node, _ in outcome.reports],
                [node for node, _ in outcome.deliveries],
                outcome.in_band_messages,
            )
        )
    return results


def assert_equivalent(topology, make_service, fields=None, root=0, fail=()):
    interpreted, compiled = hop_sequences(topology, make_service, fields, root, fail)
    assert interpreted[0] == compiled[0], "hop sequences diverge"
    assert interpreted[1] == compiled[1], "reports diverge"
    assert interpreted[2] == compiled[2], "deliveries diverge"
    assert interpreted[3] == compiled[3], "message counts diverge"


class TestPlain:
    def test_zoo(self, zoo_topology):
        assert_equivalent(zoo_topology, PlainTraversalService)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 18), st.integers(0, 1000))
    def test_random(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        assert_equivalent(topo, PlainTraversalService)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 14), st.integers(0, 500), st.data())
    def test_random_with_failures(self, n, seed, data):
        topo = erdos_renyi(n, 0.35, seed=seed)
        edges = list(topo.edges())
        kills = data.draw(st.sets(st.integers(0, len(edges) - 1), max_size=3))
        fail = [(edges[k].a.node, edges[k].b.node) for k in kills]
        assert_equivalent(topo, PlainTraversalService, fail=fail)


class TestSnapshot:
    def test_zoo(self, zoo_topology):
        assert_equivalent(zoo_topology, SnapshotService)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 16), st.integers(0, 500))
    def test_random(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        assert_equivalent(topo, SnapshotService)

    def test_record_streams_identical(self):
        topo = erdos_renyi(12, 0.3, seed=17)
        stacks = []
        for mode in ("interpreted", "compiled"):
            runtime = SmartSouthRuntime(Network(topo), mode=mode)
            snap = runtime.snapshot(0)
            stacks.append(list(snap.result.reports[-1][1].stack))
        assert stacks[0] == stacks[1]


class TestAnycast:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 14), st.integers(0, 300), st.data())
    def test_random(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        members = data.draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=3))
        root = data.draw(st.integers(0, n - 1))
        assert_equivalent(
            topo,
            lambda: AnycastService({1: members}),
            fields={FIELD_GID: 1},
            root=root,
        )


class TestPriocast:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 12), st.integers(0, 300), st.data())
    def test_random(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        priorities = data.draw(
            st.dictionaries(
                st.integers(0, n - 1), st.integers(1, 255), min_size=1, max_size=4
            )
        )
        root = data.draw(st.integers(0, n - 1))
        assert_equivalent(
            topo,
            lambda: PriocastService({1: priorities}),
            fields={FIELD_GID: 1},
            root=root,
        )


class TestChunkedSnapshot:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 12), st.integers(0, 300), st.integers(3, 30))
    def test_chunk_streams_identical(self, n, seed, budget):
        topo = erdos_renyi(n, 0.3, seed=seed)
        outcomes = []
        for mode in ("interpreted", "compiled"):
            net = Network(topo)
            runtime = SmartSouthRuntime(net, mode=mode)
            result = runtime.snapshot_chunked(0, max_records=budget)
            outcomes.append((result[0], result[1], result[2]["chunks"],
                             net.trace.hop_sequence()))
        assert outcomes[0] == outcomes[1]


class TestMultiServiceDifferential:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(3, 10), st.integers(0, 200))
    def test_multi_matches_single_for_every_service(self, n, seed):
        from repro.core.engine import MultiServiceEngine

        topo = erdos_renyi(n, 0.3, seed=seed)
        services = [
            PlainTraversalService(),
            SnapshotService(),
            CriticalNodeService(),
        ]
        for mode in ("interpreted", "compiled"):
            multi_net = Network(topo)
            multi = MultiServiceEngine(multi_net, services, mode=mode)
            for service in services:
                multi_result = multi.trigger(service, 0)
                single_net = Network(topo)
                single = make_engine(single_net, type(service)(), mode)
                single_result = single.trigger(0)
                assert (
                    multi_result.in_band_messages
                    == single_result.in_band_messages
                )
                assert [
                    (node, packet.fields) for node, packet in multi_result.reports
                ] == [
                    (node, packet.fields) for node, packet in single_result.reports
                ]


class TestCritical:
    def test_zoo_all_roots(self, zoo_topology):
        for root in list(zoo_topology.nodes())[:6]:
            assert_equivalent(zoo_topology, CriticalNodeService, root=root)

    @settings(max_examples=12, deadline=None)
    @given(st.integers(3, 12), st.integers(0, 300), st.data())
    def test_random(self, n, seed, data):
        topo = erdos_renyi(n, 0.25, seed=seed)
        root = data.draw(st.integers(0, n - 1))
        assert_equivalent(topo, CriticalNodeService, root=root)


class TestBlackhole:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(3, 12), st.integers(0, 300))
    def test_probe_phase_random(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        assert_equivalent(topo, BlackholeService, fields={FIELD_REPEAT: 3})

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 10), st.integers(0, 200), st.data())
    def test_full_detection_random(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        edge_id = data.draw(st.integers(0, topo.num_edges - 1))
        verdicts = []
        for mode in ("interpreted", "compiled"):
            net = Network(topo)
            net.links[edge_id].set_blackhole()
            runtime = SmartSouthRuntime(net, mode=mode)
            verdict = runtime.detect_blackhole_smart(0)
            verdicts.append(
                (verdict.found, verdict.location, verdict.in_band_messages)
            )
        assert verdicts[0] == verdicts[1]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 10), st.integers(0, 200), st.integers(0, 40))
    def test_ttl_probe_random(self, n, seed, ttl):
        topo = erdos_renyi(n, 0.3, seed=seed)
        assert_equivalent(topo, BlackholeTtlService, fields={FIELD_TTL: ttl})

    @settings(max_examples=8, deadline=None)
    @given(st.integers(3, 9), st.integers(0, 150), st.data())
    def test_ttl_full_detection_random(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        edge_id = data.draw(st.integers(0, topo.num_edges - 1))
        verdicts = []
        for mode in ("interpreted", "compiled"):
            net = Network(topo)
            net.links[edge_id].set_blackhole()
            runtime = SmartSouthRuntime(net, mode=mode)
            verdict = runtime.detect_blackhole_ttl(0)
            verdicts.append((verdict.found, verdict.location, verdict.probes))
        assert verdicts[0] == verdicts[1]
