"""The plain SmartSouth traversal: coverage, counts, failover, oracles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import dfs_message_count
from repro.analysis.graph import dfs_edge_order
from repro.core.engine import make_engine
from repro.core.services.base import PlainTraversalService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, line, ring, star, Topology


def run_traversal(topology, root=0, mode="interpreted", fail=(), seed=0):
    net = Network(topology, seed=seed)
    for u, v in fail:
        net.fail_link(u, v)
    engine = make_engine(net, PlainTraversalService(), mode)
    result = engine.trigger(root)
    return net, result


def visited_nodes(net, root):
    nodes = {root}
    for u, _pu, v, _pv in net.trace.hop_sequence():
        nodes.add(u)
        nodes.add(v)
    return nodes


class TestCoverage:
    def test_single_node(self, engine_mode):
        _net, result = run_traversal(Topology(1), mode=engine_mode)
        assert result.reports  # finish reaches the controller
        assert result.in_band_messages == 0

    def test_visits_every_node(self, zoo_topology, engine_mode):
        net, result = run_traversal(zoo_topology, mode=engine_mode)
        assert result.reports
        assert visited_nodes(net, 0) == set(zoo_topology.nodes())

    def test_exact_message_count(self, zoo_topology, engine_mode):
        _net, result = run_traversal(zoo_topology, mode=engine_mode)
        expected = dfs_message_count(
            zoo_topology.num_nodes, zoo_topology.num_edges
        )
        assert result.in_band_messages == expected

    def test_every_root_works(self, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=11)
        for root in topo.nodes():
            _net, result = run_traversal(topo, root=root, mode=engine_mode)
            assert result.reports, f"root {root} failed"

    def test_matches_offline_oracle(self, zoo_topology):
        net, _result = run_traversal(zoo_topology)
        oracle = dfs_edge_order(zoo_topology, 0)
        assert net.trace.hop_sequence() == oracle


class TestFailover:
    def test_single_failure_on_ring_still_covers(self, engine_mode):
        topo = ring(8)
        net, result = run_traversal(topo, fail=[(2, 3)], mode=engine_mode)
        assert result.reports
        assert visited_nodes(net, 0) == set(topo.nodes())

    def test_traversal_confined_to_component(self, engine_mode):
        # Failing both ring links around node 4 cuts it off.
        topo = ring(6)
        net, result = run_traversal(topo, fail=[(3, 4), (4, 5)], mode=engine_mode)
        assert result.reports
        assert 4 not in visited_nodes(net, 0)
        assert visited_nodes(net, 0) == {0, 1, 2, 3, 5}

    def test_root_with_all_ports_down(self, engine_mode):
        topo = star(4)
        net, result = run_traversal(
            topo, fail=[(0, 1), (0, 2), (0, 3)], mode=engine_mode
        )
        assert result.reports  # immediate finish
        assert result.in_band_messages == 0

    def test_leaf_root(self, engine_mode):
        topo = star(5)
        _net, result = run_traversal(topo, root=3, mode=engine_mode)
        assert result.reports
        assert result.in_band_messages == dfs_message_count(5, 4)

    @pytest.mark.parametrize("kill", range(4))
    def test_complete_graph_single_failures(self, kill, engine_mode):
        from repro.net.topology import complete

        topo = complete(5)
        edge = list(topo.edges())[kill]
        net, result = run_traversal(
            topo, fail=[(edge.a.node, edge.b.node)], mode=engine_mode
        )
        assert result.reports
        assert visited_nodes(net, 0) == set(topo.nodes())

    def test_failed_links_reduce_message_count(self, engine_mode):
        topo = erdos_renyi(12, 0.4, seed=6)
        _net1, full = run_traversal(topo, mode=engine_mode)
        edge = list(topo.edges())[0]
        _net2, less = run_traversal(
            topo, fail=[(edge.a.node, edge.b.node)], mode=engine_mode
        )
        assert less.in_band_messages < full.in_band_messages


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 24), st.integers(0, 1000))
    def test_random_graphs_complete_with_exact_count(self, n, seed):
        topo = erdos_renyi(n, 0.25, seed=seed)
        _net, result = run_traversal(topo)
        assert result.reports
        assert result.in_band_messages == dfs_message_count(n, topo.num_edges)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 16), st.integers(0, 500), st.data())
    def test_random_failures_cover_live_component(self, n, seed, data):
        topo = erdos_renyi(n, 0.35, seed=seed)
        net = Network(topo)
        edge_ids = data.draw(
            st.sets(st.integers(0, topo.num_edges - 1), max_size=3)
        )
        net.fail_edges(edge_ids)
        engine = make_engine(net, PlainTraversalService(), "interpreted")
        result = engine.trigger(0)
        assert result.reports

        # Compute the live component of the root independently.
        live_adj: dict[int, set[int]] = {u: set() for u in topo.nodes()}
        for link in net.links:
            if link.up:
                live_adj[link.edge.a.node].add(link.edge.b.node)
                live_adj[link.edge.b.node].add(link.edge.a.node)
        component = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in live_adj[u]:
                if v not in component:
                    component.add(v)
                    frontier.append(v)
        if len(component) > 1:
            assert visited_nodes(net, 0) == component

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 12), st.integers(0, 200))
    def test_traversal_is_a_closed_walk(self, n, seed):
        """Consecutive hops chain: each starts where the previous ended,
        and the walk starts and ends at the root."""
        topo = erdos_renyi(n, 0.3, seed=seed)
        net, _result = run_traversal(topo)
        hops = net.trace.hop_sequence()
        here = 0
        for u, _pu, v, _pv in hops:
            assert u == here
            here = v
        assert here == 0  # the packet returns to the root

    @settings(max_examples=10, deadline=None)
    @given(st.integers(3, 12), st.integers(0, 200))
    def test_every_live_edge_crossed_both_ways(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        net, _result = run_traversal(topo)
        directed = {(u, pu) for u, pu, _v, _pv in net.trace.hop_sequence()}
        for edge in topo.edges():
            assert (edge.a.node, edge.a.port) in directed
            assert (edge.b.node, edge.b.port) in directed


class TestLineAndSmallCases:
    def test_two_nodes(self, engine_mode):
        _net, result = run_traversal(line(2), mode=engine_mode)
        assert result.in_band_messages == 2

    def test_triangle(self, engine_mode):
        _net, result = run_traversal(ring(3), mode=engine_mode)
        # 2 tree edges x2 + 1 non-tree x4 = 8
        assert result.in_band_messages == 8

    def test_parallel_edges(self, engine_mode):
        topo = Topology(2)
        topo.add_link(0, 1)
        topo.add_link(0, 1)
        _net, result = run_traversal(topo, mode=engine_mode)
        # 1 tree edge (2) + 1 parallel non-tree edge (4) = 6
        assert result.reports
        assert result.in_band_messages == 6
