"""The documentation's code must actually run.

Executes every ``python`` code block in README.md and the package
docstring's quickstart, so the docs can never drift from the API.
"""

from __future__ import annotations

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def python_blocks(path: pathlib.Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_has_python_examples(self):
        assert len(python_blocks(ROOT / "README.md")) >= 1

    @pytest.mark.parametrize(
        "index,block",
        list(enumerate(python_blocks(ROOT / "README.md"))),
        ids=lambda value: str(value) if isinstance(value, int) else "block",
    )
    def test_readme_block_runs(self, index, block):
        exec(compile(block, f"README.md[block {index}]", "exec"), {})


class TestPackageDocstring:
    def test_quickstart_in_module_docstring_runs(self):
        import repro

        match = re.search(r"Quickstart::\n\n(.*)\Z", repro.__doc__, re.DOTALL)
        assert match, "package docstring lost its quickstart"
        code = "\n".join(
            line[4:] if line.startswith("    ") else line
            for line in match.group(1).splitlines()
        )
        exec(compile(code, "repro.__doc__", "exec"), {})


class TestTutorial:
    def test_tutorial_service_snippets_consistent(self):
        """The tutorial's code must match the example it claims to match."""
        tutorial = (ROOT / "docs" / "TUTORIAL.md").read_text()
        example = (ROOT / "examples" / "custom_service.py").read_text()
        for fragment in (
            "FIELD_BUDGET = \"count_budget\"",
            "class NodeCountService(Service):",
            "register_codegen(NodeCountService, NodeCountCodegen)",
        ):
            assert fragment in tutorial
            assert fragment in example
