"""Exhaustive verification on ALL small connected graphs.

Property tests sample; these tests enumerate.  Every connected labeled
graph on 4 nodes (38 of them) is checked in both engines, and every
connected labeled graph on 5 nodes (728) in the interpreted engine — for
traversal message counts, snapshot exactness, criticality against the
Tarjan oracle, and anycast delivery.  If the template or a hook had a
corner-case bug on some adjacency pattern, it could not hide here.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis.complexity import dfs_message_count
from repro.analysis.graph import articulation_points
from repro.core.engine import make_engine
from repro.core.fields import FIELD_GID
from repro.core.runtime import SmartSouthRuntime
from repro.core.services.anycast import AnycastService
from repro.net.simulator import Network
from repro.net.topology import from_edge_list


def connected_graphs(n: int):
    """All connected labeled graphs on n nodes, as edge tuples."""
    all_edges = list(itertools.combinations(range(n), 2))
    for bits in range(1, 1 << len(all_edges)):
        edges = [all_edges[i] for i in range(len(all_edges)) if bits >> i & 1]
        topo = from_edge_list(n, edges, name=f"g{n}-{bits}")
        if topo.is_connected():
            yield topo


GRAPHS_4 = list(connected_graphs(4))
GRAPHS_5 = list(connected_graphs(5))


def test_enumeration_sizes():
    # OEIS A001187: connected labeled graphs on 4 / 5 nodes.
    assert len(GRAPHS_4) == 38
    assert len(GRAPHS_5) == 728


@pytest.mark.parametrize("topo", GRAPHS_4, ids=lambda t: t.name)
def test_all_4_node_graphs_both_engines(topo):
    n, e = topo.num_nodes, topo.num_edges
    expected = dfs_message_count(n, e)
    for mode in ("interpreted", "compiled"):
        runtime = SmartSouthRuntime(Network(topo), mode=mode)
        # Traversal: exact count from every root.
        for root in topo.nodes():
            result = runtime.traverse(root)
            assert result.reports
            assert result.in_band_messages == expected
        # Snapshot: exact reconstruction.
        snap = runtime.snapshot(0)
        assert snap.nodes == set(topo.nodes())
        assert snap.links == topo.port_pair_set()
        # Criticality: every node against the oracle.
        oracle = articulation_points(topo)
        got = {u for u in topo.nodes() if runtime.critical(u).critical}
        assert got == oracle


def test_all_5_node_graphs_interpreted():
    for topo in GRAPHS_5:
        n, e = topo.num_nodes, topo.num_edges
        runtime = SmartSouthRuntime(Network(topo))
        result = runtime.traverse(0)
        assert result.reports, topo.name
        assert result.in_band_messages == dfs_message_count(n, e), topo.name
        snap = runtime.snapshot(0)
        assert snap.links == topo.port_pair_set(), topo.name


def test_all_5_node_graphs_criticality():
    for topo in GRAPHS_5:
        runtime = SmartSouthRuntime(Network(topo))
        oracle = articulation_points(topo)
        got = {u for u in topo.nodes() if runtime.critical(u).critical}
        assert got == oracle, topo.name


def test_all_5_node_graphs_anycast_every_target():
    for topo in GRAPHS_5[::7]:  # every 7th graph: 104 graphs x 4 targets
        net = Network(topo)
        engine = make_engine(net, AnycastService({1: {1}, 2: {2}, 3: {3}, 4: {4}}),
                             "interpreted")
        for gid in (1, 2, 3, 4):
            result = engine.trigger(
                0, fields={FIELD_GID: gid}, from_controller=False
            )
            assert result.delivered_at == gid, (topo.name, gid)


def test_sample_5_node_graphs_compiled():
    for topo in GRAPHS_5[::31]:  # 24 compiled spot checks
        runtime = SmartSouthRuntime(Network(topo), mode="compiled")
        snap = runtime.snapshot(0)
        assert snap.links == topo.port_pair_set(), topo.name
        oracle = articulation_points(topo)
        got = {u for u in topo.nodes() if runtime.critical(u).critical}
        assert got == oracle, topo.name
