"""Tag layout: bit packing, sizing, record costs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fields import (
    FIELD_GID,
    FIELD_START,
    GLOBAL_FIELD_BITS,
    TagLayout,
    cur_field,
    par_field,
    port_bits,
)
from repro.net.topology import erdos_renyi, line, ring, star
from repro.openflow.packet import Packet


class TestPortBits:
    @pytest.mark.parametrize(
        "degree,expected", [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8)]
    )
    def test_widths(self, degree, expected):
        assert port_bits(degree) == expected


class TestTagLayout:
    def test_field_names(self):
        assert par_field(3) == "v3.par"
        assert cur_field(3) == "v3.cur"

    def test_total_bits_composition(self):
        topo = ring(5)  # every node degree 2 -> 2 bits per tag field
        layout = TagLayout(topo)
        global_bits = sum(GLOBAL_FIELD_BITS.values())
        assert layout.total_bits == global_bits + 5 * 2 * 2
        assert layout.tag_bits == 5 * 2 * 2
        assert layout.total_bytes == (layout.total_bits + 7) // 8

    def test_star_hub_gets_wider_slots(self):
        topo = star(9)  # hub degree 8 -> 4 bits; leaves 1 bit
        layout = TagLayout(topo)
        assert layout.slot(par_field(0)).width == 4
        assert layout.slot(par_field(1)).width == 1

    def test_pack_unpack_roundtrip_simple(self):
        topo = line(3)
        layout = TagLayout(topo)
        fields = {FIELD_START: 1, FIELD_GID: 300, par_field(1): 1, cur_field(1): 2}
        assert layout.unpack(layout.pack(fields)) == fields

    def test_pack_rejects_overflow(self):
        layout = TagLayout(line(3))
        with pytest.raises(ValueError):
            layout.pack({FIELD_START: 4})  # start is 2 bits

    def test_pack_rejects_unknown_field(self):
        layout = TagLayout(line(3))
        with pytest.raises(KeyError):
            layout.pack({"nonsense": 1})

    def test_pack_packet_ignores_foreign_fields(self):
        layout = TagLayout(line(3))
        packet = Packet(fields={FIELD_START: 1, "scratch_foreign": 9})
        header = layout.pack_packet(packet)
        assert layout.unpack(header) == {FIELD_START: 1}

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 20), st.integers(0, 50), st.data())
    def test_roundtrip_random(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        layout = TagLayout(topo)
        fields = {}
        for node in topo.nodes():
            deg = topo.degree(node)
            fields[par_field(node)] = data.draw(st.integers(0, deg))
            fields[cur_field(node)] = data.draw(st.integers(0, deg))
        fields[FIELD_START] = data.draw(st.integers(0, 3))
        packed = layout.pack(fields)
        unpacked = layout.unpack(packed)
        nonzero = {k: v for k, v in fields.items() if v}
        assert unpacked == nonzero

    def test_record_bits_scale_with_size(self):
        small = TagLayout(line(4)).record_bits()
        big = TagLayout(erdos_renyi(200, 0.02, seed=1)).record_bits()
        assert big["visit"] > small["visit"]
        assert small["ret"] == big["ret"] == 2

    def test_stack_bits(self):
        layout = TagLayout(line(4))
        costs = layout.record_bits()
        stack = [("visit", 0, 0), ("out", 1), ("ret",)]
        assert layout.stack_bits(stack) == (
            costs["visit"] + costs["out"] + costs["ret"]
        )

    def test_tag_bits_grow_linearly(self):
        bits_10 = TagLayout(ring(10)).tag_bits
        bits_40 = TagLayout(ring(40)).tag_bits
        assert bits_40 == 4 * bits_10
