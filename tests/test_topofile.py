"""Topology file round-trips preserve port numbering (and hence DFS order)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import SmartSouthRuntime
from repro.net.simulator import Network
from repro.net.topofile import dumps, load, loads, save
from repro.net.topology import TopologyError, abilene, erdos_renyi


class TestRoundTrip:
    def test_dumps_loads_identity(self, zoo_topology):
        restored = loads(dumps(zoo_topology))
        assert restored.num_nodes == zoo_topology.num_nodes
        assert restored.port_pair_set() == zoo_topology.port_pair_set()
        assert restored.name == zoo_topology.name

    def test_file_roundtrip(self, tmp_path):
        topo = abilene()
        path = tmp_path / "abilene.topo"
        save(topo, path)
        restored = load(path)
        assert restored.port_pair_set() == topo.port_pair_set()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 20), st.integers(0, 500))
    def test_random_roundtrip_preserves_ports(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        assert loads(dumps(topo)).port_pair_set() == topo.port_pair_set()

    def test_dfs_order_identical_after_roundtrip(self):
        topo = erdos_renyi(10, 0.3, seed=5)
        restored = loads(dumps(topo))
        traces = []
        for t in (topo, restored):
            net = Network(t)
            SmartSouthRuntime(net, mode="compiled").snapshot(0)
            traces.append(net.trace.hop_sequence())
        assert traces[0] == traces[1]


class TestFormatErrors:
    def test_missing_header(self):
        with pytest.raises(TopologyError):
            loads("nodes 3\n0 1\n")

    def test_missing_node_count(self):
        with pytest.raises(TopologyError):
            loads("# smartsouth-topology x\n0 1\n")

    def test_bad_edge_line(self):
        with pytest.raises(TopologyError):
            loads("# smartsouth-topology x\nnodes 3\n0 1 2\n")

    def test_non_numeric_edge(self):
        with pytest.raises(TopologyError):
            loads("# smartsouth-topology x\nnodes 3\na b\n")

    def test_out_of_range_edge(self):
        with pytest.raises(TopologyError):
            loads("# smartsouth-topology x\nnodes 2\n0 5\n")

    def test_comments_ignored(self):
        text = ("# smartsouth-topology demo\nnodes 2\n# a comment\n0 1\n")
        topo = loads(text)
        assert topo.num_edges == 1
        assert topo.name == "demo"
