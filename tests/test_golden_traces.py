"""Golden-trace corpus: pinned end-to-end observables for seeded scenarios.

The differential suite proves the two switch engines agree *with each
other*; this corpus pins them against *history*.  Each golden file under
``tests/golden/`` stores the complete observable dict of one seeded chaos
scenario (trace JSONL, per-trigger outcomes, full counter snapshot) as
produced by the fast-path engine.  Any change to traversal semantics,
packet-id allocation, fault planning, or counter accounting shows up as a
golden diff — deliberate changes regenerate the corpus with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.net.scenario import GOLDEN_SCENARIOS, run_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Twelve scenarios: every service × both chaos topologies, profiles and
#: seeds varied so lossy, partition and blackhole faults all appear.  The
#: list lives in the package (repro.net.scenario) so the double-run
#: determinism gate hashes exactly the corpus pinned here.
SCENARIOS = list(GOLDEN_SCENARIOS)


def _golden_path(service, topology, profile, seed) -> Path:
    return GOLDEN_DIR / f"{service}-{topology}-{profile}-s{seed}.json"


def _normalize(observables: dict) -> dict:
    """JSON round-trip, so in-memory tuples compare equal to loaded lists."""
    return json.loads(json.dumps(observables, sort_keys=True))


@pytest.mark.parametrize(
    "service,topology,profile,seed",
    SCENARIOS,
    ids=[f"{s}-{t}-{p}-s{seed}" for s, t, p, seed in SCENARIOS],
)
def test_golden_trace(request, service, topology, profile, seed):
    observed = _normalize(
        run_scenario(service, topology, profile, seed, fast_path=True)
    )
    path = _golden_path(service, topology, profile, seed)
    if request.config.getoption("--regen"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(observed, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path.name} — run pytest "
        f"tests/test_golden_traces.py --regen"
    )
    golden = json.loads(path.read_text())
    if observed != golden:
        for key in golden:
            assert observed.get(key) == golden[key], (
                f"golden drift in {path.name}, key {key!r}"
            )
    assert observed == golden


def test_corpus_is_complete_and_unstale():
    """Every scenario has a golden file and no orphan files linger."""
    expected = {
        _golden_path(*scenario).name for scenario in SCENARIOS
    }
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual == expected


def test_corpus_covers_the_grid():
    services = {s for s, _, _, _ in SCENARIOS}
    topologies = {t for _, t, _, _ in SCENARIOS}
    profiles = {p for _, _, p, _ in SCENARIOS}
    assert services == {"snapshot", "anycast", "priocast", "blackhole"}
    assert topologies == {"torus3x3", "complete5"}
    assert profiles == {"lossy", "partition", "blackhole"}
    assert len(SCENARIOS) == 12
