"""Anycast: delivery iff a member is reachable; zero controller messages."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import dfs_message_count
from repro.core.runtime import SmartSouthRuntime
from repro.core.services.anycast import AnycastService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, line, ring, star


def run_anycast(topology, root, members, gid=1, mode="interpreted", fail=()):
    net = Network(topology)
    for u, v in fail:
        net.fail_link(u, v)
    runtime = SmartSouthRuntime(net, mode=mode)
    return runtime.anycast(root, gid=gid, groups={gid: set(members)})


class TestDelivery:
    def test_delivers_to_some_member(self, zoo_topology, engine_mode):
        n = zoo_topology.num_nodes
        if n < 2:
            pytest.skip("needs 2+ nodes")
        members = {n - 1}
        result = run_anycast(zoo_topology, 0, members, mode=engine_mode)
        assert result.delivered_at in members

    def test_sender_is_member(self, engine_mode):
        result = run_anycast(ring(5), 2, {2, 4}, mode=engine_mode)
        assert result.delivered_at == 2
        assert result.in_band_messages == 0

    def test_exactly_one_delivery(self, engine_mode):
        result = run_anycast(ring(6), 0, {2, 3, 4}, mode=engine_mode)
        assert len(result.deliveries) == 1

    def test_zero_out_band_messages(self, engine_mode):
        result = run_anycast(ring(6), 0, {3}, mode=engine_mode)
        assert result.out_band_messages == 0

    def test_no_member_no_delivery(self, engine_mode):
        result = run_anycast(ring(6), 0, set(), mode=engine_mode)
        assert result.delivered_at is None
        assert result.out_band_messages == 0
        # The packet still performed (at most) a full traversal.
        assert result.in_band_messages == dfs_message_count(6, 6)

    def test_wrong_gid_not_delivered(self, engine_mode):
        topo = ring(5)
        net = Network(topo)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        result = runtime.anycast(0, gid=2, groups={1: {3}})
        assert result.delivered_at is None

    def test_multiple_groups(self, engine_mode):
        topo = line(6)
        net = Network(topo)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        groups = {1: {5}, 2: {1}}
        assert runtime.anycast(0, 1, groups).delivered_at == 5
        net2 = Network(topo)
        runtime2 = SmartSouthRuntime(net2, mode=engine_mode)
        assert runtime2.anycast(0, 2, groups).delivered_at == 1

    def test_in_band_bounded_by_full_dfs(self, engine_mode):
        topo = erdos_renyi(14, 0.3, seed=8)
        result = run_anycast(topo, 0, {13}, mode=engine_mode)
        assert result.in_band_messages <= dfs_message_count(14, topo.num_edges)


class TestRobustness:
    def test_survives_failures_when_member_reachable(self, engine_mode):
        topo = ring(8)
        result = run_anycast(topo, 0, {4}, fail=[(1, 2)], mode=engine_mode)
        assert result.delivered_at == 4

    def test_unreachable_member_not_delivered(self, engine_mode):
        topo = ring(6)
        # Node 3 is cut off entirely.
        result = run_anycast(
            topo, 0, {3}, fail=[(2, 3), (3, 4)], mode=engine_mode
        )
        assert result.delivered_at is None

    def test_falls_back_to_reachable_member(self, engine_mode):
        topo = ring(6)
        result = run_anycast(
            topo, 0, {3, 5}, fail=[(2, 3), (3, 4)], mode=engine_mode
        )
        assert result.delivered_at == 5

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 16), st.integers(0, 500), st.data())
    def test_delivery_iff_member_reachable(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        net = Network(topo)
        kills = data.draw(st.sets(st.integers(0, topo.num_edges - 1), max_size=4))
        net.fail_edges(kills)
        members = data.draw(
            st.sets(st.integers(1, n - 1), min_size=1, max_size=3)
        )
        runtime = SmartSouthRuntime(net)
        result = runtime.anycast(0, gid=1, groups={1: members})

        # Reachability ground truth over live links.
        reach = {0}
        frontier = [0]
        adj: dict[int, set[int]] = {u: set() for u in topo.nodes()}
        for link in net.links:
            if link.up:
                adj[link.edge.a.node].add(link.edge.b.node)
                adj[link.edge.b.node].add(link.edge.a.node)
        while frontier:
            u = frontier.pop()
            for v in adj[u]:
                if v not in reach:
                    reach.add(v)
                    frontier.append(v)
        reachable_members = members & reach
        if reachable_members:
            assert result.delivered_at in reachable_members
        else:
            assert result.delivered_at is None


class TestServiceChain:
    def test_chain_visits_groups_in_order(self, engine_mode):
        topo = ring(8)
        net = Network(topo)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        groups = {1: {2}, 2: {5}, 3: {7}}
        outcome = runtime.service_chain(0, [1, 2, 3], groups)
        assert outcome.completed
        assert outcome.path == [2, 5, 7]

    def test_chain_breaks_on_unreachable_group(self, engine_mode):
        topo = ring(6)
        net = Network(topo)
        net.fail_link(2, 3)
        net.fail_link(3, 4)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        outcome = runtime.service_chain(0, [1, 2], {1: {1}, 2: {3}})
        assert not outcome.completed
        assert outcome.path == [1]

    def test_chain_message_cost_accumulates(self, engine_mode):
        topo = star(6)
        net = Network(topo)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        outcome = runtime.service_chain(1, [1, 2], {1: {2}, 2: {3}})
        assert outcome.completed
        assert outcome.in_band_messages == sum(
            leg.in_band_messages for leg in outcome.legs
        )


class TestServiceConfig:
    def test_add_member(self):
        service = AnycastService()
        service.add_member(1, 4)
        assert service.groups_of(4) == {1}

    def test_nonpositive_gid_rejected(self):
        with pytest.raises(ValueError):
            AnycastService().add_member(0, 1)
