"""Switch pipeline execution: goto, metadata, reserved ports, groups."""

from __future__ import annotations

import pytest

from repro.openflow.actions import (
    GroupAction,
    Instructions,
    Output,
    SetField,
)
from repro.openflow.errors import PipelineError, TableError
from repro.openflow.group import Bucket, Group, GroupType
from repro.openflow.match import FieldTest, Match
from repro.openflow.packet import CONTROLLER_PORT, IN_PORT, Packet
from repro.openflow.switch import Switch


def make_switch(num_ports=4, live=None):
    live = set(live if live is not None else range(1, num_ports + 1))
    return Switch(1, num_ports, liveness=lambda p: p in live)


class TestPipeline:
    def test_single_table_output(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(2),)))
        outs = switch.process(Packet(), in_port=1)
        assert [o.port for o in outs] == [2]

    def test_miss_drops(self):
        switch = make_switch()
        switch.install(0, Match(x=1), Instructions(apply_actions=(Output(2),)))
        assert switch.process(Packet(), in_port=1) == []
        assert switch.table_misses == 1

    def test_goto_chain(self):
        switch = make_switch()
        switch.install(
            0, Match(), Instructions(apply_actions=(SetField("x", 1),), goto_table=2)
        )
        switch.install(2, Match(x=1), Instructions(apply_actions=(Output(3),)))
        outs = switch.process(Packet(), in_port=1)
        assert [o.port for o in outs] == [3]

    def test_goto_backwards_rejected(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(goto_table=1))
        switch.install(1, Match(), Instructions(goto_table=1))
        with pytest.raises(PipelineError):
            switch.process(Packet(), in_port=1)

    def test_goto_missing_table_rejected(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(goto_table=7))
        with pytest.raises(TableError):
            switch.process(Packet(), in_port=1)

    def test_in_port_resolution(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(IN_PORT),)))
        outs = switch.process(Packet(), in_port=3)
        assert [o.port for o in outs] == [3]

    def test_in_port_matchable(self):
        switch = make_switch()
        switch.install(
            0, Match(in_port=2), Instructions(apply_actions=(Output(9),)), priority=5
        )
        switch.install(0, Match(), Instructions(apply_actions=(Output(1),)))
        assert [o.port for o in switch.process(Packet(), in_port=2)] == [9]
        assert [o.port for o in switch.process(Packet(), in_port=3)] == [1]

    def test_metadata_write_and_match(self):
        switch = make_switch()
        switch.install(
            0, Match(), Instructions(write_metadata=(0x2, 0xF), goto_table=1)
        )
        switch.install(
            1,
            Match([FieldTest("metadata", 0x2, 0xF)]),
            Instructions(apply_actions=(Output(4),)),
        )
        assert [o.port for o in switch.process(Packet(), in_port=1)] == [4]

    def test_metadata_masked_update_preserves_other_bits(self):
        switch = make_switch()
        switch.install(
            0, Match(), Instructions(write_metadata=(0xF0, 0xF0), goto_table=1)
        )
        switch.install(
            1, Match(), Instructions(write_metadata=(0x02, 0x0F), goto_table=2)
        )
        switch.install(
            2,
            Match([FieldTest("metadata", 0xF2, 0xFF)]),
            Instructions(apply_actions=(Output(1),)),
        )
        assert [o.port for o in switch.process(Packet(), in_port=1)] == [1]

    def test_output_copies_packet_state_at_emit_time(self):
        switch = make_switch()
        switch.install(
            0,
            Match(),
            Instructions(
                apply_actions=(
                    SetField("x", 1),
                    Output(CONTROLLER_PORT),
                    SetField("x", 2),
                    Output(1),
                )
            ),
        )
        outs = switch.process(Packet(), in_port=2)
        assert outs[0].packet.get("x") == 1
        assert outs[1].packet.get("x") == 2

    def test_group_action_in_pipeline(self):
        switch = make_switch(live={2})
        switch.add_group(
            Group(
                7,
                GroupType.FF,
                [
                    Bucket([Output(1)], watch_port=1),
                    Bucket([Output(2)], watch_port=2),
                ],
            )
        )
        switch.install(0, Match(), Instructions(apply_actions=(GroupAction(7),)))
        assert [o.port for o in switch.process(Packet(), in_port=3)] == [2]

    def test_rule_loop_guard(self):
        # A pathological pipeline with very many tables still terminates.
        switch = make_switch()
        for t in range(Switch.MAX_PIPELINE_STEPS + 2):
            switch.install(t, Match(), Instructions(goto_table=t + 1))
        with pytest.raises(PipelineError):
            switch.process(Packet(), in_port=1)


class TestIntrospection:
    def test_rule_and_group_counts(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions())
        switch.install(1, Match(x=1), Instructions())
        switch.add_group(Group(1, GroupType.ALL, []))
        assert switch.rule_count() == 2
        assert switch.group_count() == 1

    def test_live_ports(self):
        switch = make_switch(num_ports=4, live={1, 3})
        assert switch.live_ports() == [1, 3]

    def test_port_live_bounds(self):
        switch = make_switch(num_ports=2, live={1, 2, 3})
        assert switch.port_live(1)
        assert not switch.port_live(3)  # beyond num_ports
        assert not switch.port_live(0)
        assert not switch.port_live(-1)

    def test_describe_mentions_tables_and_groups(self):
        switch = make_switch()
        switch.install(0, Match(), Instructions(), cookie="hello")
        switch.add_group(Group(3, GroupType.FF, []))
        text = switch.describe()
        assert "table 0" in text and "group 3" in text

    def test_negative_port_count_rejected(self):
        with pytest.raises(PipelineError):
            Switch(1, -1)
