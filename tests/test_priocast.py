"""Priocast: two-phase delivery to the highest-priority reachable member."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import priocast_message_count
from repro.core.runtime import SmartSouthRuntime
from repro.core.services.anycast import PriocastService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, line, ring


def run_priocast(topology, root, priorities, mode="interpreted", fail=()):
    net = Network(topology)
    for u, v in fail:
        net.fail_link(u, v)
    runtime = SmartSouthRuntime(net, mode=mode)
    return runtime.priocast(root, gid=1, priorities={1: priorities})


class TestDelivery:
    def test_highest_priority_wins(self, engine_mode):
        result = run_priocast(ring(8), 0, {2: 10, 5: 30, 7: 20}, mode=engine_mode)
        assert result.delivered_at == 5

    def test_closer_low_priority_loses(self, engine_mode):
        # Node 1 is adjacent to the root but has the lowest priority.
        result = run_priocast(line(6), 0, {1: 1, 5: 9}, mode=engine_mode)
        assert result.delivered_at == 5

    def test_root_is_best(self, engine_mode):
        result = run_priocast(ring(5), 0, {0: 99, 2: 10}, mode=engine_mode)
        assert result.delivered_at == 0

    def test_root_is_only_member(self, engine_mode):
        result = run_priocast(ring(5), 0, {0: 5}, mode=engine_mode)
        assert result.delivered_at == 0

    def test_single_remote_member(self, engine_mode):
        result = run_priocast(line(4), 0, {3: 7}, mode=engine_mode)
        assert result.delivered_at == 3

    def test_no_member_no_delivery(self, engine_mode):
        result = run_priocast(ring(5), 0, {}, mode=engine_mode)
        assert result.delivered_at is None

    def test_exactly_one_delivery(self, engine_mode):
        result = run_priocast(ring(7), 3, {1: 5, 5: 5, 6: 4}, mode=engine_mode)
        assert len(result.deliveries) == 1

    def test_equal_priorities_pick_first_bidder(self, engine_mode):
        # Phase 1 updates opt only on strictly higher priority, so the first
        # equal-priority member in DFS order wins.
        result = run_priocast(line(6), 0, {2: 5, 4: 5}, mode=engine_mode)
        assert result.delivered_at == 2

    def test_zero_out_band(self, engine_mode):
        result = run_priocast(ring(6), 0, {3: 2}, mode=engine_mode)
        assert result.out_band_messages == 0

    def test_two_phase_message_cost(self, engine_mode):
        topo = erdos_renyi(12, 0.3, seed=3)
        result = run_priocast(topo, 0, {11: 5}, mode=engine_mode)
        bound = priocast_message_count(12, topo.num_edges)
        assert result.in_band_messages <= bound
        # And it genuinely used a second phase (more than one full DFS).
        assert result.in_band_messages > bound // 2


class TestRobustness:
    def test_unreachable_best_falls_back(self, engine_mode):
        topo = ring(8)
        # Best member 4 is cut off; 6 must win.
        result = run_priocast(
            topo, 0, {4: 99, 6: 10}, fail=[(3, 4), (4, 5)], mode=engine_mode
        )
        assert result.delivered_at == 6

    def test_failover_route_still_finds_best(self, engine_mode):
        topo = ring(8)
        result = run_priocast(topo, 0, {4: 99, 6: 10}, fail=[(1, 2)], mode=engine_mode)
        assert result.delivered_at == 4

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 14), st.integers(0, 500), st.data())
    def test_best_reachable_member_property(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        members = data.draw(
            st.dictionaries(
                st.integers(0, n - 1), st.integers(1, 200), min_size=1, max_size=5
            )
        )
        root = data.draw(st.integers(0, n - 1))
        result = run_priocast(topo, root, members)
        best = max(members.values())
        winners = {node for node, prio in members.items() if prio == best}
        assert result.delivered_at in winners


class TestServiceConfig:
    def test_add_member_and_lookup(self):
        service = PriocastService()
        service.add_member(1, 4, 10)
        assert service.priority_of(4, 1) == 10
        assert service.groups_of(4) == {1}

    def test_priority_bounds(self):
        service = PriocastService()
        with pytest.raises(ValueError):
            service.add_member(1, 4, 0)
        with pytest.raises(ValueError):
            service.add_member(1, 4, 256)

    def test_nonpositive_gid_rejected(self):
        with pytest.raises(ValueError):
            PriocastService().add_member(0, 1, 1)
