"""In-band reporting: verdicts delivered to a server at the root switch.

The paper (§3.5): "all out-of-band messages can be sent in-band to any
server connected to the first node of the traversal, thereby allowing
complete in-band monitoring."  Root-reporting services accept
``inband_report=True`` to route their verdict to the root's local port
instead of the controller.
"""

from __future__ import annotations


from repro.core.engine import make_engine
from repro.core.fields import FIELD_SNAP_DONE
from repro.core.services.base import PlainTraversalService
from repro.core.services.critical import (
    CRITICAL,
    FIELD_CRITICAL,
    NOT_CRITICAL,
    CriticalNodeService,
)
from repro.core.services.snapshot import SnapshotService, decode_snapshot
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, ring, star


class TestInbandReporting:
    def test_plain_traversal_reports_locally(self, engine_mode):
        net = Network(ring(5))
        engine = make_engine(net, PlainTraversalService(inband_report=True),
                             engine_mode)
        result = engine.trigger(0, from_controller=False)
        assert not result.reports  # nothing touched the controller
        assert result.deliveries and result.deliveries[0][0] == 0
        assert result.out_band_messages == 0  # fully in-band

    def test_snapshot_delivered_to_root_server(self, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=4)
        net = Network(topo)
        engine = make_engine(net, SnapshotService(inband_report=True), engine_mode)
        result = engine.trigger(0, from_controller=False)
        assert result.out_band_messages == 0
        node, packet = result.deliveries[0]
        assert node == 0
        assert packet.get(FIELD_SNAP_DONE) == 1
        nodes, links = decode_snapshot(packet)
        assert links == topo.port_pair_set()

    def test_critical_verdicts_delivered_locally(self, engine_mode):
        topo = star(5)
        net = Network(topo)
        engine = make_engine(net, CriticalNodeService(inband_report=True),
                             engine_mode)
        hub = engine.trigger(0, from_controller=False)
        assert hub.deliveries[0][1].get(FIELD_CRITICAL) == CRITICAL
        leaf = engine.trigger(2, from_controller=False)
        assert leaf.deliveries[0][1].get(FIELD_CRITICAL) == NOT_CRITICAL
        assert hub.out_band_messages == leaf.out_band_messages == 0

    def test_default_still_reports_to_controller(self, engine_mode):
        net = Network(ring(5))
        engine = make_engine(net, SnapshotService(), engine_mode)
        result = engine.trigger(0)
        assert result.reports and not result.deliveries

    def test_verdict_node_is_the_root(self, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=4)
        net = Network(topo)
        engine = make_engine(net, CriticalNodeService(inband_report=True),
                             engine_mode)
        for root in (0, 3, 7):
            result = engine.trigger(root, from_controller=False)
            assert result.deliveries[0][0] == root

    def test_matches_controller_mode_verdicts(self, engine_mode):
        """Same verdicts either way; only the delivery path changes."""
        topo = erdos_renyi(12, 0.25, seed=9)
        inband = make_engine(
            Network(topo), CriticalNodeService(inband_report=True), engine_mode
        )
        outband = make_engine(
            Network(topo), CriticalNodeService(), engine_mode
        )
        for node in topo.nodes():
            a = inband.trigger(node, from_controller=False)
            b = outband.trigger(node)
            verdict_a = a.deliveries[0][1].get(FIELD_CRITICAL)
            verdict_b = b.reports[0][1].get(FIELD_CRITICAL)
            assert verdict_a == verdict_b
