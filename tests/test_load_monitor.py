"""Load inference via smart counters (the paper's §4 remark) + CRT."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import SmartSouthRuntime
from repro.core.services.load import LoadAuditService, LoadMonitor, crt
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, grid, line, ring


def make_monitor(topology, moduli=(5, 7, 11), seed=0):
    net = Network(topology, seed=seed)
    runtime = SmartSouthRuntime(net)
    return runtime.load_monitor(moduli), net


class TestCrt:
    def test_single_modulus(self):
        assert crt({7: 3}) == 3

    def test_two_moduli(self):
        # x = 23: 23 mod 5 = 3, 23 mod 7 = 2.
        assert crt({5: 3, 7: 2}) == 23

    def test_three_moduli(self):
        x = 311
        assert crt({5: x % 5, 7: x % 7, 11: x % 11}) == x

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 5 * 7 * 11 - 1))
    def test_roundtrip(self, x):
        assert crt({5: x % 5, 7: x % 7, 11: x % 11}) == x

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 * 3 * 5 * 7 - 1))
    def test_roundtrip_other_basis(self, x):
        residues = {m: x % m for m in (2, 3, 5, 7)}
        assert crt(residues) == x


class TestLoadAudit:
    def test_uniform_traffic(self):
        monitor, _net = make_monitor(ring(5))
        monitor.send_uniform_traffic(9)
        report = monitor.audit(0)
        assert report.loads == monitor.ground_truth()
        assert all(v == 9 for v in report.loads.values())

    def test_skewed_traffic(self):
        topo = grid(3, 3)
        monitor, _net = make_monitor(topo)
        rng = random.Random(3)
        loads = {
            (e.a.node, e.a.port): rng.randrange(0, 380)
            for e in topo.edges()
        }
        monitor.send_traffic(loads)
        report = monitor.audit(0)
        assert report.loads == monitor.ground_truth()

    def test_loads_beyond_product_wrap(self):
        monitor, _net = make_monitor(line(3), moduli=(5, 7))
        monitor.send_traffic({(0, 1): 35 + 4})  # wraps to 4 mod 35
        report = monitor.audit(0)
        assert report.loads[(1, 1)] == 4
        assert report.modulus_product == 35

    def test_zero_traffic_reads_zero(self):
        monitor, _net = make_monitor(ring(4))
        report = monitor.audit(0)
        assert all(v == 0 for v in report.loads.values())

    def test_every_connected_port_audited(self):
        topo = erdos_renyi(10, 0.3, seed=6)
        monitor, _net = make_monitor(topo)
        report = monitor.audit(0)
        expected_keys = set()
        for edge in topo.edges():
            expected_keys.add((edge.a.node, edge.a.port))
            expected_keys.add((edge.b.node, edge.b.port))
        assert set(report.loads) == expected_keys

    def test_repeated_audits_are_corrected(self):
        monitor, _net = make_monitor(ring(4))
        monitor.send_uniform_traffic(3)
        first = monitor.audit(0)
        monitor.send_uniform_traffic(2)
        second = monitor.audit(0)
        assert all(v == 3 for v in first.loads.values())
        assert all(v == 5 for v in second.loads.values())
        assert second.loads == monitor.ground_truth()

    def test_lossy_links_count_only_deliveries(self):
        from repro.net.link import Direction

        monitor, net = make_monitor(line(3), seed=5)
        net.links[0].set_loss(0.5, Direction.A_TO_B)
        monitor.send_traffic({(0, 1): 40})
        net.links[0].clear()
        report = monitor.audit(0)
        assert report.loads == monitor.ground_truth()
        assert report.loads[(1, 1)] < 40  # losses visible in the counter

    def test_load_between_helper(self):
        monitor, net = make_monitor(line(3))
        monitor.send_traffic({(0, 1): 6})
        report = monitor.audit(0)
        assert report.load_between(net, 0, 1) == 6
        assert report.load_between(net, 0, 2) is None

    def test_audit_cost_is_one_dfs(self):
        from repro.analysis.complexity import dfs_message_count

        topo = erdos_renyi(12, 0.3, seed=8)
        monitor, _net = make_monitor(topo)
        report = monitor.audit(0)
        assert report.in_band_messages == dfs_message_count(
            topo.num_nodes, topo.num_edges
        )
        assert report.out_band_messages == 2

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 12), st.integers(0, 200), st.data())
    def test_random_loads_property(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        monitor, _net = make_monitor(topo)
        loads = {}
        for edge in list(topo.edges())[:6]:
            loads[(edge.a.node, edge.a.port)] = data.draw(st.integers(0, 100))
        monitor.send_traffic(loads)
        report = monitor.audit(0)
        assert report.loads == monitor.ground_truth()


class TestConfig:
    def test_monitor_requires_load_service(self):
        from repro.core.engine import make_engine
        from repro.core.services.base import PlainTraversalService

        engine = make_engine(Network(ring(4)), PlainTraversalService(), "interpreted")
        with pytest.raises(TypeError):
            LoadMonitor(engine)

    def test_bad_port_rejected(self):
        monitor, _net = make_monitor(ring(4))
        with pytest.raises(ValueError):
            monitor.send_traffic({(0, 9): 1})

    def test_not_compilable(self):
        from repro.core.compiler import compile_service

        net = Network(ring(4))
        with pytest.raises(NotImplementedError):
            compile_service(net, 0, LoadAuditService())
