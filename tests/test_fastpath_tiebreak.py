"""Same-priority overlap tie-break: insertion order, stable, both engines.

OpenFlow leaves overlapping same-priority entries undefined; this simulator
pins them down — the earliest-installed entry wins — and makes the rule
explicit via the per-entry ``seq`` counter instead of relying on list order
plus sort stability.  These regressions pin the full contract:

* earliest installed wins, in the interpreter and on the fast path;
* the winner is stable across unrelated mutations and re-sorts;
* ``modify`` keeps an entry's seq, so it keeps its place in line;
* remove + re-add assigns a fresh seq, moving the entry to the back.
"""

from __future__ import annotations

from repro.openflow.actions import Instructions, Output
from repro.openflow.fastpath import compile_table
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match
from repro.openflow.packet import Packet
from repro.openflow.switch import Switch


def _overlapping_pair():
    """Two same-priority entries that both match {a: 1}."""
    table = FlowTable(0)
    first = table.add(
        FlowEntry(Match(a=1), Instructions(apply_actions=(Output(1),)), 5)
    )
    second = table.add(
        FlowEntry(Match(), Instructions(apply_actions=(Output(2),)), 5)
    )
    return table, first, second


def _winner(table):
    return table.lookup({"a": 1, "in_port": 1, "metadata": 0})


def _fast_winner(table):
    compiled = compile_table(table).lookup({"a": 1}, 1, 0)
    return None if compiled is None else compiled.entry


def test_earliest_installed_wins():
    table, first, _second = _overlapping_pair()
    assert _winner(table) is first
    assert _fast_winner(table) is first


def test_winner_stable_across_unrelated_mutations():
    table, first, _second = _overlapping_pair()
    assert _winner(table) is first
    extra = table.add(
        FlowEntry(Match(b=9), Instructions(apply_actions=(Output(3),)), 5)
    )
    table.remove(match=Match(b=9))
    assert extra not in list(table.entries())
    assert _winner(table) is first
    assert _fast_winner(table) is first


def test_modify_keeps_position():
    table, first, second = _overlapping_pair()
    table.modify(Match(a=1), Instructions(apply_actions=(Output(4),)))
    assert first.seq < second.seq
    winner = _winner(table)
    assert winner is first
    assert winner.instructions.apply_actions == (Output(4),)
    assert _fast_winner(table) is first


def test_remove_and_readd_moves_to_back():
    table, first, second = _overlapping_pair()
    table.remove(match=Match(a=1))
    readded = table.add(
        FlowEntry(Match(a=1), Instructions(apply_actions=(Output(1),)), 5)
    )
    assert readded.seq > second.seq
    assert _winner(table) is second  # the survivor is now earliest
    assert _fast_winner(table) is second
    assert first.seq != readded.seq


def test_higher_priority_still_beats_earlier_seq():
    table, _first, _second = _overlapping_pair()
    high = table.add(
        FlowEntry(Match(a=1), Instructions(apply_actions=(Output(9),)), 7)
    )
    assert _winner(table) is high
    assert _fast_winner(table) is high


def test_tie_break_identical_on_both_switch_engines():
    """End to end through Switch.process: three same-priority overlapping
    entries; both engines forward out the earliest-installed port."""
    for fast_path in (False, True):
        switch = Switch(node_id=0, num_ports=4, fast_path=fast_path)
        for port in (1, 2, 3):
            switch.install(
                0,
                Match(a=1) if port != 2 else Match(),
                Instructions(apply_actions=(Output(port),)),
                priority=5,
            )
        outputs = switch.process(Packet(fields={"a": 1}), 4)
        assert [out.port for out in outputs] == [1], f"fast_path={fast_path}"
