"""Property-based fuzz for the switch-local fault model.

Two determinism contracts back the switch chaos campaigns:

* **Eviction determinism** — a capacity-bounded :class:`FlowTable` under a
  random install sequence evicts by the (priority, seq) total order and
  rejects with :class:`TableFullError` otherwise, so the final table
  contents and the full error sequence are a pure function of the install
  sequence.  The fast path is an observer here: running the identical
  sequence on a fast-path switch must produce byte-identical
  ``describe()`` output and the identical error transcript.

* **Partial-install ordering** — an active :class:`SwitchFaultConfig`
  draws from a switch-private seeded stream, so with the same seed a
  retried :meth:`Switch.adopt_program` loop must raise the identical
  :class:`InstallError` sequence and converge to the identical inventory
  digest whether the target switch runs the compiled fast path or the
  interpreted scan — and the adopted program must then behave identically
  under scalar and batched processing.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openflow.actions import GroupAction, Instructions, Output, SetField
from repro.openflow.errors import InstallError, TableFullError
from repro.openflow.group import Bucket, Group, GroupType
from repro.openflow.match import Match
from repro.openflow.packet import Packet, reset_packet_ids
from repro.openflow.switch import Switch, SwitchFaultConfig

VALUES = st.integers(0, 7)


@st.composite
def install_ops(draw):
    """A random install sequence: (priority, match value, output port)."""
    return draw(
        st.lists(
            st.tuples(st.integers(0, 5), VALUES, st.integers(1, 3)),
            min_size=1,
            max_size=24,
        )
    )


@st.composite
def programs(draw):
    """A random expected program: table-0/1 entries plus an optional group."""
    rules = []
    for table_id in range(2):
        for _ in range(draw(st.integers(1, 5))):
            actions = [Output(draw(st.integers(1, 3)))]
            if draw(st.booleans()):
                actions.insert(0, SetField("a", draw(VALUES)))
            goto = 1 if table_id == 0 and draw(st.booleans()) else None
            rules.append(
                (
                    table_id,
                    Match(a=draw(VALUES)) if draw(st.booleans()) else Match(),
                    Instructions(apply_actions=tuple(actions), goto_table=goto),
                    draw(st.integers(0, 3)),
                )
            )
    with_group = draw(st.booleans())
    return rules, with_group


def _expected_switch(program) -> Switch:
    rules, with_group = program
    expected = Switch(node_id=0, num_ports=3)
    expected.table(0)
    expected.table(1)
    if with_group:
        expected.add_group(
            Group(
                1,
                GroupType.FF,
                [
                    Bucket([Output(1)], watch_port=1),
                    Bucket([Output(2)]),
                ],
            )
        )
        expected.install(
            0, Match(a=7), Instructions(apply_actions=(GroupAction(1),)), 5
        )
    for table_id, match, instructions, priority in rules:
        expected.install(table_id, match, instructions, priority)
    return expected


def _drive_installs(fast_path: bool, capacity: int, ops):
    """Replay one install sequence; return (describe, digest, errors, stats)."""
    switch = Switch(node_id=0, num_ports=3, fast_path=fast_path)
    table = switch.table(0)
    table.set_capacity(capacity, evict=True)
    errors = []
    for index, (priority, value, port) in enumerate(ops):
        try:
            switch.install(
                0,
                Match(a=value),
                Instructions(apply_actions=(Output(port),)),
                priority,
                cookie=f"op-{index}",
            )
        except TableFullError as exc:
            errors.append(str(exc))
    return (
        switch.describe(),
        switch.inventory_digest(),
        errors,
        (len(table), table.evictions),
    )


@settings(max_examples=200, deadline=None)
@given(st.integers(1, 6), install_ops())
def test_eviction_deterministic_across_fast_path(capacity, ops):
    """Same install sequence ⇒ byte-identical table contents and error
    transcript, fast path on or off."""
    interpreted = _drive_installs(False, capacity, ops)
    compiled = _drive_installs(True, capacity, ops)
    assert interpreted == compiled
    describe, _digest, errors, (occupancy, evictions) = interpreted
    assert occupancy <= capacity
    assert occupancy + evictions + len(errors) == len(ops)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 6), install_ops())
def test_eviction_replay_is_byte_identical(capacity, ops):
    """Replaying the identical sequence twice is bit-for-bit stable."""
    assert _drive_installs(True, capacity, ops) == _drive_installs(
        True, capacity, ops
    )


def _adopt_until_converged(fast_path: bool, expected, prob, budget, seed):
    """Retry adopt_program until it completes; return the error transcript
    and the final (digest, describe)."""
    # Same node id as the expected switch: the digest covers the header
    # line, mirroring the supervisor comparing a node against its own
    # compiled program.
    switch = Switch(node_id=0, num_ports=3, fast_path=fast_path)
    switch.set_faults(
        SwitchFaultConfig(
            partial_install_prob=prob, fail_budget=budget, seed=seed
        )
    )
    errors = []
    for _ in range(budget + 2):
        try:
            switch.adopt_program(expected)
            break
        except InstallError as exc:
            errors.append(str(exc))
    else:
        raise AssertionError("budget-bounded faults must let a retry land")
    return errors, switch


@settings(max_examples=150, deadline=None)
@given(
    programs(),
    st.floats(0.05, 1.0),
    st.integers(0, 3),
    st.integers(0, 2**32 - 1),
)
def test_partial_install_ordering_across_fast_path(program, prob, budget, seed):
    """Same fault seed ⇒ identical InstallError sequence and identical
    converged digest, fast path on or off."""
    expected = _expected_switch(program)
    errors_i, switch_i = _adopt_until_converged(
        False, expected, prob, budget, seed
    )
    errors_c, switch_c = _adopt_until_converged(
        True, expected, prob, budget, seed
    )
    assert errors_i == errors_c
    assert len(errors_i) <= budget
    assert switch_i.inventory_digest() == switch_c.inventory_digest()
    assert switch_i.inventory_digest() == expected.inventory_digest()
    assert switch_i.describe() == switch_c.describe()


@settings(max_examples=100, deadline=None)
@given(
    programs(),
    st.integers(0, 2**32 - 1),
    st.lists(
        st.tuples(st.dictionaries(st.just("a"), VALUES, max_size=1),
                  st.integers(1, 3)),
        min_size=1,
        max_size=8,
    ),
)
def test_adopted_program_agrees_scalar_vs_batch(program, seed, population):
    """After a fault-interrupted adoption converges, scalar and batched
    processing of the same arrivals agree and leave the digest untouched."""
    expected = _expected_switch(program)
    _, scalar_switch = _adopt_until_converged(True, expected, 1.0, 2, seed)
    _, batched_switch = _adopt_until_converged(True, expected, 1.0, 2, seed)

    reset_packet_ids()
    scalar_items = [
        (Packet(fields=dict(fields)), port) for fields, port in population
    ]
    scalar_out = [
        [
            (o.port, sorted(o.packet.fields.items()), o.packet.packet_id)
            for o in scalar_switch.process(packet, port)
        ]
        for packet, port in scalar_items
    ]

    reset_packet_ids()
    batched_items = [
        (Packet(fields=dict(fields)), port) for fields, port in population
    ]
    batched_out = [None] * len(batched_items)

    def deliver(index, outputs):
        batched_out[index] = [
            (port, sorted(pkt.fields.items()), pkt.packet_id)
            for port, pkt in outputs
        ]

    batched_switch.process_batch(batched_items, deliver)

    assert scalar_out == batched_out
    assert scalar_switch.inventory_digest() == batched_switch.inventory_digest()
    assert scalar_switch.inventory_digest() == expected.inventory_digest()


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 5), st.integers(0, 2**32 - 1))
def test_inactive_fault_config_is_inert(budget, seed):
    """A zero-probability config allocates no RNG and never perturbs the
    switch — attaching it is indistinguishable from attaching none."""
    configured = Switch(node_id=0, num_ports=3)
    configured.set_faults(
        SwitchFaultConfig(partial_install_prob=0.0, fail_budget=budget, seed=seed)
    )
    bare = Switch(node_id=0, num_ports=3)
    assert configured._fault_rng is None
    expected = _expected_switch(([(0, Match(), Instructions(
        apply_actions=(Output(1),)), 0)], False))
    configured.adopt_program(expected)
    bare.adopt_program(expected)
    assert configured.describe() == bare.describe()
    assert configured.inventory_digest() == bare.inventory_digest()
