"""Differential conformance: batched drain mode ≡ scalar drain mode.

The batched engine's acceptance check, mirroring
``test_fastpath_differential``: every scenario of the full service matrix —
snapshot / anycast / priocast / blackhole × the chaos topologies × seeded
fault profiles — runs once through the scalar event loop (one arrival per
handler call, the reference semantics) and once through the batched loop
(same-time same-node arrivals grouped into one ``process_batch`` call), and
every observable must be *byte-identical*: the full event trace, every
report and delivery, message accounting, and the complete per-entry /
per-group / per-bucket counter state including SELECT round-robin cursors.

The plain matrix mostly produces single-packet waves (batches of one); the
high-fan-out storm scenarios (:data:`repro.net.scenario.FANOUT_SCENARIOS`)
inject 8–16 simultaneous triggers so real multi-packet batches form, which
is where grouping, memoized lookups, and batch splitting actually execute.
"""

from __future__ import annotations

import json

import pytest

from repro.net.chaos import PROFILES, TOPOLOGIES
from repro.net.scenario import FANOUT_SCENARIOS, SERVICES, run_scenario

SEEDS = (11, 42)

MATRIX = [
    (service, topology, profile, seed)
    for service in SERVICES
    for topology in sorted(TOPOLOGIES)
    for profile in sorted(PROFILES)
    for seed in SEEDS
]

#: Storm scenarios run through both drain modes too — these are the runs
#: where batches are actually larger than one packet.
STORM_MATRIX = list(FANOUT_SCENARIOS)

#: A small interpreted-pipeline slice: batching is a property of the event
#: loop and the Switch.process_batch protocol, not of the fast path, so the
#: interpreted per-entry scan must batch identically as well.
INTERPRETED_MATRIX = [
    ("snapshot-storm", "torus3x3", "lossy", 11),
    ("priocast-storm", "torus3x3", "lossy", 42),
    ("blackhole", "complete5", "blackhole", 11),
]


def _first_divergence(scalar: dict, batched: dict) -> str:
    """A readable pointer at the first differing observable."""
    for key in scalar:
        if scalar[key] == batched[key]:
            continue
        if key == "trace":
            scalar_lines = scalar[key].splitlines()
            batched_lines = batched[key].splitlines()
            for i, (a, b) in enumerate(zip(scalar_lines, batched_lines)):
                if a != b:
                    return f"trace line {i}:\n  scalar:  {a}\n  batched: {b}"
            return (
                f"trace length: scalar={len(scalar_lines)} "
                f"batched={len(batched_lines)}"
            )
        return (
            f"{key}:\n  scalar:  {json.dumps(scalar[key])[:500]}\n"
            f"  batched: {json.dumps(batched[key])[:500]}"
        )
    return "no divergence"


def _assert_modes_identical(service, topology, profile, seed, fast_path):
    scalar = run_scenario(
        service, topology, profile, seed, fast_path=fast_path, batch=False
    )
    batched = run_scenario(
        service, topology, profile, seed, fast_path=fast_path, batch=True
    )
    assert scalar == batched, _first_divergence(scalar, batched)
    # Byte-identical, not merely equal: the JSON encodings must match too
    # (the golden corpus pins this format, in both modes).
    assert json.dumps(scalar, sort_keys=True) == json.dumps(
        batched, sort_keys=True
    )


@pytest.mark.parametrize(
    "service,topology,profile,seed",
    MATRIX,
    ids=[f"{s}-{t}-{p}-s{seed}" for s, t, p, seed in MATRIX],
)
def test_batch_byte_identical(service, topology, profile, seed):
    _assert_modes_identical(service, topology, profile, seed, fast_path=True)


@pytest.mark.parametrize(
    "service,topology,profile,seed",
    STORM_MATRIX,
    ids=[f"{s}-{t}-{p}-s{seed}" for s, t, p, seed in STORM_MATRIX],
)
def test_storm_batch_byte_identical(service, topology, profile, seed):
    _assert_modes_identical(service, topology, profile, seed, fast_path=True)


@pytest.mark.parametrize(
    "service,topology,profile,seed",
    INTERPRETED_MATRIX,
    ids=[f"{s}-{t}-{p}-s{seed}" for s, t, p, seed in INTERPRETED_MATRIX],
)
def test_interpreted_batch_byte_identical(service, topology, profile, seed):
    _assert_modes_identical(service, topology, profile, seed, fast_path=False)


def test_matrix_covers_all_services_and_faults():
    """The matrix really spans the ISSUE's grid (guards against silent
    shrinkage when chaos profiles or topologies are renamed)."""
    services = {m[0] for m in MATRIX}
    topologies = {m[1] for m in MATRIX}
    profiles = {m[2] for m in MATRIX}
    assert services == {"snapshot", "anycast", "priocast", "blackhole"}
    assert topologies == set(TOPOLOGIES)
    assert profiles == set(PROFILES)
    assert len(MATRIX) == len(services) * len(topologies) * len(profiles) * len(
        SEEDS
    )


def test_storm_matrix_covers_fanout_services():
    """Every storm service variant appears, and storms really fan out:
    each injects at least 8 simultaneous triggers (the roots list in the
    aggregated result) and drains them in one run."""
    services = {m[0] for m in STORM_MATRIX}
    assert services == {"snapshot-storm", "anycast-storm", "priocast-storm"}
    for service, topology, profile, seed in STORM_MATRIX:
        observed = run_scenario(
            service, topology, profile, seed, fast_path=True, batch=True
        )
        assert observed["error"] is None
        (aggregate,) = observed["results"]
        assert len(aggregate["roots"]) >= 8


def test_storms_produce_multi_packet_batches():
    """The whole point of the storm corpus: batched runs must actually see
    batches larger than one packet, or the differential suite is vacuous."""
    from repro.core.engine import make_engine
    from repro.net.chaos import _plan_faults
    from repro.net.scenario import _PLAN_SALT, _build_storm
    from repro.net.simulator import Network
    from repro.core.determinism import seeded_rng
    from repro.openflow.packet import reset_packet_ids

    service_name, topology_name, profile_name, seed = STORM_MATRIX[0]
    reset_packet_ids()
    topology = TOPOLOGIES[topology_name]()
    network = Network(topology, seed=seed, fast_path=True, batch=True)
    plan_rng = seeded_rng(seed ^ _PLAN_SALT)
    root = plan_rng.randrange(topology.num_nodes)
    _plan_faults(
        network, PROFILES[profile_name], service_name, root, plan_rng, None
    )
    service, triggers = _build_storm(service_name, topology, root, plan_rng)
    engine = make_engine(network, service, "compiled", fast_path=True, batch=True)

    batch_sizes = []
    original = network._run_segment

    def spy(node, handler, run, base, end):
        batch_sizes.append(end - base)
        return original(node, handler, run, base, end)

    network._run_segment = spy
    for trigger_root, fields, from_controller in triggers:
        engine.trigger(
            trigger_root,
            fields=dict(fields),
            from_controller=from_controller,
            run=False,
        )
    network.run()
    assert batch_sizes, "batched run never reached the segment runner"
    assert max(batch_sizes) >= 2, (
        f"storm produced only single-packet segments: {batch_sizes[:20]}"
    )
