"""Fuzzing-style robustness tests for the substrate and the engines.

These do not check functional answers (the other suites do); they check
that randomized inputs can never wedge, crash, or break conservation
invariants of the machinery itself.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import make_engine
from repro.core.fields import FIELD_GID, FIELD_REPEAT, FIELD_START, FIELD_TTL
from repro.core.services.base import PlainTraversalService
from repro.core.services.blackhole import BlackholeService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi
from repro.net.trace import EventKind
from repro.openflow.actions import (
    DecTtl,
    Instructions,
    Output,
    PopLabel,
    PushLabel,
    SetField,
)
from repro.openflow.match import Match
from repro.openflow.packet import Packet
from repro.openflow.switch import Switch


class TestPipelineFuzz:
    """Random forward-only rule sets always terminate and never corrupt."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_pipeline_terminates(self, seed):
        rng = random.Random(seed)
        switch = Switch(0, num_ports=4)
        num_tables = rng.randint(1, 6)
        for table_id in range(num_tables):
            for _ in range(rng.randint(1, 8)):
                fields = {}
                for _f in range(rng.randint(0, 2)):
                    fields[f"f{rng.randint(0, 3)}"] = rng.randint(0, 3)
                actions = []
                for _a in range(rng.randint(0, 3)):
                    kind = rng.randint(0, 4)
                    if kind == 0:
                        actions.append(SetField(f"f{rng.randint(0, 3)}",
                                                rng.randint(0, 7)))
                    elif kind == 1:
                        actions.append(Output(rng.randint(1, 4)))
                    elif kind == 2:
                        actions.append(PushLabel(("r", rng.randint(0, 9))))
                    elif kind == 3:
                        actions.append(PopLabel())
                    else:
                        actions.append(DecTtl("f0"))
                goto = None
                if table_id + 1 < num_tables and rng.random() < 0.7:
                    goto = rng.randint(table_id + 1, num_tables - 1)
                try:
                    match = Match(**fields)
                except Exception:
                    continue
                switch.install(
                    table_id, match,
                    Instructions(apply_actions=tuple(actions), goto_table=goto),
                    priority=rng.randint(0, 9),
                )
        for trial in range(10):
            packet = Packet(fields={f"f{i}": rng.randint(0, 3) for i in range(4)})
            outputs = switch.process(packet, in_port=rng.randint(1, 4))
            for out in outputs:
                assert out.port != 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_pipeline_is_deterministic(self, seed):
        def build_and_run():
            rng = random.Random(seed)
            switch = Switch(0, num_ports=3)
            for table_id in range(3):
                for _ in range(5):
                    switch.install(
                        table_id,
                        Match(**{f"f{rng.randint(0, 2)}": rng.randint(0, 2)}),
                        Instructions(
                            apply_actions=(
                                SetField(f"f{rng.randint(0, 2)}", rng.randint(0, 2)),
                                Output(rng.randint(1, 3)),
                            ),
                            goto_table=table_id + 1 if table_id < 2 else None,
                        ),
                        priority=rng.randint(0, 5),
                    )
            packet = Packet(fields={"f0": 1, "f1": 2})
            outputs = switch.process(packet, in_port=1)
            return [(o.port, sorted(o.packet.fields.items())) for o in outputs]

        assert build_and_run() == build_and_run()


class TestPacketConservation:
    """Every injected packet is accounted for: delivered, reported,
    dropped, or consumed — never silently duplicated into extra hops."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 14), st.integers(0, 400))
    def test_traversal_events_balance(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        net = Network(topo)
        engine = make_engine(net, PlainTraversalService(), "interpreted")
        engine.trigger(0)
        trace = net.trace
        hops = trace.count(EventKind.HOP)
        # Arrivals = hops; the single packet finishes exactly once.
        assert trace.count(EventKind.PACKET_IN) == 1
        assert trace.count(EventKind.DROP) == 0
        assert hops == trace.in_band_messages

    @settings(max_examples=8, deadline=None)
    @given(st.integers(3, 8), st.integers(0, 200), st.data())
    def test_garbage_service_fields_on_fresh_trigger_never_crash(
        self, n, seed, data
    ):
        """A fresh trigger (start = 0, clean tags) with garbage *service*
        fields must drain cleanly in both engines — the realistic bad-input
        surface (a host injecting nonsense requests)."""
        topo = erdos_renyi(n, 0.3, seed=seed)
        fields = {
            FIELD_GID: data.draw(st.integers(0, 5)),
            FIELD_TTL: data.draw(st.integers(0, 10)),
            FIELD_REPEAT: data.draw(st.integers(0, 3)),
            "opt_id": data.draw(st.integers(0, 9)),
            "firstport": data.draw(st.integers(0, 5)),
        }
        for mode in ("interpreted", "compiled"):
            net = Network(topo)
            engine = make_engine(net, SnapshotService(), mode)
            engine.trigger(0, fields=dict(fields))
            assert net.sim.pending == 0

    def test_garbage_blackhole_repeat_states_drain(self):
        topo = erdos_renyi(8, 0.3, seed=4)
        for repeat in (0, 1, 2, 3):
            net = Network(topo)
            engine = make_engine(net, BlackholeService(), "compiled")
            engine.trigger(0, fields={FIELD_REPEAT: repeat})
            assert net.sim.pending == 0

    def test_forged_tag_state_can_ping_pong_documented(self):
        """Known (and documented) non-robustness: a *forged* in-flight
        packet whose per-node tags make both endpoints bounce it loops
        forever — each node sees an unexpected port and returns the packet.
        Legitimate triggers (start = 0) can never reach this state; the
        simulator's event budget turns it into a loud error."""
        from repro.net.simulator import SimulationLimitError
        from repro.net.topology import line

        topo = line(2)
        net = Network(topo)
        engine = make_engine(net, PlainTraversalService(), "interpreted")
        engine.install()
        forged = Packet(fields={
            FIELD_START: 1, "svc": 1,
            "v0.cur": 1, "v0.par": 1,  # node 0: expects nothing on port 1
            "v1.cur": 1, "v1.par": 1,
        })
        # Craft: deliver to node 0 via port 1 while cur says "expected" —
        # use mismatching cur so both sides bounce.
        forged.set("v0.cur", 0)
        forged.set("v0.par", 1)
        net.inject(0, forged, in_port=1)
        with pytest.raises(SimulationLimitError):
            net.run(max_events=5_000)


class TestDecoderFuzz:
    """The snapshot decoder must reject garbage loudly, never crash."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_record_streams(self, data):
        from repro.core.services.snapshot import (
            SnapshotDecodeError,
            decode_snapshot,
        )

        record = st.one_of(
            st.tuples(st.just("visit"), st.integers(0, 5), st.integers(0, 5)),
            st.tuples(st.just("out"), st.integers(0, 5)),
            st.tuples(st.just("ret")),
            st.tuples(st.just("junk"), st.integers(0, 5)),
        )
        records = data.draw(st.lists(record, max_size=20))
        try:
            nodes, links = decode_snapshot(records)
        except SnapshotDecodeError:
            return  # loud rejection is the contract
        assert isinstance(nodes, set) and isinstance(links, set)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 12), st.integers(0, 200), st.integers(0, 10))
    def test_truncated_streams_never_crash(self, n, seed, cut):
        """A snapshot packet cut short (e.g. by a mid-run failure) must
        decode to a subset or fail loudly — never crash or fabricate."""
        from repro.core.services.snapshot import (
            SnapshotDecodeError,
            decode_snapshot,
        )

        topo = erdos_renyi(n, 0.3, seed=seed)
        net = Network(topo)
        engine = make_engine(net, SnapshotService(), "interpreted")
        result = engine.trigger(0)
        full = list(result.reports[-1][1].stack)
        truncated = full[: max(0, len(full) - cut)]
        try:
            nodes, links = decode_snapshot(truncated)
        except SnapshotDecodeError:
            return
        assert nodes <= set(topo.nodes())
        assert links <= topo.port_pair_set()


class TestEngineReuse:
    def test_many_triggers_on_one_engine(self):
        topo = erdos_renyi(10, 0.3, seed=3)
        net = Network(topo)
        engine = make_engine(net, PlainTraversalService(), "compiled")
        counts = {engine.trigger(root).in_band_messages
                  for root in list(topo.nodes()) * 3}
        assert len(counts) == 1  # same exact count from every root, always

    def test_interleaved_engines_do_not_cross_talk(self):
        topo = erdos_renyi(10, 0.3, seed=3)
        net = Network(topo)
        snap_engine = make_engine(net, SnapshotService(), "compiled")
        plain_engine = make_engine(net, PlainTraversalService(), "compiled")
        snap1 = snap_engine.trigger(0)
        plain = plain_engine.trigger(0)
        snap2 = snap_engine.trigger(0)
        assert snap1.reports[-1][1].stack == snap2.reports[-1][1].stack
        assert plain.reports
