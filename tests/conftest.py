"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.simulator import Network
from repro.net.topology import (
    Topology,
    abilene,
    barabasi_albert,
    binary_tree,
    complete,
    erdos_renyi,
    grid,
    line,
    random_regular,
    ring,
    star,
    torus,
)

#: A representative zoo of small topologies, used across service tests.
TOPOLOGY_ZOO: list[Topology] = []


def _zoo() -> list[Topology]:
    if not TOPOLOGY_ZOO:
        TOPOLOGY_ZOO.extend(
            [
                line(2),
                line(5),
                ring(3),
                ring(8),
                star(6),
                complete(5),
                binary_tree(3),
                grid(3, 4),
                torus(3, 3),
                abilene(),
                erdos_renyi(12, 0.25, seed=1),
                erdos_renyi(16, 0.2, seed=2),
                barabasi_albert(14, 2, seed=3),
                random_regular(12, 3, seed=4),
                _multigraph(),
            ]
        )
    return TOPOLOGY_ZOO


def _multigraph() -> Topology:
    """A ring with parallel links and a doubled chord (multigraph case)."""
    topo = Topology(5, name="multigraph-5")
    for u in range(5):
        topo.add_link(u, (u + 1) % 5)
    topo.add_link(0, 1)  # parallel edge
    topo.add_link(1, 3)  # chord
    topo.add_link(1, 3)  # doubled chord
    return topo


def pytest_addoption(parser):
    parser.addoption(
        "--regen",
        action="store_true",
        default=False,
        help="Regenerate the golden-trace corpus under tests/golden/ from "
        "the current fast-path engine instead of comparing against it.",
    )


def zoo_params():
    return [pytest.param(t, id=t.name) for t in _zoo()]


@pytest.fixture(params=zoo_params())
def zoo_topology(request) -> Topology:
    return request.param


@pytest.fixture(params=["interpreted", "compiled"])
def engine_mode(request) -> str:
    return request.param


def fresh_network(topology: Topology, seed: int = 0) -> Network:
    return Network(topology, seed=seed)
