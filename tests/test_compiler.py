"""Compiled pipelines: structure, sizes, and the static verifier."""

from __future__ import annotations

import pytest

from repro.analysis.verify import verify_engine, verify_switch
from repro.core.compiler import (
    T_BID,
    T_CLASSIFY,
    T_DISPATCH,
    T_SWEEP,
    T_VERIFY_CHECK,
    T_VERIFY_SWEEP,
    compile_service,
    codegen_for,
)
from repro.core.engine import CompiledEngine, make_engine
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import PlainTraversalService, Service
from repro.core.services.blackhole import BlackholeService, BlackholeTtlService
from repro.core.services.critical import CriticalNodeService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import complete, erdos_renyi, ring, star

ALL_SERVICES = [
    PlainTraversalService,
    SnapshotService,
    lambda: AnycastService({1: {0}}),
    lambda: PriocastService({1: {0: 5}}),
    BlackholeService,
    BlackholeTtlService,
    CriticalNodeService,
]


def compile_all(topology, make_service):
    net = Network(topology)
    return [
        compile_service(net, node, make_service()) for node in topology.nodes()
    ]


class TestStructure:
    @pytest.mark.parametrize("make_service", ALL_SERVICES)
    def test_verifier_clean_on_every_service(self, make_service):
        topo = erdos_renyi(8, 0.35, seed=6)
        net = Network(topo)
        engine = make_engine(net, make_service(), "compiled")
        for report in verify_engine(engine):
            assert report.ok, report.errors

    def test_tables_present(self):
        switch = compile_all(ring(4), SnapshotService)[0]
        assert T_DISPATCH in switch.tables
        assert T_CLASSIFY in switch.tables
        assert T_SWEEP in switch.tables

    def test_priocast_has_bid_table(self):
        switch = compile_all(ring(4), lambda: PriocastService({1: {0: 5}}))[0]
        assert T_BID in switch.tables

    def test_blackhole_has_verify_tables(self):
        switch = compile_all(ring(4), BlackholeService)[0]
        assert T_VERIFY_SWEEP in switch.tables
        assert T_VERIFY_CHECK in switch.tables

    def test_plain_service_has_no_extra_tables(self):
        switch = compile_all(ring(4), PlainTraversalService)[0]
        assert T_BID not in switch.tables
        assert T_VERIFY_SWEEP not in switch.tables

    def test_smart_counters_are_select_groups(self):
        from repro.openflow.group import GroupType

        switch = compile_all(ring(4), BlackholeService)[0]
        select = [
            g for g in switch.groups.groups() if g.group_type is GroupType.SELECT
        ]
        assert len(select) == 2  # one counter per port, degree 2
        assert all(
            len(g.buckets) == BlackholeService.counter_modulus for g in select
        )

    def test_sweep_groups_are_fast_failover(self):
        from repro.openflow.group import GroupType

        switch = compile_all(ring(4), PlainTraversalService)[0]
        kinds = {g.group_type for g in switch.groups.groups()}
        assert kinds == {GroupType.FF}

    def test_ff_sweep_groups_end_unconditional(self):
        from repro.openflow.group import GroupType

        switch = compile_all(complete(5), SnapshotService)[0]
        for group in switch.groups.groups():
            if group.group_type is GroupType.FF:
                assert group.buckets[-1].watch_port is None


class TestScaling:
    def test_groups_scale_quadratically_in_degree(self):
        # The sweep needs one FF group per (start-port, parent) pair.
        small = compile_all(star(4), PlainTraversalService)[0]  # hub deg 3
        big = compile_all(star(8), PlainTraversalService)[0]  # hub deg 7
        assert small.group_count() < big.group_count()
        # Within a small constant of deg^2.
        assert big.group_count() <= (7 + 2) * (7 + 2)

    def test_snapshot_rules_quadratic_in_degree(self):
        # The in < cur comparison is rule-enumerated.
        deg5 = compile_all(star(6), SnapshotService)[0]
        deg10 = compile_all(star(11), SnapshotService)[0]
        assert deg10.rule_count() > deg5.rule_count()
        assert deg10.rule_count() <= 12 * 10 * 10

    def test_leaf_switch_is_small(self):
        switches = compile_all(star(6), SnapshotService)
        hub, leaf = switches[0], switches[1]
        assert leaf.rule_count() < hub.rule_count()
        assert leaf.rule_count() < 30

    def test_total_rules_reported_by_engine(self):
        topo = erdos_renyi(8, 0.3, seed=2)
        net = Network(topo)
        engine = make_engine(net, SnapshotService(), "compiled")
        assert isinstance(engine, CompiledEngine)
        engine.install()
        assert engine.total_rules() == sum(
            s.rule_count() for s in engine.switches.values()
        )
        assert engine.total_groups() > 0


class TestCodegenRegistry:
    def test_unknown_service_rejected(self):
        class Exotic(Service):
            name = "exotic"
            service_id = 9

        with pytest.raises(NotImplementedError):
            codegen_for(Exotic(), 0, 2)

    def test_subclass_inherits_codegen(self):
        class MySnapshot(SnapshotService):
            name = "my_snapshot"

        codegen = codegen_for(MySnapshot(), 0, 2)
        assert type(codegen).__name__ == "SnapshotCodegen"


class TestVerifierDetectsBadRules:
    def _clean_switch(self):
        return compile_all(ring(4), PlainTraversalService)[0]

    def test_backward_goto_detected(self):
        from repro.openflow.actions import Instructions
        from repro.openflow.match import Match

        switch = self._clean_switch()
        switch.install(T_SWEEP, Match(bogus=1), Instructions(goto_table=0))
        report = verify_switch(switch)
        assert not report.ok

    def test_missing_group_detected(self):
        from repro.openflow.actions import GroupAction, Instructions
        from repro.openflow.match import Match

        switch = self._clean_switch()
        switch.install(
            T_CLASSIFY,
            Match(bogus=1),
            Instructions(apply_actions=(GroupAction(9999),)),
            priority=77,
        )
        report = verify_switch(switch)
        assert any("missing group" in e for e in report.errors)

    def test_nonexistent_port_detected(self):
        from repro.openflow.actions import Instructions, Output
        from repro.openflow.match import Match

        switch = self._clean_switch()
        switch.install(
            T_CLASSIFY,
            Match(bogus=1),
            Instructions(apply_actions=(Output(42),)),
            priority=78,
        )
        report = verify_switch(switch)
        assert any("nonexistent port" in e for e in report.errors)

    def test_ambiguous_overlap_detected(self):
        from repro.openflow.actions import Instructions, Output
        from repro.openflow.match import Match

        switch = self._clean_switch()
        switch.install(
            T_CLASSIFY, Match(x=1), Instructions(apply_actions=(Output(1),)),
            priority=42,
        )
        switch.install(
            T_CLASSIFY, Match(), Instructions(apply_actions=(Output(2),)),
            priority=42,
        )
        report = verify_switch(switch)
        assert any("overlapping" in e for e in report.errors)
