"""Lint framework tests: clean compiled pipelines pass, and each seeded
fault class is detected by its named rule id (the acceptance matrix of the
static-analysis layer)."""

from __future__ import annotations

import pytest

from repro.analysis.lint import (
    LINT_RULES,
    LintConfig,
    LintFinding,
    lint_engine,
    run_lint,
)
from repro.core.compiler import (
    T_CLASSIFY,
    T_SWEEP,
    compile_service,
    match_meta_sweep,
)
from repro.core.engine import CompiledEngine
from repro.core.services.base import PlainTraversalService
from repro.core.services.blackhole import BlackholeService
from repro.net.simulator import Network
from repro.net.topology import ring, star
from repro.openflow.actions import GroupAction, Instructions, Output, SetField
from repro.openflow.match import Match


def compiled(topo, service=None):
    """node -> Switch for *service* on *topo* (fresh, mutable for faults)."""
    service = service or PlainTraversalService()
    net = Network(topo)
    switches = {
        node: compile_service(net, node, service) for node in topo.nodes()
    }
    return switches, service


def findings_for(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


class TestCleanPipelines:
    def test_plain_ring_zero_errors(self):
        switches, service = compiled(ring(4))
        report = run_lint(switches, ring(4), service=service)
        assert report.errors == []

    def test_blackhole_star_zero_errors(self):
        topo = star(5)
        switches, service = compiled(topo, BlackholeService())
        report = run_lint(switches, topo, service=service)
        assert report.errors == []

    def test_engine_convenience(self):
        net = Network(ring(4))
        engine = CompiledEngine(net, PlainTraversalService())
        report = lint_engine(engine)
        assert report.errors == []
        assert report.service == "plain"
        assert report.nodes == 4

    def test_known_benign_dead_rule_is_warning_only(self):
        # The compiler over-emits the root s=1 sweep row (meta s=1 always
        # implies a nonzero parent): a true positive, kept at warning level.
        switches, service = compiled(ring(4))
        report = run_lint(switches, ring(4), service=service)
        dead = findings_for(report, "SS001")
        assert dead, "expected the benign sweep:root:s1 dead rows"
        assert all(f.severity == "warning" for f in dead)
        assert any(f.cookie == "sweep:root:s1" for f in dead)


class TestSeededFaults:
    """Each fault class must be caught by its named rule id."""

    def test_dead_rule_ss001(self):
        switches, service = compiled(ring(4))
        # metadata value 0xEE is never written by any classify rule.
        switches[0].tables[T_SWEEP].install(
            match_meta_sweep(0xEE),
            Instructions(apply_actions=[Output(1)]),
            priority=40,
            cookie="seed:dead",
        )
        report = run_lint(switches, ring(4), service=service)
        assert any(
            f.node == 0 and f.cookie == "seed:dead"
            for f in findings_for(report, "SS001")
        )

    def test_shadowed_rule_ss002(self):
        switches, service = compiled(ring(4))
        table = switches[1].tables[T_CLASSIFY]
        table.install(
            Match(start=3),
            Instructions(goto_table=T_SWEEP),
            priority=200,
            cookie="seed:cover",
        )
        table.install(
            Match(start=3, gid=5),
            Instructions(apply_actions=[Output(1)]),
            priority=150,
            cookie="seed:shadowed",
        )
        report = run_lint(switches, ring(4), service=service)
        hits = findings_for(report, "SS002")
        assert any(
            f.node == 1 and f.cookie == "seed:shadowed" and "seed:cover"
            in f.message
            for f in hits
        )
        assert all(f.severity == "error" for f in hits)

    def test_table_miss_ss003(self):
        topo = ring(4)
        switches, service = compiled(topo)
        # Strip the classify catch-all on one node: re-arrivals at an
        # already-visited node now fall off the table mid-traversal.
        table = switches[2].tables[T_CLASSIFY]
        table._entries = [
            e for e in table._entries if e.cookie != "classify:bounce"
        ]
        table._sorted = False
        report = run_lint(switches, topo, service=service)
        assert any(
            f.node == 2 and f.table == T_CLASSIFY
            for f in findings_for(report, "SS003")
        )

    def test_set_unmatched_field_ss004(self):
        topo = ring(4)
        switches, service = compiled(topo)
        switches[0].tables[T_SWEEP].install(
            match_meta_sweep(0xED),
            Instructions(apply_actions=[SetField("bogus_field", 1)]),
            priority=40,
            cookie="seed:vestigial-write",
        )
        report = run_lint(switches, topo, service=service)
        assert any(
            f.node == 0 and "bogus_field" in f.message
            for f in findings_for(report, "SS004")
        )

    def test_unreachable_sweep_port_ss005(self):
        # On a ring, a skipped probe is masked (the neighbour's probe gets
        # bounced back over the same edge) — but on a star, dropping the
        # hub's probe bucket for port 2 orphans that leaf entirely.
        topo = star(5)
        switches, service = compiled(topo)
        hub = topo.nodes()[0]
        for group in switches[hub].groups.groups():
            group.buckets = [
                b
                for b in group.buckets
                if not any(
                    isinstance(a, Output) and a.port == 2 for a in b.actions
                )
            ]
        report = run_lint(switches, topo, service=service)
        hits = findings_for(report, "SS005")
        assert hits and all(f.severity == "error" for f in hits)
        assert any(f"{hub}:2" in f.message for f in hits)

    def test_dangling_goto_ss006(self):
        topo = ring(4)
        switches, service = compiled(topo)
        switches[3].tables[T_CLASSIFY].install(
            Match(start=3),
            Instructions(goto_table=99),
            priority=180,
            cookie="seed:dangling",
        )
        report = run_lint(switches, topo, service=service)
        assert any(
            f.node == 3 and f.cookie == "seed:dangling" and "99" in f.message
            for f in findings_for(report, "SS006")
        )

    def test_missing_group_ss007(self):
        topo = ring(4)
        switches, service = compiled(topo)
        switches[0].tables[T_SWEEP].install(
            match_meta_sweep(0xEC),
            Instructions(apply_actions=[GroupAction(999)]),
            priority=40,
            cookie="seed:no-group",
        )
        report = run_lint(switches, topo, service=service)
        assert any(
            f.node == 0 and "999" in f.message
            for f in findings_for(report, "SS007")
        )

    def test_ambiguous_overlap_ss008(self):
        topo = ring(4)
        switches, service = compiled(topo)
        table = switches[0].tables[T_CLASSIFY]
        table.install(
            Match(start=3),
            Instructions(apply_actions=[Output(1)]),
            priority=170,
            cookie="seed:overlap-a",
        )
        table.install(
            Match(start=3),
            Instructions(apply_actions=[Output(2)]),
            priority=170,
            cookie="seed:overlap-b",
        )
        report = run_lint(switches, topo, service=service)
        assert any(
            f.node == 0 and f.cookie in ("seed:overlap-a", "seed:overlap-b")
            for f in findings_for(report, "SS008")
        )


class TestConfigAndReport:
    def test_disable_suppresses_rule(self):
        switches, service = compiled(ring(4))
        config = LintConfig(disable=frozenset({"SS001"}))
        report = run_lint(switches, ring(4), service=service, config=config)
        assert findings_for(report, "SS001") == []
        assert "SS001" not in report.rules_run

    def test_rules_subset(self):
        switches, service = compiled(ring(4))
        report = run_lint(
            switches, ring(4), service=service,
            rules=["SS006", "SS007", "SS008"],
        )
        assert report.rules_run == ["SS006", "SS007", "SS008"]
        assert report.findings == []
        assert report.exit_code == 0

    def test_severity_override_downgrades(self):
        switches, service = compiled(ring(4))
        config = LintConfig(severity_overrides={"SS001": "info"})
        report = run_lint(switches, ring(4), service=service, config=config)
        assert report.warnings == []
        assert report.by_severity("info")
        assert report.exit_code == 0

    def test_exit_codes(self):
        topo = ring(4)
        switches, service = compiled(topo)
        clean = run_lint(switches, topo, service=service)
        assert clean.exit_code == 2  # benign dead-rule warnings only
        switches[3].tables[T_CLASSIFY].install(
            Match(start=3), Instructions(goto_table=99), priority=180,
            cookie="seed:dangling",
        )
        broken = run_lint(switches, topo, service=service)
        assert broken.exit_code == 1

    def test_no_service_skips_walk_rules_with_note(self):
        switches, _service = compiled(ring(4))
        report = run_lint(switches, ring(4), service=None)
        assert any("SS003" in note for note in report.notes)
        assert any("SS005" in note for note in report.notes)
        assert findings_for(report, "SS003") == []

    def test_roots_restriction(self):
        topo = ring(4)
        switches, service = compiled(topo)
        config = LintConfig(roots=(0,))
        report = run_lint(switches, topo, service=service, config=config)
        assert report.errors == []

    def test_json_shape(self):
        switches, service = compiled(ring(4))
        report = run_lint(switches, ring(4), service=service)
        payload = report.to_json()
        assert payload["service"] == "plain"
        assert set(payload["summary"]) == {
            "errors", "warnings", "info", "nodes", "rules_run",
        }
        for item in payload["findings"]:
            assert {"rule", "name", "severity", "message"} <= set(item)

    def test_text_format_lists_rule_ids_and_summary(self):
        switches, service = compiled(ring(4))
        report = run_lint(switches, ring(4), service=service)
        text = report.format_text()
        assert "warning[SS001]" in text
        assert text.strip().endswith(
            f"across {report.nodes} node(s)"
        )

    def test_registry_sanity(self):
        assert {
            "SS001", "SS002", "SS003", "SS004", "SS005", "SS006", "SS007",
            "SS008",
        } <= set(LINT_RULES)
        for rule in LINT_RULES.values():
            assert rule.doc, rule.rule_id
            assert rule.severity in ("error", "warning", "info")

    def test_finding_format_includes_hint(self):
        finding = LintFinding(
            rule="SSX",
            name="demo",
            severity="warning",
            message="msg",
            node=1,
            fix_hint="do the thing",
        )
        text = finding.format()
        assert "hint: do the thing" in text
        assert "node 1" in text


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
