"""Property tests: epoch gate and attempt ledger under duplication/reorder.

The at-most-once contract has two halves.  The *mechanism* half is the
origin :class:`~repro.core.epoch.EpochGate` (admit only tag 0 or the
current epoch) plus the wrap-aware :class:`~repro.core.epoch.EpochClock`;
the *evidence* half is the supervisor's attempt ledger
(:func:`~repro.control.supervisor.check_epoch_ledger`) and the MC009
completion count.  These properties drive both halves with exactly the
inputs a faulty management network produces — duplicated and reordered
messages — over random seeds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.modelcheck import INVARIANTS
from repro.control.channel import ChannelFaultConfig, ControlChannel
from repro.control.supervisor import (
    ACCEPTED,
    SupervisedRuntime,
    SupervisorConfig,
    check_epoch_ledger,
)
from repro.core.epoch import EPOCH_SPACE, EpochClock, EpochGate
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import grid, ring


class TestGateProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        epoch=st.integers(1, EPOCH_SPACE),
        tags=st.lists(st.integers(0, EPOCH_SPACE), max_size=32),
    )
    def test_admission_is_exactly_current_or_unsupervised(self, epoch, tags):
        gate = EpochGate(origin=0, epoch=epoch)
        for tag in tags:
            assert gate.admits(tag) == (tag in (0, epoch))

    @settings(max_examples=50, deadline=None)
    @given(
        epoch=st.integers(1, EPOCH_SPACE),
        tags=st.lists(st.integers(0, EPOCH_SPACE), min_size=1, max_size=16),
        copies=st.integers(2, 4),
    )
    def test_admission_is_duplication_and_order_invariant(
        self, epoch, tags, copies
    ):
        # A gate decision is per-tag: duplicating the stream or reversing
        # it must admit exactly the same multiset of tags.
        gate = EpochGate(origin=0, epoch=epoch)
        stream = tags * copies
        forward = [t for t in stream if gate.admits(t)]
        backward = [t for t in reversed(stream) if gate.admits(t)]
        assert sorted(forward) == sorted(backward)
        assert all(t in (0, epoch) for t in forward)

    @settings(max_examples=50, deadline=None)
    @given(
        start=st.integers(0, EPOCH_SPACE),
        margin=st.integers(1, EPOCH_SPACE - 1),
    )
    def test_resync_always_retires_the_inflight_epoch(self, start, margin):
        # Whatever epoch was mid-flight when the controller died, the
        # post-crash clock never re-allocates it within the margin jump.
        clock = EpochClock(start)
        inflight = clock.advance()
        resynced = clock.resync(margin)
        assert resynced != inflight
        assert 1 <= resynced <= EPOCH_SPACE


class TestLedgerUnderChannelFaults:
    """Real supervised runs through a duplicating/reordering channel."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        dup=st.floats(0.0, 1.0),
        jitter=st.floats(0.0, 20.0),
    )
    def test_snapshot_ledger_stays_clean(self, seed, dup, jitter):
        net = Network(grid(3, 3))
        channel = ControlChannel(
            net,
            faults=ChannelFaultConfig(
                dup_prob=dup, delay=1.0, max_extra_delay=jitter, seed=seed
            ),
        )
        runtime = SupervisedRuntime(
            net, config=SupervisorConfig(max_attempts=3), channel=channel
        )
        snap = runtime.snapshot(0)
        assert check_epoch_ledger(snap.supervision) == []
        if not snap.degraded:
            assert snap.nodes == set(range(9))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_duplicated_triggers_never_double_accept(self, seed):
        # dup_prob=1 duplicates *every* control message: two identical
        # epoch-tagged traversals race, and the straggler's completion must
        # be squashed or ignored, never accepted twice.
        net = Network(ring(5))
        channel = ControlChannel(
            net,
            faults=ChannelFaultConfig(
                dup_prob=1.0, delay=1.0, max_extra_delay=5.0, seed=seed
            ),
        )
        runtime = SupervisedRuntime(
            net, config=SupervisorConfig(max_attempts=3), channel=channel
        )
        outcomes = [
            runtime.snapshot(0).supervision,
            runtime.critical(2).supervision,
        ]
        for outcome in outcomes:
            assert check_epoch_ledger(outcome) == []
            accepted = [a for a in outcome.attempts if a.outcome == ACCEPTED]
            assert len(accepted) <= 1


class TestCompletionCountProperty:
    """MC009 on synthetic report multisets: flagged iff an epoch repeats."""

    @staticmethod
    def _violations(reports):
        from types import SimpleNamespace

        ctx = SimpleNamespace(service=SnapshotService())
        state = SimpleNamespace(
            reports=tuple(reports), deliveries=()
        )
        return list(INVARIANTS["MC009"].check(ctx, state))

    @settings(max_examples=50, deadline=None)
    @given(
        epochs=st.lists(st.integers(0, EPOCH_SPACE), max_size=12),
    )
    def test_flagged_exactly_when_a_nonzero_epoch_repeats(self, epochs):
        reports = [(n, (("epoch", e),), ()) for n, e in enumerate(epochs)]
        repeated = {
            e for e in epochs if e and epochs.count(e) > 1
        }
        violations = self._violations(reports)
        flagged = {
            int(v.message.split()[1]) for v in violations
        }
        assert flagged == repeated
