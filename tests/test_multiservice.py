"""Multi-service pipelines: all SmartSouth functions on one data plane."""

from __future__ import annotations

import pytest

from repro.analysis.verify import verify_switch
from repro.core.compiler import compile_services
from repro.core.engine import MultiServiceEngine, make_engine
from repro.core.fields import FIELD_GID, FIELD_REPEAT
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import PlainTraversalService
from repro.core.services.blackhole import BlackholeService
from repro.core.services.critical import CriticalNodeService
from repro.core.services.snapshot import SnapshotService, decode_snapshot
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, ring


def full_stack():
    return [
        PlainTraversalService(),
        SnapshotService(),
        AnycastService({1: {5}}),
        PriocastService({1: {5: 10, 2: 4}}),
        BlackholeService(),
        CriticalNodeService(),
    ]


@pytest.fixture(params=["interpreted", "compiled"])
def multi(request):
    topo = erdos_renyi(10, 0.3, seed=12)
    net = Network(topo)
    return MultiServiceEngine(net, full_stack(), mode=request.param), topo


class TestMultiService:
    def test_each_service_works(self, multi):
        engine, topo = multi
        services = list(engine.services.values())
        snap = engine.trigger(services[1], 0)
        nodes, links = decode_snapshot(snap.reports[-1][1])
        assert links == topo.port_pair_set()

        anycast = engine.trigger(
            services[2], 0, fields={FIELD_GID: 1}, from_controller=False
        )
        assert anycast.delivered_at == 5

        priocast = engine.trigger(
            services[3], 0, fields={FIELD_GID: 1}, from_controller=False
        )
        assert priocast.delivered_at == 5

        critical = engine.trigger(services[5], 0)
        assert critical.reports

    def test_trigger_by_id(self, multi):
        engine, _topo = multi
        result = engine.trigger(SnapshotService.service_id, 0)
        assert result.reports

    def test_unknown_service_id_rejected(self, multi):
        engine, _topo = multi
        with pytest.raises(KeyError):
            engine.trigger(99, 0)

    def test_unknown_svc_packet_dropped(self, multi):
        engine, _topo = multi
        engine.install()
        from repro.openflow.packet import Packet

        engine.network.inject(0, Packet(fields={"svc": 13}))
        engine.network.run()
        # No emission: the packet died at the dispatch miss.
        assert engine.network.trace.in_band_messages == 0

    def test_results_match_single_service_engines(self, multi):
        engine, topo = multi
        multi_snap = engine.trigger(SnapshotService.service_id, 0)
        single = make_engine(Network(topo), SnapshotService(), engine.mode)
        single_snap = single.trigger(0)
        assert (
            multi_snap.reports[-1][1].stack == single_snap.reports[-1][1].stack
        )
        assert multi_snap.in_band_messages == single_snap.in_band_messages

    def test_duplicate_ids_rejected(self):
        net = Network(ring(4))
        with pytest.raises(ValueError):
            MultiServiceEngine(net, [SnapshotService(), SnapshotService()])

    def test_bad_mode_rejected(self):
        net = Network(ring(4))
        with pytest.raises(ValueError):
            MultiServiceEngine(net, [SnapshotService()], mode="psychic")


class TestCompiledMultiPipeline:
    def test_verifier_clean(self):
        topo = erdos_renyi(8, 0.35, seed=3)
        net = Network(topo)
        for node in topo.nodes():
            switch = compile_services(net, node, full_stack())
            report = verify_switch(switch)
            assert report.ok, report.errors

    def test_table_blocks_disjoint(self):
        net = Network(ring(4))
        switch = compile_services(net, 0, [SnapshotService(), BlackholeService()])
        # svc dispatch at table 0; two blocks of 8 tables each.
        assert 0 in switch.tables
        snapshot_tables = {t for t in switch.tables if 1 <= t < 9}
        blackhole_tables = {t for t in switch.tables if 9 <= t < 17}
        assert snapshot_tables and blackhole_tables

    def test_group_ids_do_not_clash(self):
        net = Network(ring(4))
        switch = compile_services(
            net, 0, [PlainTraversalService(), BlackholeService()]
        )
        ids = [g.group_id for g in switch.groups.groups()]
        assert len(ids) == len(set(ids))

    def test_duplicate_service_ids_rejected(self):
        net = Network(ring(4))
        with pytest.raises(ValueError):
            compile_services(net, 0, [SnapshotService(), SnapshotService()])

    def test_blackhole_detection_in_multi_pipeline(self):
        topo = erdos_renyi(8, 0.35, seed=3)
        for mode in ("interpreted", "compiled"):
            net = Network(topo)
            net.links[2].set_blackhole()
            engine = MultiServiceEngine(net, full_stack(), mode=mode)
            engine.trigger(BlackholeService.service_id, 0,
                           fields={FIELD_REPEAT: 3})
            result = engine.trigger(BlackholeService.service_id, 0,
                                    fields={FIELD_REPEAT: 0})
            found = [
                packet.get("report_port")
                for _node, packet in result.reports
                if packet.get("bh") == 1
            ]
            edge = topo.edge(2)
            assert found
            reporter = result.reports[0][0]
            assert (reporter, found[0]) in {
                (edge.a.node, edge.a.port),
                (edge.b.node, edge.b.port),
            }

    def test_interleaving_services_shares_switch_state(self):
        """Running other services between blackhole phases must not disturb
        the counters (they are per-service group state)."""
        topo = erdos_renyi(8, 0.35, seed=3)
        net = Network(topo)
        net.links[1].set_blackhole()
        engine = MultiServiceEngine(net, full_stack(), mode="compiled")
        engine.trigger(BlackholeService.service_id, 0, fields={FIELD_REPEAT: 3})
        engine.trigger(CriticalNodeService.service_id, 0)  # interleaved
        result = engine.trigger(
            BlackholeService.service_id, 0, fields={FIELD_REPEAT: 0}
        )
        assert any(p.get("bh") == 1 for _n, p in result.reports)
