"""Failure-scenario generators."""

from __future__ import annotations

import pytest

from repro.control.channel import ControlChannel
from repro.core.runtime import SmartSouthRuntime
from repro.net.failures import (
    fail_random_links,
    fail_region,
    isolate_node,
    live_component,
    management_outage,
    restore_node,
    restore_region,
)
from repro.net.simulator import Network
from repro.net.topology import complete, erdos_renyi, line, ring


class TestRandomLinks:
    def test_fails_exactly_k(self):
        net = Network(ring(8))
        dead = fail_random_links(net, 3, seed=1)
        assert len(dead) == 3
        assert sum(1 for link in net.links if not link.up) == 3

    def test_deterministic_by_seed(self):
        a = Network(ring(8))
        b = Network(ring(8))
        assert fail_random_links(a, 3, seed=4) == fail_random_links(b, 3, seed=4)

    def test_too_many_rejected(self):
        with pytest.raises(ValueError):
            fail_random_links(Network(line(3)), 5)

    def test_keep_connected(self):
        topo = complete(6)
        for seed in range(10):
            net = Network(topo)
            fail_random_links(net, 4, seed=seed, keep_connected=True)
            assert live_component(net, 0) == set(topo.nodes())

    def test_keep_connected_impossible_raises(self):
        # A line cannot survive losing any link.
        net = Network(line(4))
        with pytest.raises(RuntimeError):
            fail_random_links(net, 1, keep_connected=True)

    def test_enumeration_fallback_finds_rare_valid_sets(self):
        # With attempts=0 rejection sampling never runs, so the call must
        # fall through to exhaustive enumeration — and still succeed
        # whenever a valid set exists.
        topo = ring(6)
        for seed in range(8):
            net = Network(topo)
            dead = fail_random_links(
                net, 1, seed=seed, keep_connected=True, attempts=0
            )
            assert len(dead) == 1
            assert live_component(net, 0) == set(topo.nodes())

    def test_enumeration_fallback_proves_impossibility(self):
        net = Network(line(4))
        with pytest.raises(RuntimeError, match="keeps"):
            fail_random_links(net, 1, keep_connected=True, attempts=0)

    def test_default_draws_come_from_network_rng(self):
        # Same network seed, no explicit call seed: identical draws.
        a = Network(ring(8), seed=13)
        b = Network(ring(8), seed=13)
        assert fail_random_links(a, 2) == fail_random_links(b, 2)
        # The shared stream advances: a second call differs from a fresh
        # network's first call.
        c = Network(ring(8), seed=13)
        fail_random_links(c, 2)
        second = fail_random_links(c, 2)
        fresh = fail_random_links(Network(ring(8), seed=13), 2)
        assert second != fresh


class TestIsolateAndRegion:
    def test_isolate_node(self):
        topo = ring(6)
        net = Network(topo)
        failed = isolate_node(net, 2)
        assert len(failed) == 2
        assert live_component(net, 0) == {0, 1, 3, 4, 5}

    def test_isolate_is_idempotent(self):
        net = Network(ring(6))
        isolate_node(net, 2)
        assert isolate_node(net, 2) == []

    def test_fail_region_internal_links_only(self):
        topo = complete(6)
        net = Network(topo)
        failed = fail_region(net, {0, 1, 2})
        assert len(failed) == 3  # the triangle inside the region
        # Uplinks to the rest of the graph survive.
        assert live_component(net, 0) == set(topo.nodes())

    def test_snapshot_after_region_failure(self):
        topo = complete(6)
        net = Network(topo)
        fail_region(net, {0, 1, 2})
        runtime = SmartSouthRuntime(net, mode="compiled")
        snap = runtime.snapshot(0)
        assert snap.links == net.live_port_pairs()


class TestRestore:
    def test_restore_node_inverts_isolate(self):
        net = Network(ring(6))
        failed = restore_node(net, 2)  # nothing down yet
        assert failed == []
        dead = isolate_node(net, 2)
        restored = restore_node(net, 2)
        assert sorted(restored) == sorted(dead)
        assert all(link.up for link in net.links)
        assert live_component(net, 0) == set(range(6))

    def test_restore_node_covers_independent_failures(self):
        # Maintenance-window semantics: the reconnecting box renegotiates
        # every port, so links failed independently in between come back.
        net = Network(ring(6))
        isolate_node(net, 2)
        extra = fail_random_links(net, 1, seed=9)
        touches_node = any(
            2 in (net.links[e].edge.a.node, net.links[e].edge.b.node)
            for e in extra
        )
        restored = restore_node(net, 2)
        assert len(restored) == 2 + (1 if touches_node else 0)

    def test_restore_region_inverts_fail_region(self):
        net = Network(complete(6))
        dead = fail_region(net, {0, 1, 2})
        restored = restore_region(net, {0, 1, 2})
        assert sorted(restored) == sorted(dead)
        assert all(link.up for link in net.links)

    def test_restore_region_leaves_outside_links_alone(self):
        net = Network(complete(6))
        fail_region(net, {0, 1, 2})
        outside = fail_random_links(net, 1, seed=2, keep_connected=False)
        # Keep drawing until the extra failure is outside the region.
        seed = 2
        while any(
            {net.links[e].edge.a.node, net.links[e].edge.b.node} <= {0, 1, 2}
            for e in outside
        ):
            net = Network(complete(6))
            fail_region(net, {0, 1, 2})
            seed += 1
            outside = fail_random_links(net, 1, seed=seed)
        restore_region(net, {0, 1, 2})
        assert sum(1 for link in net.links if not link.up) == 1

    def test_traversal_after_isolate_restore_cycle(self):
        topo = ring(6)
        net = Network(topo)
        isolate_node(net, 3)
        restore_node(net, 3)
        runtime = SmartSouthRuntime(net, mode="compiled")
        snap = runtime.snapshot(0)
        assert snap.links == net.live_port_pairs()
        assert len(snap.links) == topo.num_edges


class TestManagementOutage:
    def test_fraction_of_switches_disconnected(self):
        net = Network(ring(10))
        channel = ControlChannel(net)
        down = management_outage(channel, 0.5, seed=2)
        assert len(down) == 5
        assert channel.disconnected_switches() == set(down)

    def test_zero_and_full(self):
        net = Network(ring(10))
        channel = ControlChannel(net)
        assert management_outage(channel, 0.0) == []
        down = management_outage(channel, 1.0)
        assert len(down) == 10

    def test_bad_fraction_rejected(self):
        net = Network(ring(4))
        channel = ControlChannel(net)
        with pytest.raises(ValueError):
            management_outage(channel, 1.5)


class TestLiveComponent:
    def test_matches_traversal_coverage(self):
        topo = erdos_renyi(14, 0.25, seed=8)
        net = Network(topo)
        fail_random_links(net, 4, seed=3)
        component = live_component(net, 0)
        runtime = SmartSouthRuntime(net, mode="compiled")
        snap = runtime.snapshot(0)
        assert snap.nodes == component
