"""Property tests for the stateful model checker.

Two claims, over random connected topologies (≤ 8 nodes):

1. **Compiled services are temporally correct**: every paper service —
   snapshot, anycast, priocast and both blackhole-detection algorithms —
   model-checks clean with a one-link-failure budget.  This is the
   stateful complement of the lint property tests: those prove per-packet
   rule facts, this explores failure interleavings end to end.

2. **Counterexamples are real**: for every seeded compiler fault, every
   counterexample the checker emits replays in the discrete-event
   simulator to the *same* violation (confirmed by the shared invariant
   oracle) — the checker never reports a trace the concrete pipeline
   implementation does not exhibit.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.modelcheck import CheckConfig, check_engine, run_check
from repro.analysis.replay import confirms_violation, replay_counterexample
from repro.core.engine import make_engine
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.blackhole import BlackholeService, BlackholeTtlService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi
from tests.test_modelcheck import (
    SEEDED_FAULTS,
    compiled,
)

SERVICE_NAMES = (
    "snapshot",
    "anycast",
    "priocast",
    "blackhole",
    "blackhole_ttl",
)


def build_service(name: str, nodes) -> object:
    nodes = list(nodes)
    if name == "snapshot":
        return SnapshotService()
    if name == "anycast":
        return AnycastService(groups={1: {nodes[-1]}})
    if name == "priocast":
        return PriocastService(
            priorities={1: {node: (i % 6) + 1 for i, node in enumerate(nodes)}}
        )
    if name == "blackhole":
        return BlackholeService()
    if name == "blackhole_ttl":
        return BlackholeTtlService()
    raise AssertionError(name)


class TestServicesCheckCleanUnderFailures:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(3, 8),
        st.integers(0, 500),
        st.sampled_from(SERVICE_NAMES),
    )
    def test_one_failure_budget_is_clean(self, n, seed, name):
        topo = erdos_renyi(n, 0.4, seed=seed, connect=True)
        service = build_service(name, topo.nodes())
        report = check_engine(
            make_engine(Network(topo), service, "compiled"),
            CheckConfig(max_failures=1),
        )
        assert report.exit_code == 0, report.format_text(topo)

    def test_all_services_on_one_dense_topology(self):
        # Deterministic coverage of the whole matrix (sampling above may
        # not hit every service every run).
        topo = erdos_renyi(7, 0.5, seed=11, connect=True)
        for name in SERVICE_NAMES:
            service = build_service(name, topo.nodes())
            report = check_engine(
                make_engine(Network(topo), service, "compiled"),
                CheckConfig(max_failures=1),
            )
            assert report.exit_code == 0, (name, report.format_text(topo))


class TestCounterexamplesReplay:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(3, 6),
        st.integers(0, 500),
        st.sampled_from(range(len(SEEDED_FAULTS))),
    )
    def test_every_counterexample_confirms_in_simulator(
        self, n, seed, fault_index
    ):
        mutate, factory, config, expected = SEEDED_FAULTS[fault_index]
        topo = erdos_renyi(n, 0.4, seed=seed, connect=True)
        engine = compiled(topo, factory())
        mutate(engine)
        report = run_check(
            engine.switches, topo, engine.service, CheckConfig(**config)
        )
        if not report.counterexamples:
            # A seeded fault need not manifest on every random graph: on
            # degenerate topologies the mutated rules can still implement
            # a correct traversal (e.g. swap_par_cur on a 3-node path,
            # where the snapshot decodes correctly regardless).  Accept
            # the clean verdict only after proving the mutation really is
            # benign end to end — a genuine checker miss still fails.
            self.assert_mutation_is_benign(topo, factory, mutate)
            return
        for cex in report.counterexamples:
            service = factory()
            result = replay_counterexample(cex, topo, service, mutate=mutate)
            confirmed, evidence = confirms_violation(
                result, cex, topo, service
            )
            assert confirmed, (
                f"{mutate.__name__} on {topo.name}: "
                f"{cex.violation.format()} did not replay: {evidence}"
            )

    @staticmethod
    def assert_mutation_is_benign(topo, factory, mutate):
        """The checker found nothing — then an all-links-up run of the
        mutated engine must still produce a correct result."""
        from repro.core.runtime import decode_snapshot

        engine = compiled(topo, factory())
        mutate(engine)
        outcome = engine.trigger(0)
        assert outcome.completed, (
            f"{mutate.__name__} on {topo.name}: traversal broke but the "
            f"checker reported no violation"
        )
        if isinstance(engine.service, SnapshotService):
            _, packet = outcome.reports[-1]
            _, links = decode_snapshot(packet)
            assert links == topo.port_pair_set(), (
                f"{mutate.__name__} on {topo.name}: snapshot is wrong "
                f"({links}) but the checker reported no violation"
            )
