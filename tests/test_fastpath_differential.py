"""Differential conformance: fast-path switches ≡ interpreted switches.

The tentpole acceptance check: both switch engines run the full service
matrix — snapshot / anycast / priocast / blackhole × the chaos topologies ×
seeded fault profiles — and every observable must be *byte-identical*: the
full event trace (hop by hop, packet id by packet id), every report and
delivery, message accounting, and the complete per-entry / per-group /
per-bucket counter state including SELECT round-robin cursors.

The interpreted scan is the reference semantics; any fast-path shortcut
that changes behaviour — a missed counter bump, a cached liveness bit, a
different tie-break — shows up here as a first-divergence diff.
"""

from __future__ import annotations

import json

import pytest

from repro.net.chaos import PROFILES, TOPOLOGIES
from tests.fastpath_util import SERVICES, run_scenario

SEEDS = (11, 42)

MATRIX = [
    (service, topology, profile, seed)
    for service in SERVICES
    for topology in sorted(TOPOLOGIES)
    for profile in sorted(PROFILES)
    for seed in SEEDS
]


def _first_divergence(slow: dict, fast: dict) -> str:
    """A readable pointer at the first differing observable."""
    for key in slow:
        if slow[key] == fast[key]:
            continue
        if key == "trace":
            slow_lines = slow[key].splitlines()
            fast_lines = fast[key].splitlines()
            for i, (a, b) in enumerate(zip(slow_lines, fast_lines)):
                if a != b:
                    return f"trace line {i}:\n  interpreted: {a}\n  fast path:   {b}"
            return (
                f"trace length: interpreted={len(slow_lines)} "
                f"fast path={len(fast_lines)}"
            )
        return (
            f"{key}:\n  interpreted: {json.dumps(slow[key])[:500]}\n"
            f"  fast path:   {json.dumps(fast[key])[:500]}"
        )
    return "no divergence"


@pytest.mark.parametrize(
    "service,topology,profile,seed",
    MATRIX,
    ids=[f"{s}-{t}-{p}-s{seed}" for s, t, p, seed in MATRIX],
)
def test_engines_byte_identical(service, topology, profile, seed):
    slow = run_scenario(service, topology, profile, seed, fast_path=False)
    fast = run_scenario(service, topology, profile, seed, fast_path=True)
    assert slow == fast, _first_divergence(slow, fast)
    # Byte-identical, not merely equal: the JSON encodings must match too
    # (golden files are stored as JSON, so this is the format the corpus
    # pins).
    assert json.dumps(slow, sort_keys=True) == json.dumps(fast, sort_keys=True)


def test_matrix_covers_all_services_and_faults():
    """The matrix really spans the ISSUE's grid (guards against silent
    shrinkage when chaos profiles or topologies are renamed)."""
    services = {m[0] for m in MATRIX}
    topologies = {m[1] for m in MATRIX}
    profiles = {m[2] for m in MATRIX}
    assert services == {"snapshot", "anycast", "priocast", "blackhole"}
    assert topologies == set(TOPOLOGIES)
    assert profiles == set(PROFILES)
    assert len(MATRIX) == len(services) * len(topologies) * len(profiles) * len(
        SEEDS
    )


def test_scenarios_inject_faults():
    """At least some matrix scenarios actually run under faults (the chaos
    draws are seeded; a planner regression could quietly turn the whole
    suite into fair-weather runs)."""
    with_faults = 0
    for service, topology, profile, seed in MATRIX:
        observed = run_scenario(service, topology, profile, seed, fast_path=True)
        if observed["faults"]:
            with_faults += 1
    assert with_faults >= len(MATRIX) // 2
