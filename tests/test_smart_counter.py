"""Smart counters: the round-robin-group fetch-and-increment construction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fields import FIELD_SCRATCH
from repro.core.services.base import SmartCounterBank
from repro.core.smart_counter import build_counter_group, counter_value
from repro.openflow.group import GroupTable, GroupType
from repro.openflow.packet import Packet


class TestCounterGroup:
    def _table_with_counter(self, modulus):
        table = GroupTable(lambda port: True)
        table.add(build_counter_group(1, modulus))
        return table

    def _fetch(self, table):
        packet = Packet()
        table.execute(1, packet, lambda port, pkt: None, in_port=1)
        return packet.get(FIELD_SCRATCH)

    def test_is_select_group(self):
        group = build_counter_group(1, 4)
        assert group.group_type is GroupType.SELECT
        assert len(group.buckets) == 4

    def test_fetch_returns_pre_increment_value(self):
        table = self._table_with_counter(4)
        assert [self._fetch(table) for _ in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_counter_value_tracks_cursor(self):
        table = self._table_with_counter(3)
        group = table.get(1)
        assert counter_value(group) == 0
        self._fetch(table)
        assert counter_value(group) == 1

    def test_custom_field_name(self):
        table = GroupTable(lambda port: True)
        table.add(build_counter_group(2, 3, field_name="mycnt"))
        packet = Packet()
        table.execute(2, packet, lambda port, pkt: None, in_port=1)
        table.execute(2, packet, lambda port, pkt: None, in_port=1)
        assert packet.get("mycnt") == 1

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            build_counter_group(1, 1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 16), st.integers(1, 60))
    def test_wraps_mod_k(self, modulus, fetches):
        table = self._table_with_counter(modulus)
        values = [self._fetch(table) for _ in range(fetches)]
        assert values == [i % modulus for i in range(fetches)]


class TestSmartCounterBank:
    def test_fetch_inc_semantics(self):
        bank = SmartCounterBank()
        assert bank.fetch_inc("c", 3) == 0
        assert bank.fetch_inc("c", 3) == 1
        assert bank.fetch_inc("c", 3) == 2
        assert bank.fetch_inc("c", 3) == 0

    def test_peek_does_not_increment(self):
        bank = SmartCounterBank()
        bank.fetch_inc("c", 5)
        assert bank.peek("c") == 1
        assert bank.peek("c") == 1

    def test_peek_unknown_counter(self):
        assert SmartCounterBank().peek("nope") == 0

    def test_independent_counters(self):
        bank = SmartCounterBank()
        bank.fetch_inc("a", 4)
        bank.fetch_inc("a", 4)
        bank.fetch_inc("b", 4)
        assert bank.peek("a") == 2
        assert bank.peek("b") == 1

    def test_modulus_fixed_at_creation(self):
        bank = SmartCounterBank()
        bank.fetch_inc("c", 2)
        bank.fetch_inc("c", 99)  # modulus argument ignored after creation
        assert bank.peek("c") == 0

    def test_default_modulus(self):
        bank = SmartCounterBank(default_modulus=3)
        for _ in range(4):
            bank.fetch_inc("c")
        assert bank.peek("c") == 1

    def test_names_sorted(self):
        bank = SmartCounterBank()
        bank.fetch_inc("z")
        bank.fetch_inc("a")
        assert bank.names() == ["a", "z"]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 50))
    def test_bank_and_group_agree(self, modulus, fetches):
        """The interpreted bank and the compiled group are the same counter."""
        bank = SmartCounterBank()
        table = GroupTable(lambda port: True)
        table.add(build_counter_group(1, modulus))
        for _ in range(fetches):
            packet = Packet()
            table.execute(1, packet, lambda port, pkt: None, in_port=1)
            assert bank.fetch_inc("c", modulus) == packet.get(FIELD_SCRATCH)
