"""Critical-node detection vs. articulation-point oracles."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.graph import articulation_points
from repro.core.runtime import SmartSouthRuntime
from repro.net.simulator import Network
from repro.net.topology import (
    Topology,
    binary_tree,
    complete,
    erdos_renyi,
    line,
    ring,
    star,
)


def nx_articulation(topology) -> set[int]:
    graph = nx.Graph()
    graph.add_nodes_from(topology.nodes())
    graph.add_edges_from((e.a.node, e.b.node) for e in topology.edges())
    return set(nx.articulation_points(graph))


def detected_set(topology, mode="interpreted", fail=()):
    net = Network(topology)
    for u, v in fail:
        net.fail_link(u, v)
    runtime = SmartSouthRuntime(net, mode=mode)
    return {u for u in topology.nodes() if runtime.critical(u).critical}, net


class TestKnownShapes:
    def test_line_interior_nodes_critical(self, engine_mode):
        got, _ = detected_set(line(5), mode=engine_mode)
        assert got == {1, 2, 3}

    def test_ring_has_no_critical_nodes(self, engine_mode):
        got, _ = detected_set(ring(6), mode=engine_mode)
        assert got == set()

    def test_star_hub_is_critical(self, engine_mode):
        got, _ = detected_set(star(6), mode=engine_mode)
        assert got == {0}

    def test_complete_graph_has_none(self, engine_mode):
        got, _ = detected_set(complete(5), mode=engine_mode)
        assert got == set()

    def test_tree_internal_nodes_critical(self, engine_mode):
        topo = binary_tree(3)
        got, _ = detected_set(topo, mode=engine_mode)
        assert got == {u for u in topo.nodes() if topo.degree(u) > 1}

    def test_two_node_graph(self, engine_mode):
        got, _ = detected_set(line(2), mode=engine_mode)
        assert got == set()

    def test_zoo_matches_networkx(self, zoo_topology, engine_mode):
        got, _ = detected_set(zoo_topology, mode=engine_mode)
        assert got == nx_articulation(zoo_topology)


class TestOracles:
    def test_own_tarjan_matches_networkx(self, zoo_topology):
        assert articulation_points(zoo_topology) == nx_articulation(zoo_topology)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 25), st.integers(0, 1000))
    def test_own_tarjan_random(self, n, seed):
        topo = erdos_renyi(n, 0.2, seed=seed)
        assert articulation_points(topo) == nx_articulation(topo)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 14), st.integers(0, 500))
    def test_service_matches_oracle_random(self, n, seed):
        topo = erdos_renyi(n, 0.25, seed=seed)
        got, _ = detected_set(topo)
        assert got == articulation_points(topo)


class TestCostAndMechanics:
    def test_two_out_band_messages(self, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=5)
        net = Network(topo)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        outcome = runtime.critical(0)
        assert outcome.result.out_band_messages == 2

    def test_critical_verdict_may_end_early(self, engine_mode):
        # The hub of a star learns it is critical as soon as its *second*
        # DFS child returns — long before a full traversal would finish.
        topo = star(10)
        net = Network(topo)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        outcome = runtime.critical(0)
        assert outcome.critical
        from repro.analysis.complexity import dfs_message_count

        assert outcome.result.in_band_messages == 4  # two leaves, out & back
        assert outcome.result.in_band_messages < dfs_message_count(10, 9)

    def test_respects_link_failures(self, engine_mode):
        # A ring has no critical node, but failing one link makes every
        # interior node of the resulting path critical.
        got, _net = detected_set(ring(6), fail=[(0, 1)], mode=engine_mode)
        # The live graph is the path 1-2-3-4-5-0: its interior is critical.
        assert got == {2, 3, 4, 5}

    def test_isolated_node_not_critical(self, engine_mode):
        topo = Topology(1)
        got, _ = detected_set(topo, mode=engine_mode)
        assert got == set()

    def test_bridge_endpoints(self, engine_mode):
        # Two triangles joined by a bridge: both bridge endpoints critical.
        topo = Topology(6)
        for u, v in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]:
            topo.add_link(u, v)
        got, _ = detected_set(topo, mode=engine_mode)
        assert got == {2, 3}
