"""Control channel, controller, and the three baseline applications."""

from __future__ import annotations


from repro.control.apps.probe_blackhole import ProbeBlackholeDetector
from repro.control.apps.reactive_routing import ReactiveAnycastRouting
from repro.control.apps.topology_service import LldpTopologyService
from repro.control.channel import ControlChannel
from repro.control.controller import Controller, ControllerApp
from repro.core.runtime import SmartSouthRuntime
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, grid, line, ring
from repro.openflow.packet import Packet
from repro.openflow.switch import PacketOut


class TestControlChannel:
    def test_packet_out_reaches_connected_switch(self):
        net = Network(line(2))
        seen = []
        net.set_handler(0, lambda p, i: seen.append(p) or [])
        channel = ControlChannel(net)
        assert channel.packet_out(0, Packet())
        net.run()
        assert len(seen) == 1

    def test_packet_out_to_disconnected_switch_lost(self):
        net = Network(line(2))
        net.set_handler(0, lambda p, i: [])
        channel = ControlChannel(net)
        channel.disconnect(0)
        assert not channel.packet_out(0, Packet())
        assert channel.packet_outs_lost == 1
        assert channel.packet_outs_sent == 1

    def test_packet_in_filtered_when_disconnected(self):
        from repro.openflow.packet import CONTROLLER_PORT

        net = Network(line(2))
        net.set_handler(0, lambda p, i: [PacketOut(CONTROLLER_PORT, p)])
        channel = ControlChannel(net)
        received = []
        channel.set_packet_in_handler(lambda node, pkt: received.append(node))
        channel.disconnect(0)
        net.inject(0, Packet())
        net.run()
        assert received == []
        assert channel.packet_ins_lost == 1
        channel.reconnect(0)
        net.inject(0, Packet())
        net.run()
        assert received == [0]

    def test_out_band_accounting(self):
        net = Network(line(2))
        net.set_handler(0, lambda p, i: [])
        channel = ControlChannel(net)
        channel.packet_out(0, Packet())
        net.run()
        assert channel.out_band_messages == 1

    def test_disconnect_reconnect_counter_sequence(self):
        net = Network(line(2))
        delivered = []
        net.set_handler(0, lambda p, i: delivered.append(p) or [])
        channel = ControlChannel(net)

        assert channel.packet_out(0, Packet())          # connected: sent
        channel.disconnect(0)
        assert not channel.packet_out(0, Packet())      # down: lost
        assert not channel.packet_out(0, Packet())      # still down: lost
        channel.reconnect(0)
        assert channel.packet_out(0, Packet())          # back up: sent
        net.run()

        assert channel.packet_outs_sent == 4            # attempts counted
        assert channel.packet_outs_lost == 2
        assert len(delivered) == 2                      # only live sends land

    def test_reconnect_is_idempotent(self):
        net = Network(line(2))
        channel = ControlChannel(net)
        channel.disconnect(0)
        channel.disconnect(0)
        assert channel.disconnected_switches() == {0}
        channel.reconnect(0)
        channel.reconnect(0)
        assert channel.disconnected_switches() == set()


class TestController:
    def test_app_receives_packet_ins(self):
        from repro.openflow.packet import CONTROLLER_PORT

        class Recorder(ControllerApp):
            def __init__(self):
                super().__init__()
                self.seen = []

            def packet_in(self, node, packet):
                self.seen.append(node)

        net = Network(line(2))
        net.set_handler(1, lambda p, i: [PacketOut(CONTROLLER_PORT, p)])
        controller = Controller(net)
        app = controller.register(Recorder())
        net.inject(1, Packet())
        controller.run()
        assert app.seen == [1]


class TestLldpBaseline:
    def test_full_discovery(self):
        topo = erdos_renyi(10, 0.3, seed=4)
        controller = Controller(Network(topo))
        service = controller.register(LldpTopologyService())
        assert service.discover() == topo.port_pair_set()

    def test_message_cost_is_theta_edges(self):
        topo = grid(3, 3)
        controller = Controller(Network(topo))
        service = controller.register(LldpTopologyService())
        service.discover()
        # One packet-out per port = 2E, one packet-in per crossing = 2E.
        assert controller.channel.packet_outs_sent == 2 * topo.num_edges
        assert controller.channel.packet_ins_received == 2 * topo.num_edges

    def test_disconnected_switch_hides_its_links(self):
        topo = ring(6)
        controller = Controller(Network(topo))
        service = controller.register(LldpTopologyService())
        controller.channel.disconnect(2)
        links = service.discover()
        expected = {
            pair
            for pair in topo.port_pair_set()
            if all(endpoint[0] != 2 for endpoint in pair)
        }
        assert links == expected

    def test_smartsouth_snapshot_beats_lldp_under_disconnection(self):
        """The paper's core robustness claim, end to end: with most of the
        management plane down, LLDP sees almost nothing while the in-band
        snapshot (triggered via the one connected switch) sees everything."""
        topo = ring(8)
        # Baseline with 7 of 8 switches unreachable.
        controller = Controller(Network(topo))
        service = controller.register(LldpTopologyService())
        for node in range(1, 8):
            controller.channel.disconnect(node)
        assert service.discover() == set()
        # SmartSouth snapshot from the single connected switch.
        runtime = SmartSouthRuntime(Network(topo), mode="compiled")
        snap = runtime.snapshot(0)
        assert snap.links == topo.port_pair_set()

    def test_failed_links_not_discovered(self):
        topo = ring(5)
        net = Network(topo)
        net.fail_link(1, 2)
        controller = Controller(net)
        service = controller.register(LldpTopologyService())
        assert service.discover() == net.live_port_pairs()


class TestProbeBaseline:
    def test_healthy_network_all_quiet(self):
        topo = grid(3, 3)
        controller = Controller(Network(topo))
        detector = controller.register(ProbeBlackholeDetector())
        result = detector.check()
        assert result.silent == set()
        assert result.probes_sent == 2 * topo.num_edges

    def test_blackhole_direction_flagged(self):
        topo = ring(5)
        net = Network(topo)
        net.links[3].set_blackhole()
        controller = Controller(net)
        detector = controller.register(ProbeBlackholeDetector())
        result = detector.check()
        edge = topo.edge(3)
        assert result.silent == {
            (edge.a.node, edge.a.port),
            (edge.b.node, edge.b.port),
        }

    def test_message_cost_much_higher_than_smart_counters(self):
        topo = erdos_renyi(12, 0.3, seed=9)
        net = Network(topo)
        net.links[0].set_blackhole()
        controller = Controller(net)
        detector = controller.register(ProbeBlackholeDetector())
        baseline = detector.check()

        net2 = Network(topo)
        net2.links[0].set_blackhole()
        runtime = SmartSouthRuntime(net2)
        verdict = runtime.detect_blackhole_smart(0)
        assert verdict.out_band_messages == 3
        assert baseline.out_band_messages > 10 * verdict.out_band_messages


class TestReactiveBaseline:
    def test_install_and_deliver(self):
        topo = line(5)
        controller = Controller(Network(topo))
        app = controller.register(ReactiveAnycastRouting({1: {4}}))
        install = app.install_path(0, 1)
        assert install.path == [0, 1, 2, 3, 4]
        assert app.send(0, install) == 4

    def test_nearest_member_chosen(self):
        topo = line(6)
        controller = Controller(Network(topo))
        app = controller.register(ReactiveAnycastRouting({1: {2, 5}}))
        install = app.install_path(0, 1)
        assert install.path[-1] == 2

    def test_failure_breaks_delivery_until_repair(self):
        topo = ring(6)
        net = Network(topo)
        controller = Controller(net)
        app = controller.register(ReactiveAnycastRouting({1: {3}}))
        install = app.install_path(0, 1)
        net.fail_link(install.path[0], install.path[1])
        assert app.send(0, install) is None  # baseline fails silently
        repaired, messages = app.repair(0, 1)
        assert repaired is not None
        assert app.send(0, repaired) == 3
        assert messages >= 1 + len(repaired.path) - 1

    def test_anycast_survives_where_baseline_fails(self):
        topo = ring(6)
        net = Network(topo)
        controller = Controller(net)
        app = controller.register(ReactiveAnycastRouting({1: {3}}))
        install = app.install_path(0, 1)
        net.fail_link(install.path[0], install.path[1])
        assert app.send(0, install) is None
        # Same network state, in-band anycast: delivers with no controller.
        runtime = SmartSouthRuntime(Network(topo), mode="compiled")
        runtime.network.fail_link(install.path[0], install.path[1])
        result = runtime.anycast(0, 1, {1: {3}})
        assert result.delivered_at == 3
        assert result.out_band_messages == 0

    def test_no_path_returns_none(self):
        topo = line(4)
        net = Network(topo)
        net.fail_link(1, 2)
        controller = Controller(net)
        app = controller.register(ReactiveAnycastRouting({1: {3}}))
        assert app.install_path(0, 1, respect_failures=True) is None
