"""The SmartSouthRuntime facade and the command-line driver."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.engine import make_engine
from repro.core.runtime import SmartSouthRuntime
from repro.core.services.base import PlainTraversalService
from repro.net.simulator import Network
from repro.net.topology import ring


class TestRuntimeFacade:
    def test_accepts_bare_topology(self):
        runtime = SmartSouthRuntime(ring(4))
        assert runtime.snapshot(0).ok

    def test_engines_are_cached_per_service(self):
        runtime = SmartSouthRuntime(ring(4))
        runtime.snapshot(0)
        first = runtime._engines["snapshot"]
        runtime.snapshot(1)
        assert runtime._engines["snapshot"] is first

    def test_services_can_interleave_on_one_network(self):
        runtime = SmartSouthRuntime(ring(5), mode="compiled")
        assert runtime.snapshot(0).ok
        assert runtime.critical(0).critical is False
        assert runtime.anycast(0, 1, {1: {2}}).delivered_at == 2
        assert runtime.snapshot(1).ok  # snapshot still works afterwards

    def test_traverse(self):
        runtime = SmartSouthRuntime(ring(5))
        result = runtime.traverse(0)
        assert result.reports
        assert result.in_band_messages == 12

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            make_engine(Network(ring(3)), PlainTraversalService(), "quantum")

    def test_result_helpers(self):
        runtime = SmartSouthRuntime(ring(4))
        result = runtime.anycast(0, 1, {1: {2}})
        assert result.completed
        assert result.delivered_at == 2


class TestCli:
    def test_snapshot_command(self, capsys):
        assert main(["snapshot", "--topology", "abilene"]) == 0
        out = capsys.readouterr().out
        assert "links discovered : 15" in out
        assert "matches live topology: True" in out

    def test_snapshot_with_failure(self, capsys):
        assert main(["snapshot", "--topology", "abilene", "--fail", "0-1"]) == 0
        out = capsys.readouterr().out
        assert "links discovered : 14" in out

    def test_critical_command(self, capsys):
        assert main(["critical", "--topology", "star", "--nodes", "5"]) == 0
        assert "critical nodes" in capsys.readouterr().out

    def test_anycast_command(self, capsys):
        code = main(
            ["anycast", "--topology", "ring", "--nodes", "8", "--members", "3,5"]
        )
        assert code == 0
        assert "delivered at     : 3" in capsys.readouterr().out

    def test_anycast_failure_exit_code(self):
        code = main(
            [
                "anycast", "--topology", "line", "--nodes", "4",
                "--members", "3", "--fail", "1-2",
            ]
        )
        assert code == 1

    def test_priocast_command(self, capsys):
        code = main(
            [
                "priocast", "--topology", "ring", "--nodes", "6",
                "--members", "2:5,4:9",
            ]
        )
        assert code == 0
        assert "delivered at     : 4" in capsys.readouterr().out

    def test_blackhole_smart_command(self, capsys):
        assert main(
            ["blackhole", "--topology", "ring", "--nodes", "6", "--edge", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "found            : True" in out

    def test_blackhole_ttl_command(self, capsys):
        assert main(
            [
                "blackhole", "--topology", "ring", "--nodes", "6",
                "--edge", "2", "--algorithm", "ttl",
            ]
        ) == 0
        assert "found            : True" in capsys.readouterr().out

    def test_blackhole_healthy_network(self, capsys):
        assert main(["blackhole", "--topology", "ring", "--nodes", "5"]) == 0
        assert "found            : False" in capsys.readouterr().out

    def test_table2_command(self, capsys):
        assert main(["table2", "--nodes", "30"]) == 0
        out = capsys.readouterr().out
        assert "Snapshot" in out and "Critical" in out

    def test_rules_command(self, capsys):
        assert main(["rules", "--topology", "abilene", "--service", "snapshot"]) == 0
        assert "rules" in capsys.readouterr().out

    def test_rules_dump(self, capsys):
        assert main(
            [
                "rules", "--topology", "ring", "--nodes", "4",
                "--service", "plain", "--dump", "0",
            ]
        ) == 0
        assert "table 1" in capsys.readouterr().out

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            main(["snapshot", "--topology", "klein_bottle"])

    def test_unknown_service_rejected(self):
        with pytest.raises(SystemExit):
            main(["rules", "--service", "teleport"])

    def test_chunked_snapshot_command(self, capsys):
        assert main(
            ["snapshot", "--topology", "abilene", "--chunk", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "chunks" in out and "matches live topology: True" in out

    def test_loadaudit_command(self, capsys):
        assert main(
            ["loadaudit", "--topology", "ring", "--nodes", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches ground truth: True" in out

    def test_verify_command(self, capsys):
        assert main(
            ["verify", "--topology", "abilene", "--service", "blackhole"]
        ) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_verify_unknown_service(self):
        with pytest.raises(SystemExit):
            main(["verify", "--service", "wormhole"])

    def test_trace_command(self, capsys):
        assert main(
            ["trace", "--topology", "ring", "--nodes", "5", "--limit", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "0:p1 -> 1:p1" in out and out.strip().endswith("...")

    def test_interpreted_mode_flag(self, capsys):
        assert main(
            ["snapshot", "--topology", "ring", "--nodes", "5", "--mode", "interpreted"]
        ) == 0
        assert "interpreted engine" in capsys.readouterr().out
