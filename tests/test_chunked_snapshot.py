"""Chunked snapshots: the paper's §3.1 packet-splitting remark."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import SmartSouthRuntime
from repro.core.services.snapshot import (
    ChunkedSnapshotCollector,
    ChunkedSnapshotService,
)
from repro.net.simulator import Network
from repro.net.topology import Topology, erdos_renyi, grid, line, ring


def chunked(topology, root=0, max_records=8, mode="interpreted", fail=()):
    net = Network(topology)
    for u, v in fail:
        net.fail_link(u, v)
    runtime = SmartSouthRuntime(net, mode=mode)
    return runtime.snapshot_chunked(root, max_records=max_records), net


class TestChunkedReconstruction:
    @pytest.mark.parametrize("max_records", [2, 4, 16, 128])
    def test_exact_for_any_chunk_size(self, max_records, engine_mode):
        topo = erdos_renyi(12, 0.3, seed=4)
        outcome, _net = chunked(topo, max_records=max_records, mode=engine_mode)
        nodes, links, _stats = outcome
        assert nodes == set(topo.nodes())
        assert links == topo.port_pair_set()

    def test_zoo(self, zoo_topology, engine_mode):
        outcome, _net = chunked(zoo_topology, max_records=6, mode=engine_mode)
        nodes, links, _stats = outcome
        assert nodes == set(zoo_topology.nodes())
        assert links == zoo_topology.port_pair_set()

    def test_with_failures(self, engine_mode):
        topo = ring(8)
        outcome, net = chunked(topo, max_records=4, fail=[(2, 3)], mode=engine_mode)
        nodes, links, _stats = outcome
        assert nodes == set(topo.nodes())
        assert links == net.live_port_pairs()

    def test_single_node(self, engine_mode):
        outcome, _net = chunked(Topology(1), mode=engine_mode)
        nodes, links, stats = outcome
        assert nodes == {0}
        assert links == set()
        assert stats["chunks"] == 1

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 14), st.integers(0, 300), st.integers(2, 40))
    def test_random_property(self, n, seed, max_records):
        topo = erdos_renyi(n, 0.3, seed=seed)
        outcome, _net = chunked(topo, max_records=max_records)
        nodes, links, _stats = outcome
        assert links == topo.port_pair_set()


class TestChunkEconomics:
    def test_chunk_count_scales_inversely_with_budget(self, engine_mode):
        topo = grid(4, 4)
        small, _ = chunked(topo, max_records=4, mode=engine_mode)
        large, _ = chunked(topo, max_records=64, mode=engine_mode)
        assert small[2]["chunks"] > large[2]["chunks"]

    def test_out_band_is_two_per_chunk_roundtrip(self, engine_mode):
        topo = ring(10)
        outcome, _net = chunked(topo, max_records=5, mode=engine_mode)
        _nodes, _links, stats = outcome
        # Each intermediate flush costs 1 packet-in + 1 packet-out; the
        # trigger and the final report cost one each.
        assert stats["out_band"] == 2 * stats["chunks"]

    def test_max_chunk_size_respected(self, engine_mode):
        topo = erdos_renyi(12, 0.3, seed=7)
        net = Network(topo)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        service = ChunkedSnapshotService(max_records=6)
        engine = runtime.engine_for(service, key="probe")
        collector = ChunkedSnapshotCollector(engine)
        # Observe chunk sizes through the engine's report log.
        collector.run(0)
        chunk_sizes = [len(packet.stack) for _node, packet in engine.reports]
        # A hop can push two records before the next arrival checks the
        # budget, so chunks may exceed the cap by at most 2.
        assert max(chunk_sizes) <= 6 + 2

    def test_unchunked_equivalent_when_budget_huge(self, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=2)
        outcome, _net = chunked(topo, max_records=255, mode=engine_mode)
        _nodes, _links, stats = outcome
        assert stats["chunks"] == 1
        assert stats["out_band"] == 2  # plain snapshot cost

    def test_total_records_near_plain_snapshot(self, engine_mode):
        # Flushes may lose pop()-optimization opportunities (the record to
        # pop was already shipped), costing a few extra records — bounded
        # by the number of non-tree edges.
        topo = erdos_renyi(10, 0.4, seed=5)
        plain, _ = chunked(topo, max_records=255, mode=engine_mode)
        tiny, _ = chunked(topo, max_records=2, mode=engine_mode)
        non_tree = topo.num_edges - (topo.num_nodes - 1)
        assert tiny[2]["records"] <= plain[2]["records"] + non_tree


class TestCollectorMechanics:
    def test_collector_requires_chunked_service(self):
        from repro.core.engine import make_engine
        from repro.core.services.snapshot import SnapshotService

        engine = make_engine(Network(ring(4)), SnapshotService(), "interpreted")
        with pytest.raises(TypeError):
            ChunkedSnapshotCollector(engine)

    def test_bad_max_records_rejected(self):
        with pytest.raises(ValueError):
            ChunkedSnapshotService(max_records=1)
        with pytest.raises(ValueError):
            ChunkedSnapshotService(max_records=256)

    def test_dies_on_blackhole_returns_none(self, engine_mode):
        topo = line(5)
        net = Network(topo)
        net.links[2].set_blackhole()
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        assert runtime.snapshot_chunked(0, max_records=4) is None
