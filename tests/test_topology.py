"""Topology model and generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import (
    Topology,
    TopologyError,
    abilene,
    barabasi_albert,
    binary_tree,
    complete,
    erdos_renyi,
    fat_tree,
    from_edge_list,
    generators,
    grid,
    line,
    ring,
    star,
    torus,
    waxman,
)


class TestTopologyModel:
    def test_ports_assigned_in_insertion_order(self):
        topo = Topology(3)
        e1 = topo.add_link(0, 1)
        e2 = topo.add_link(0, 2)
        assert (e1.a.node, e1.a.port) == (0, 1)
        assert (e2.a.node, e2.a.port) == (0, 2)
        assert topo.degree(0) == 2

    def test_self_loop_rejected(self):
        topo = Topology(2)
        with pytest.raises(TopologyError):
            topo.add_link(1, 1)

    def test_parallel_edges_get_distinct_ports(self):
        topo = Topology(2)
        e1 = topo.add_link(0, 1)
        e2 = topo.add_link(0, 1)
        assert e1.a.port != e2.a.port
        assert topo.num_edges == 2

    def test_unknown_node_rejected(self):
        topo = Topology(2)
        with pytest.raises(TopologyError):
            topo.add_link(0, 5)

    def test_neighbor_lookup(self):
        topo = Topology(2)
        topo.add_link(0, 1)
        far = topo.neighbor(0, 1)
        assert (far.node, far.port) == (1, 1)
        assert topo.neighbor(0, 2) is None

    def test_edge_other_and_endpoint(self):
        topo = Topology(2)
        edge = topo.add_link(0, 1)
        assert edge.other(0).node == 1
        assert edge.endpoint(1).node == 1
        with pytest.raises(TopologyError):
            edge.other(5)

    def test_add_node(self):
        topo = Topology(1)
        new = topo.add_node()
        assert new == 1
        topo.add_link(0, 1)
        assert topo.degree(1) == 1

    def test_connectivity(self):
        topo = Topology(4)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert not topo.is_connected()
        assert topo.connected_component(0) == {0, 1}
        topo.add_link(1, 2)
        assert topo.is_connected()

    def test_port_pair_set(self):
        topo = Topology(2)
        topo.add_link(0, 1)
        assert topo.port_pair_set() == {frozenset(((0, 1), (1, 1)))}

    def test_find_edge(self):
        topo = Topology(3)
        topo.add_link(0, 1)
        assert topo.find_edge(0, 1) is not None
        assert topo.find_edge(0, 2) is None

    def test_empty_topology_is_connected(self):
        assert Topology(0).is_connected()

    def test_from_edge_list(self):
        topo = from_edge_list(3, [(0, 1), (1, 2)])
        assert topo.num_edges == 2
        assert topo.is_connected()


class TestGenerators:
    def test_line(self):
        topo = line(5)
        assert topo.num_edges == 4
        assert topo.is_connected()
        assert topo.max_degree() == 2

    def test_ring(self):
        topo = ring(6)
        assert topo.num_edges == 6
        assert all(topo.degree(u) == 2 for u in topo.nodes())

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        topo = star(7)
        assert topo.degree(0) == 6
        assert all(topo.degree(u) == 1 for u in range(1, 7))

    def test_complete(self):
        topo = complete(5)
        assert topo.num_edges == 10
        assert all(topo.degree(u) == 4 for u in topo.nodes())

    def test_binary_tree(self):
        topo = binary_tree(3)
        assert topo.num_nodes == 15
        assert topo.num_edges == 14
        assert topo.is_connected()

    def test_grid(self):
        topo = grid(3, 4)
        assert topo.num_nodes == 12
        assert topo.num_edges == 3 * 3 + 2 * 4
        assert topo.is_connected()

    def test_torus(self):
        topo = torus(3, 3)
        assert topo.num_edges == 2 * 9
        assert all(topo.degree(u) == 4 for u in topo.nodes())

    def test_torus_too_small(self):
        with pytest.raises(TopologyError):
            torus(2, 5)

    @pytest.mark.parametrize("seed", range(5))
    def test_erdos_renyi_connected_by_default(self, seed):
        topo = erdos_renyi(20, 0.05, seed=seed)
        assert topo.is_connected()

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(15, 0.3, seed=9)
        b = erdos_renyi(15, 0.3, seed=9)
        assert a.port_pair_set() == b.port_pair_set()

    def test_erdos_renyi_unconnected_option(self):
        topo = erdos_renyi(30, 0.0, seed=1, connect=False)
        assert topo.num_edges == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_barabasi_albert(self, seed):
        topo = barabasi_albert(20, 2, seed=seed)
        assert topo.is_connected()
        assert topo.num_edges >= 2 * (20 - 3)

    def test_barabasi_albert_bad_params(self):
        with pytest.raises(TopologyError):
            barabasi_albert(3, 3)

    @pytest.mark.parametrize("seed", range(3))
    def test_waxman_connected(self, seed):
        assert waxman(15, seed=seed).is_connected()

    @pytest.mark.parametrize("seed", range(3))
    def test_random_regular(self, seed):
        from repro.net.topology import random_regular

        topo = random_regular(16, 4, seed=seed)
        assert topo.is_connected()
        assert all(topo.degree(u) == 4 for u in topo.nodes())
        assert topo.num_edges == 16 * 4 // 2
        # Simple graph: no parallel edges.
        assert len(topo.edge_set()) == topo.num_edges

    def test_random_regular_bad_params(self):
        from repro.net.topology import random_regular

        with pytest.raises(TopologyError):
            random_regular(5, 1)  # degree < 2
        with pytest.raises(TopologyError):
            random_regular(4, 4)  # degree >= n
        with pytest.raises(TopologyError):
            random_regular(5, 3)  # odd stub count

    def test_random_regular_deterministic(self):
        from repro.net.topology import random_regular

        a = random_regular(12, 3, seed=5)
        b = random_regular(12, 3, seed=5)
        assert a.port_pair_set() == b.port_pair_set()

    def test_fat_tree(self):
        topo = fat_tree(4)
        assert topo.num_nodes == 4 + 8 + 8
        # Each pod: 2 agg x 2 edge links; each agg: 2 core links.
        assert topo.num_edges == 4 * 4 + 4 * 2 * 2
        assert topo.is_connected()

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(3)

    def test_abilene(self):
        topo = abilene()
        assert topo.num_nodes == 11
        assert topo.num_edges == 15
        assert topo.is_connected()

    def test_registry_complete(self):
        assert set(generators) >= {
            "line", "ring", "star", "complete", "binary_tree", "grid",
            "torus", "erdos_renyi", "barabasi_albert", "waxman",
            "fat_tree", "abilene",
        }

    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 30), st.integers(0, 100))
    def test_random_graph_port_consistency(self, n, seed):
        """Every port maps to exactly one edge and the mapping is symmetric."""
        topo = erdos_renyi(n, 0.2, seed=seed)
        for node in topo.nodes():
            for port in range(1, topo.degree(node) + 1):
                edge = topo.port_edge(node, port)
                assert edge is not None
                mine = edge.endpoint(node)
                assert mine.port == port
                far = edge.other(node)
                back = topo.port_edge(far.node, far.port)
                assert back is edge
