"""Unit tests for the header-space symbolic engine and the cube algebra.

Covers the mask-algebra corner cases (mask=0 wildcards, exact/masked
mixing, subtraction expansion) plus per-switch propagation and the
whole-network symbolic walk.
"""

from __future__ import annotations

from repro.analysis.symbolic import (
    Cube,
    FieldWidths,
    SwitchAnalyzer,
    cube_from_match,
    walk_network,
    zero_state_fields,
)
from repro.analysis.verify import matches_overlap
from repro.core.compiler import compile_service
from repro.core.services.base import PlainTraversalService
from repro.net.simulator import Network
from repro.net.topology import line, ring
from repro.openflow.match import (
    FieldTest,
    Match,
    full_mask,
    pair_subtract,
    pairs_intersect,
)
from repro.openflow.packet import LOCAL_PORT


class TestPairsIntersect:
    def test_exact_exact(self):
        assert pairs_intersect(5, None, 5, None) == (5, None)
        assert pairs_intersect(5, None, 6, None) is None

    def test_exact_masked(self):
        # 0b101 is in {x : x & 0b001 == 1}.
        assert pairs_intersect(5, None, 1, 1) == (5, None)
        assert pairs_intersect(4, None, 1, 1) is None
        # Symmetric order.
        assert pairs_intersect(1, 1, 5, None) == (5, None)

    def test_masked_masked(self):
        # {x & 0b01 == 1} ∩ {x & 0b10 == 2} = {x & 0b11 == 3}.
        assert pairs_intersect(1, 0b01, 2, 0b10) == (3, 0b11)
        # Disagreement on a common bit: empty.
        assert pairs_intersect(1, 0b01, 0, 0b01) is None

    def test_wildcard_mask_zero(self):
        # mask=0 constrains nothing: intersection is the other test.
        assert pairs_intersect(0, 0, 7, 0b111) == (7, 0b111)
        assert pairs_intersect(7, 0b111, 0, 0) == (7, 0b111)
        assert pairs_intersect(0, 0, 5, None) == (5, None)


class TestFullMask:
    def test_widths(self):
        assert full_mask(4) == 0xF
        assert full_mask(8) == 0xFF

    def test_widens_for_value(self):
        # A value outside the declared width widens the mask to cover it.
        assert full_mask(4, value=0x1F) == 0x1F
        assert full_mask(8, value=3) == 0xFF


class TestPairSubtract:
    def test_disjoint(self):
        # A and B disagree on a common bit: A \ B = A.
        assert pair_subtract(1, 1, 0, 1, 4) == [(1, 1)]

    def test_full_cover(self):
        # B covers A exactly: nothing remains.
        assert pair_subtract(1, 1, 1, 1, 4) == []
        # B wildcard (mask 0) covers everything.
        assert pair_subtract(5, 0xF, 0, 0, 4) == []

    def test_expansion_pieces_partition(self):
        # Subtract the exact value 5 from the full 3-bit domain: the pieces
        # must cover exactly {0..7} \ {5} and be pairwise disjoint.
        width = 3
        pieces = pair_subtract(0, 0, 5, full_mask(width), width)
        members: list[int] = []
        for x in range(8):
            for value, mask in pieces:
                if (x & mask) == value:
                    members.append(x)
        assert sorted(members) == [0, 1, 2, 3, 4, 6, 7]  # each exactly once

    def test_masked_subtrahend(self):
        # Remove the odd numbers from the 2-bit domain.
        pieces = pair_subtract(0, 0, 1, 1, 2)
        survivors = {
            x for x in range(4)
            if any((x & m) == v for v, m in pieces)
        }
        assert survivors == {0, 2}


class TestMatchesOverlapWildcards:
    """The verify-level satellite: mask=0 must behave as a wildcard."""

    def test_mask_zero_never_constrains(self):
        wild = Match([FieldTest("start", 0, 0)])
        exact = Match([FieldTest("start", 2, None)])
        assert matches_overlap(wild, exact)
        assert matches_overlap(exact, wild)

    def test_mask_zero_vs_masked(self):
        wild = Match([FieldTest("gid", 0, 0)])
        masked = Match([FieldTest("gid", 4, 0b100)])
        assert matches_overlap(wild, masked)

    def test_disjoint_exacts_still_disjoint(self):
        a = Match(start=1)
        b = Match(start=2)
        assert not matches_overlap(a, b)

    def test_mixed_fields(self):
        a = Match([FieldTest("gid", 0, 0)], start=1)
        b = Match(start=1, gid=9)
        assert matches_overlap(a, b)


class TestCube:
    def setup_method(self):
        self.widths = FieldWidths()

    def test_constrain_and_empty(self):
        cube = Cube(1)
        got = cube.constrain("start", 1, 0b11)
        assert got is not None
        assert got.constraints["start"] == (1, 0b11)
        assert got.constrain("start", 2, 0b11) is None

    def test_constrain_wildcard_is_noop(self):
        cube = Cube(1, {"start": (1, 0b11)})
        assert cube.constrain("start", 0, 0) is cube

    def test_set_field_overwrites(self):
        cube = Cube(1, {"start": (1, 0b11)})
        got = cube.set_field("start", 2, self.widths)
        value, mask = got.constraints["start"]
        assert value == 2 and mask == full_mask(self.widths.width("start"))

    def test_havoc_frees(self):
        cube = Cube(1, {"ttl": (7, 0xFF)})
        assert "ttl" not in cube.havoc("ttl").constraints

    def test_write_metadata_masked_update(self):
        cube = Cube(1, {"metadata": (0, 0xFFFFFFFF)})
        got = cube.write_metadata(0x5, 0xFF, self.widths)
        assert got.constraints["metadata"] == (0x5, 0xFFFFFFFF)
        # Partial write on unknown metadata only pins the written bits.
        got2 = Cube(1).write_metadata(0x5, 0xFF, self.widths)
        assert got2.constraints["metadata"] == (0x5, 0xFF)

    def test_dec_field(self):
        cube = Cube(1).set_field("ttl", 3, self.widths)
        assert cube.dec_field("ttl", self.widths).exact_value(
            "ttl", self.widths
        ) == 2
        # Floor at zero.
        zero = Cube(1).set_field("ttl", 0, self.widths)
        assert zero.dec_field("ttl", self.widths).exact_value(
            "ttl", self.widths
        ) == 0
        # Non-exact: havoc.
        free = Cube(1, {"ttl": (1, 1)})
        assert "ttl" not in free.dec_field("ttl", self.widths).constraints

    def test_intersect_match_in_port(self):
        match = Match(**{"in_port": 2, "start": 1})
        widths = FieldWidths()
        assert cube_from_match(match, 2, widths) is not None
        assert cube_from_match(match, 3, widths) is None

    def test_subtract_match_disjoint_returns_self(self):
        cube = Cube(1, {"start": (1, 0b11)})
        pieces = cube.subtract_match(Match(start=2), self.widths)
        assert pieces == [cube]

    def test_subtract_match_covered_returns_empty(self):
        cube = Cube(1, {"start": (1, 0b11)})
        assert cube.subtract_match(Match(), self.widths) == []

    def test_project_drops_only_unlisted(self):
        cube = Cube(1, {"start": (1, 0b11), "gid": (4, 0xF)})
        got = cube.project({"start"})
        assert set(got.constraints) == {"start"}
        assert cube.project({"start", "gid"}) is cube


class TestSwitchAnalyzer:
    def _switch(self, n=4, node=0):
        topo = ring(n)
        return compile_service(Network(topo), node, PlainTraversalService())

    def test_free_analysis_hits_most_entries(self):
        switch = self._switch()
        analyzer = SwitchAnalyzer(switch)
        result = analyzer.analyze()
        total = sum(len(v) for v in analyzer.entries.values())
        # Everything except the structurally-dead root s=1 row is reachable.
        assert len(result.hits) == total - 1

    def test_projection_preserves_hit_set(self):
        switch = self._switch()
        plain = SwitchAnalyzer(switch).analyze()
        projected = SwitchAnalyzer(switch, project_unmatched=True).analyze()
        assert set(plain.hits) == set(projected.hits)
        assert set(plain.misses) == set(projected.misses)

    def test_no_shadowed_entries_in_compiled_output(self):
        assert SwitchAnalyzer(self._switch()).shadowed_entries() == []

    def test_seed_pins_metadata(self):
        analyzer = SwitchAnalyzer(self._switch())
        seed = analyzer.seed(1)
        value, mask = seed.constraints["metadata"]
        assert value == 0 and mask == full_mask(32)

    def test_dangling_goto_recorded(self):
        switch = self._switch()
        from repro.openflow.actions import Instructions

        switch.tables[0].install(
            Match(start=3), Instructions(goto_table=99), priority=200,
            cookie="bad:goto",
        )
        result = SwitchAnalyzer(switch).analyze()
        assert any(goto == 99 for _t, _i, goto in result.dangling)


class TestWalkNetwork:
    def test_plain_ring_sweeps_every_port(self):
        topo = ring(4)
        net = Network(topo)
        switches = {
            node: compile_service(net, node, PlainTraversalService())
            for node in topo.nodes()
        }
        walk = walk_network(switches, topo, root=0)
        assert not walk.exhausted
        assert walk.unswept_ports(topo) == []
        # The traversal ends with exactly one controller report class.
        assert len(walk.reports) == 1
        assert walk.reports[0][0] == 0
        assert walk.misses == []

    def test_line_walk_from_each_root(self):
        topo = line(3)
        net = Network(topo)
        switches = {
            node: compile_service(net, node, PlainTraversalService())
            for node in topo.nodes()
        }
        for root in topo.nodes():
            walk = walk_network(switches, topo, root=root)
            assert walk.unswept_ports(topo) == [], f"root {root}"

    def test_budget_exhaustion_flagged(self):
        topo = ring(4)
        net = Network(topo)
        switches = {
            node: compile_service(net, node, PlainTraversalService())
            for node in topo.nodes()
        }
        walk = walk_network(switches, topo, root=0, max_states=2)
        assert walk.exhausted

    def test_zero_state_covers_all_matched_fields(self):
        topo = ring(3)
        net = Network(topo)
        switches = {
            node: compile_service(net, node, PlainTraversalService())
            for node in topo.nodes()
        }
        widths = FieldWidths.for_switches(switches.values())
        state = zero_state_fields(switches, topo, widths)
        assert "start" in state
        assert "v0.par" in state and "v2.cur" in state
        for name, (value, _mask) in state.items():
            assert value == 0, name

    def test_trigger_field_override_and_free(self):
        topo = ring(3)
        net = Network(topo)
        switches = {
            node: compile_service(net, node, PlainTraversalService())
            for node in topo.nodes()
        }
        walk = walk_network(
            switches, topo, root=0, trigger_fields={"ttl": None, "gid": 7}
        )
        # Freed/overridden fields must not break the plain traversal.
        assert walk.unswept_ports(topo) == []


class TestLocalPortSeeding:
    def test_local_seed_reaches_trigger(self):
        topo = ring(4)
        switch = compile_service(Network(topo), 0, PlainTraversalService())
        analyzer = SwitchAnalyzer(switch)
        seed = analyzer.seed(LOCAL_PORT, {"start": (0, 0b11)})
        result = analyzer.propagate(seed)
        cookies = {
            analyzer.entries[t][i][1].cookie for (t, i) in result.hits
        }
        assert "classify:trigger" in cookies
