"""The tutorial's custom service, tested the way the tutorial prescribes."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import verify_engine
from repro.core.engine import make_engine
from repro.net.simulator import Network
from repro.net.topology import Topology, erdos_renyi, ring

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_example():
    spec = importlib.util.spec_from_file_location(
        "custom_service_example", _EXAMPLES / "custom_service.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("custom_service_example", module)
    spec.loader.exec_module(module)
    return module


example = _load_example()
NodeCountService = example.NodeCountService
count_nodes = example.count_nodes
FIELD_BUDGET = example.FIELD_BUDGET
INITIAL_BUDGET = example.INITIAL_BUDGET


class TestNodeCount:
    def test_counts_whole_network(self, zoo_topology, engine_mode):
        count = count_nodes(Network(zoo_topology), 0, engine_mode)
        assert count == zoo_topology.num_nodes

    def test_counts_component_only(self, engine_mode):
        topo = ring(6)
        net = Network(topo)
        net.fail_link(1, 2)
        net.fail_link(3, 4)
        assert count_nodes(net, 2, engine_mode) == 2  # just {2, 3}

    def test_single_node(self, engine_mode):
        assert count_nodes(Network(Topology(1)), 0, engine_mode) == 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 16), st.integers(0, 300))
    def test_random_graphs(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        assert count_nodes(Network(topo), 0) == n

    def test_differential(self):
        """Tutorial step 5: compiled hop sequence == interpreted."""
        topo = erdos_renyi(10, 0.3, seed=7)
        traces = []
        for mode in ("interpreted", "compiled"):
            net = Network(topo)
            engine = make_engine(net, NodeCountService(), mode)
            engine.trigger(0, fields={FIELD_BUDGET: INITIAL_BUDGET})
            traces.append(net.trace.hop_sequence())
        assert traces[0] == traces[1]

    def test_statically_verifiable(self):
        """Tutorial step 5: the verifier must accept the compiled rules."""
        topo = erdos_renyi(8, 0.35, seed=1)
        engine = make_engine(Network(topo), NodeCountService(), "compiled")
        for report in verify_engine(engine):
            assert report.ok, report.errors

    def test_composes_with_multiservice_pipeline(self):
        from repro.core.engine import MultiServiceEngine
        from repro.core.services.snapshot import SnapshotService

        topo = erdos_renyi(8, 0.35, seed=1)
        net = Network(topo)
        engine = MultiServiceEngine(
            net, [SnapshotService(), NodeCountService()], mode="compiled"
        )
        result = engine.trigger(
            NodeCountService.service_id, 0, fields={FIELD_BUDGET: 200}
        )
        _node, packet = result.reports[-1]
        assert 200 - packet.get(FIELD_BUDGET) == topo.num_nodes

    def test_register_codegen_validates(self):
        from repro.core.compiler import register_codegen

        with pytest.raises(TypeError):
            register_codegen(NodeCountService, object)
