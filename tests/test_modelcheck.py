"""Stateful model checker: clean services stay clean, seeded faults are
caught by the right invariant, and every counterexample replays in the
simulator.

The seeded-violation matrix is the checker's own regression oracle: each
mutator injects one realistic compilation bug (a dropped parent-return
rule, swapped tag writes, a stale fast-failover watch port, a rotated
smart-counter group) and the test pins down *which* invariant must fire
and that the minimized counterexample reproduces the violation when its
trace is replayed as a deterministic simulator run.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.modelcheck import (
    INVARIANTS,
    CheckConfig,
    check_engine,
    hop_bound,
    invariant,
    run_check,
    scenarios_for,
)
from repro.analysis.replay import confirms_violation, replay_counterexample
from repro.core.engine import make_engine
from repro.core.fields import (
    FIELD_GID,
    FIELD_RECCAP,
    FIELD_REPEAT,
    FIELD_TTL,
    cur_field,
    par_field,
)
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import PlainTraversalService
from repro.core.services.blackhole import BlackholeService, BlackholeTtlService
from repro.core.services.snapshot import ChunkedSnapshotService, SnapshotService
from repro.core.smart_counter import (
    build_counter_group,
    counter_bucket_value,
    counter_value,
    seed_counter,
)
from repro.net.failures import fail_edge_after_steps, fail_link_after_steps
from repro.net.simulator import Network
from repro.net.topology import abilene, grid, ring, star
from repro.openflow.actions import SetField
from repro.openflow.group import GroupType


def compiled(topology, service):
    engine = make_engine(Network(topology), service, "compiled")
    engine.install()
    return engine


# --------------------------------------------------------------------- #
# Seeded-fault mutators (shared with the property tests)                #
# --------------------------------------------------------------------- #


def drop_parent_rules(engine):
    """Delete every Send_parent degenerate-table rule: the traversal can
    descend but never climb back, so it must fail to complete."""
    for switch in engine.switches.values():
        for table in switch.tables.values():
            kept = [
                e
                for e in table._entries
                if not e.cookie.startswith("sweep:parent:")
            ]
            if len(kept) != len(table._entries):
                table._entries = kept
                table._sorted = False


def swap_par_cur(engine):
    """First_visit writes the parent port into *cur* instead of *par*:
    the classic transposed-tag compiler bug."""
    for node, switch in engine.switches.items():
        for table in switch.tables.values():
            for entry in table._entries:
                if not entry.cookie.startswith("classify:first_visit:"):
                    continue
                actions = list(entry.instructions.apply_actions)
                for i, action in enumerate(actions):
                    if (
                        isinstance(action, SetField)
                        and action.name == par_field(node)
                    ):
                        actions[i] = SetField(cur_field(node), action.value)
                object.__setattr__(
                    entry.instructions, "apply_actions", tuple(actions)
                )


def stale_ff_bucket(engine):
    """Clear one FF probe bucket's watch port: the group keeps emitting
    into a dead link instead of failing over (stale liveness)."""
    for switch in engine.switches.values():
        for group in switch.groups.groups():
            if group.group_type is not GroupType.FF:
                continue
            for bucket in group.buckets:
                if bucket.watch_port is not None:
                    object.__setattr__(bucket, "watch_port", None)
                    return


def rotate_counter(engine):
    """Rotate one SELECT group's buckets so bucket j writes j+1: the
    fetch-and-increment contract (bucket j writes j) is broken."""
    for switch in engine.switches.values():
        for group in switch.groups.groups():
            if group.group_type is GroupType.SELECT:
                object.__setattr__(
                    group,
                    "buckets",
                    tuple(group.buckets[1:]) + (group.buckets[0],),
                )
                return


def drop_found_report(engine):
    """Delete the verify-phase FOUND-report rules: a blackhole is walked
    right past without ever being named."""
    for switch in engine.switches.values():
        for table in switch.tables.values():
            kept = [
                e
                for e in table._entries
                if not e.cookie.startswith("vcheck:probe_report")
            ]
            if len(kept) != len(table._entries):
                table._entries = kept
                table._sorted = False


#: (mutator, service factory, checker config, expected invariant id).
SEEDED_FAULTS = [
    (drop_parent_rules, SnapshotService, dict(max_failures=0), "MC004"),
    (swap_par_cur, SnapshotService, dict(max_failures=0), "MC004"),
    (stale_ff_bucket, SnapshotService, dict(max_failures=1), "MC006"),
    (rotate_counter, BlackholeService, dict(max_failures=0), "MC003"),
    (drop_found_report, BlackholeService, dict(max_failures=1), "MC005"),
]


# --------------------------------------------------------------------- #
# Satellite 1: seedable smart-counter cursors                           #
# --------------------------------------------------------------------- #


class TestCounterSeeding:
    def test_build_with_start(self):
        group = build_counter_group(7, 8, start=5)
        assert counter_value(group) == 5
        assert [counter_bucket_value(group, j) for j in range(8)] == list(
            range(8)
        )

    def test_seed_counter(self):
        group = build_counter_group(7, 4)
        seed_counter(group, 3)
        assert counter_value(group) == 3
        with pytest.raises(ValueError):
            seed_counter(group, 4)
        with pytest.raises(ValueError):
            build_counter_group(7, 4, start=-1)

    def test_blackhole_counter_start_compiles(self):
        service = BlackholeService(counter_start=5)
        engine = compiled(ring(4), service)
        cursors = {
            g.rr_next
            for switch in engine.switches.values()
            for g in switch.groups.groups()
            if g.group_type is GroupType.SELECT
        }
        assert cursors == {5}
        with pytest.raises(ValueError):
            BlackholeService(counter_start=16)

    def test_seeded_cursor_is_deterministic(self):
        """Two networks with the same counter_start report identically."""
        outs = []
        for _ in range(2):
            engine = compiled(ring(4), BlackholeService(counter_start=3))
            engine.trigger(0, {FIELD_REPEAT: 3})
            engine.trigger(0, {FIELD_REPEAT: 0})
            outs.append(
                [(n, sorted(p.fields.items())) for n, p in engine.reports]
            )
        assert outs[0] == outs[1]


# --------------------------------------------------------------------- #
# Satellite 2: scheduled mid-traversal failures                         #
# --------------------------------------------------------------------- #


class TestStepScheduledFailures:
    def test_hook_for_past_step_fires_immediately(self):
        network = Network(ring(4))
        fired = []
        network.at_packet_step(0, lambda: fired.append("now"))
        assert fired == ["now"]
        with pytest.raises(ValueError):
            network.at_packet_step(-1, lambda: None)

    def test_fail_edge_mid_traversal(self):
        from repro.core.services.snapshot import decode_snapshot

        topology = ring(4)
        network = Network(topology)
        engine = make_engine(network, SnapshotService(), "compiled")
        observed = []
        fail_edge_after_steps(network, 2, 2)
        network.at_packet_step(
            2, lambda: observed.append(network.links[2].up)
        )
        engine.trigger(0)
        assert observed == [False]  # killed exactly at step 2
        assert not network.links[2].up
        # The sweep reroutes around the failure and still reports; the dead
        # link is (correctly) absent from the collected snapshot.
        assert engine.reports
        _nodes, links = decode_snapshot(engine.reports[0][1])
        assert len(links) == topology.num_edges - 1

    def test_fail_after_parent_link_loses_packet(self):
        """Failing the DFS tree edge *behind* the packet (step 3: the
        packet has already descended across it) kills the parent return —
        the paper-documented loss mode the completion invariant excuses."""
        topology = ring(4)
        network = Network(topology)
        engine = make_engine(network, SnapshotService(), "compiled")
        fail_edge_after_steps(network, 2, 3)
        engine.trigger(0)
        assert not engine.reports

    def test_fail_link_after_steps_validates(self):
        network = Network(ring(4))
        with pytest.raises(ValueError):
            fail_edge_after_steps(network, 99, 1)
        with pytest.raises(ValueError):
            fail_link_after_steps(network, 0, 2, 1)  # no chord in a ring


# --------------------------------------------------------------------- #
# Scenario construction                                                 #
# --------------------------------------------------------------------- #


class TestScenarios:
    def test_blackhole_placements(self):
        topo = ring(4)
        scenarios = scenarios_for(BlackholeService(), topo, 0, 1)
        assert len(scenarios) == 1 + topo.num_edges  # clean + each edge
        assert all(not s.allow_failures for s in scenarios)
        probe, verify = scenarios[0].triggers
        assert dict(probe.fields)[FIELD_REPEAT] == 3
        assert verify.at_quiescence

    def test_anycast_includes_unserved_gid(self):
        scenarios = scenarios_for(
            AnycastService({1: {2}, 5: {3}}), ring(4), 0, 1
        )
        gids = [s.gid for s in scenarios]
        assert gids == [1, 5, 6]  # configured groups + one unserved

    def test_chunked_carries_reccap(self):
        (scenario,) = scenarios_for(
            ChunkedSnapshotService(max_records=4), ring(4), 0, 1
        )
        assert dict(scenario.triggers[0].fields)[FIELD_RECCAP] == 4

    def test_ttl_budget_matches_topology(self):
        topo = grid(3, 3)
        scenarios = scenarios_for(BlackholeTtlService(), topo, 0, 1)
        assert (
            dict(scenarios[0].triggers[0].fields)[FIELD_TTL]
            == 4 * topo.num_edges + 4
        )

    def test_hop_bound_covers_real_traversal(self):
        """The MC001 budget must admit the exact Table 2 message count."""
        from repro.analysis.complexity import dfs_message_count

        for topo in (ring(4), star(5), abilene(), grid(3, 3)):
            assert hop_bound("snapshot", topo) >= dfs_message_count(
                topo.num_nodes, topo.num_edges
            )


# --------------------------------------------------------------------- #
# The invariant registry                                                #
# --------------------------------------------------------------------- #


class TestInvariantRegistry:
    def test_known_ids_registered(self):
        for inv_id in (
            "MC001",
            "MC002",
            "MC003",
            "MC004",
            "MC005",
            "MC006",
            "MC007",
            "MC008",
            "MC009",
        ):
            assert inv_id in INVARIANTS
            assert INVARIANTS[inv_id].doc

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError):

            @invariant("MC001", "dup", "step")
            def _dup(ctx, state, info):  # pragma: no cover
                return []

    def test_bad_scope_rejected(self):
        with pytest.raises(ValueError):
            invariant("MC999", "bad", "sometimes")

    def test_disable_suppresses(self):
        engine = compiled(ring(4), SnapshotService())
        drop_parent_rules(engine)
        report = run_check(
            engine.switches,
            ring(4),
            engine.service,
            CheckConfig(max_failures=0, disable={"MC004"}),
        )
        assert not any(
            c.violation.invariant == "MC004" for c in report.counterexamples
        )


# --------------------------------------------------------------------- #
# Clean services stay clean                                             #
# --------------------------------------------------------------------- #


def _service_matrix():
    return [
        pytest.param(PlainTraversalService, id="plain"),
        pytest.param(SnapshotService, id="snapshot"),
        pytest.param(
            lambda: ChunkedSnapshotService(max_records=4), id="chunked"
        ),
        pytest.param(lambda: AnycastService({1: {2}}), id="anycast"),
        pytest.param(
            lambda: PriocastService({1: {1: 10, 2: 20}}), id="priocast"
        ),
        pytest.param(BlackholeService, id="blackhole"),
        pytest.param(BlackholeTtlService, id="blackhole_ttl"),
    ]


@pytest.mark.parametrize("factory", _service_matrix())
@pytest.mark.parametrize(
    "topology", [ring(4), star(5)], ids=lambda t: t.name
)
def test_clean_service_checks_clean(topology, factory):
    report = check_engine(
        make_engine(Network(topology), factory(), "compiled"),
        CheckConfig(max_failures=1),
    )
    assert report.exit_code == 0, report.format_text(topology)
    assert report.states > 0


def test_abilene_snapshot_under_failures_clean():
    report = check_engine(
        make_engine(Network(abilene()), SnapshotService(), "compiled"),
        CheckConfig(max_failures=1),
    )
    assert report.exit_code == 0, report.format_text(abilene())


# --------------------------------------------------------------------- #
# Satellite 3: the seeded-violation matrix                              #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "mutate,factory,config,expected",
    SEEDED_FAULTS,
    ids=[m.__name__ for m, _f, _c, _e in SEEDED_FAULTS],
)
def test_seeded_fault_caught_and_replays(mutate, factory, config, expected):
    topology = ring(4)
    engine = compiled(topology, factory())
    mutate(engine)
    report = run_check(
        engine.switches, topology, engine.service, CheckConfig(**config)
    )
    ids = {c.violation.invariant for c in report.counterexamples}
    assert expected in ids, f"{mutate.__name__}: got {ids or 'no violations'}"

    cex = next(
        c
        for c in report.counterexamples
        if c.violation.invariant == expected
    )
    service = factory()
    result = replay_counterexample(cex, topology, service, mutate=mutate)
    confirmed, evidence = confirms_violation(result, cex, topology, service)
    assert confirmed, f"{mutate.__name__}: replay did not confirm: {evidence}"


def test_counterexample_traces_are_minimal():
    """The minimizer must strip failure actions a violation doesn't need."""
    topology = ring(4)
    engine = compiled(topology, SnapshotService())
    drop_parent_rules(engine)  # violates with zero failures
    report = run_check(
        engine.switches, topology, engine.service, CheckConfig(max_failures=1)
    )
    cex = next(
        c
        for c in report.counterexamples
        if c.violation.invariant == "MC004"
    )
    assert not any(a[0] == "fail" for a in cex.trace)


# --------------------------------------------------------------------- #
# Report plumbing                                                       #
# --------------------------------------------------------------------- #


class TestReport:
    def test_exit_codes(self):
        topology = ring(4)
        clean = check_engine(
            make_engine(Network(topology), SnapshotService(), "compiled"),
            CheckConfig(max_failures=0),
        )
        assert clean.exit_code == 0

        engine = compiled(topology, SnapshotService())
        drop_parent_rules(engine)
        bad = run_check(
            engine.switches,
            topology,
            engine.service,
            CheckConfig(max_failures=0),
        )
        assert bad.exit_code == 1

        tiny = check_engine(
            make_engine(Network(topology), SnapshotService(), "compiled"),
            CheckConfig(max_failures=1, max_states=3),
        )
        assert tiny.exit_code == 2 and tiny.exhausted

    def test_json_round_trip(self):
        engine = compiled(ring(4), SnapshotService())
        swap_par_cur(engine)
        report = run_check(
            engine.switches,
            ring(4),
            engine.service,
            CheckConfig(max_failures=0),
        )
        payload = json.loads(report.to_json())
        assert payload["exit_code"] == 1
        (cex,) = payload["counterexamples"][:1]
        assert cex["violation"]["invariant"].startswith("MC")
        assert cex["trace"][0][0] == "inject"

    def test_cli_check(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "check",
                    "--topology",
                    "ring",
                    "--nodes",
                    "4",
                    "--service",
                    "snapshot",
                    "--max-failures",
                    "1",
                ]
            )
            == 0
        )
        assert "clean" in capsys.readouterr().out

    def test_cli_check_json(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "check",
                    "--topology",
                    "star",
                    "--nodes",
                    "5",
                    "--service",
                    "anycast",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["topology"] == "star-5"
        assert payload["counterexamples"] == []


# --------------------------------------------------------------------- #
# MC009: supervised epochs deliver at most once                          #
# --------------------------------------------------------------------- #


class TestEpochAtMostOnce:
    """MC009's safety half on synthetic terminal states, and its liveness
    half (the supervisor ledger) against real supervised runs."""

    @staticmethod
    def _violations(service, reports=(), deliveries=()):
        from types import SimpleNamespace

        ctx = SimpleNamespace(service=service)
        state = SimpleNamespace(reports=tuple(reports),
                                deliveries=tuple(deliveries))
        return list(INVARIANTS["MC009"].check(ctx, state))

    def test_single_completion_per_epoch_clean(self):
        reports = [
            (0, (("epoch", 1),), ()),
            (0, (("epoch", 2),), ()),
        ]
        assert self._violations(SnapshotService(), reports) == []

    def test_duplicate_epoch_report_flagged(self):
        reports = [
            (0, (("epoch", 3),), ()),
            (1, (("epoch", 3),), ()),
        ]
        violations = self._violations(SnapshotService(), reports)
        assert len(violations) == 1
        assert "epoch 3" in violations[0].message

    def test_epoch_zero_exempt(self):
        # Unsupervised traffic (epoch 0) may report as often as it likes.
        reports = [(0, (), ()), (1, (), ()), (2, (("epoch", 0),), ())]
        assert self._violations(SnapshotService(), reports) == []

    def test_anycast_counts_deliveries(self):
        deliveries = [(3, (("epoch", 4),)), (5, (("epoch", 4),))]
        violations = self._violations(
            AnycastService({1: {3, 5}}), deliveries=deliveries
        )
        assert len(violations) == 1

    def test_blackhole_found_multiplicity_tolerated(self):
        # Phase B may copy several FOUND reports per walk; only BH_DONE is
        # the completion observable for the blackhole services.
        reports = [
            (0, (("bh", 1), ("epoch", 6)), ()),
            (2, (("bh", 1), ("epoch", 6)), ()),
        ]
        assert self._violations(BlackholeService(), reports) == []
        done_twice = [
            (0, (("bh", 2), ("epoch", 6)), ()),
            (0, (("bh", 2), ("epoch", 6)), ()),
        ]
        assert len(self._violations(BlackholeService(), done_twice)) == 1

    def test_clean_supervised_runs_satisfy_the_ledger(self):
        from repro.control.supervisor import SupervisedRuntime, check_epoch_ledger

        net = Network(grid(3, 3))
        runtime = SupervisedRuntime(net)
        outcomes = [
            runtime.snapshot(0).supervision,
            runtime.critical(4).supervision,
            runtime.detect_blackhole(0).supervision,
            runtime.anycast(0, 1, {1: {8}}).supervision,
        ]
        for outcome in outcomes:
            assert check_epoch_ledger(outcome) == []

    def test_degraded_supervised_run_satisfies_the_ledger(self):
        from repro.control.supervisor import SupervisedRuntime, SupervisorConfig
        from repro.control.supervisor import check_epoch_ledger

        net = Network(ring(5))
        net.links[0].set_blackhole()
        runtime = SupervisedRuntime(
            net, config=SupervisorConfig(max_attempts=2)
        )
        snap = runtime.snapshot(0)
        assert snap.degraded
        assert check_epoch_ledger(snap.supervision) == []


# --------------------------------------------------------------------- #
# Controller crash scenarios (MC010)                                    #
# --------------------------------------------------------------------- #


class TestCrashScenarios:
    """MC010: no stale epoch crosses a controller crash/resync boundary."""

    def test_crash_flag_adds_scenarios(self):
        topo = ring(4)
        service = SnapshotService()
        base = scenarios_for(service, topo, 0)
        withc = scenarios_for(service, topo, 0, crash=True)
        assert [s.name for s in base] == ["snapshot"]
        assert [s.name for s in withc] == ["snapshot", "snapshot:crash"]
        crash = withc[1]
        assert crash.crash == (1, 3)
        assert [t.after_crash for t in crash.triggers] == [False, True]
        assert [dict(t.fields)["epoch"] for t in crash.triggers] == [1, 3]

    def test_crash_scenarios_round_trip_json(self):
        from repro.analysis.modelcheck import _crash_scenario

        payload = _crash_scenario("snapshot", 0).to_dict()
        assert payload["crash"] == [1, 3]
        assert payload["triggers"][1]["after_crash"] is True
        json.dumps(payload)

    @pytest.mark.parametrize(
        "factory",
        [
            pytest.param(SnapshotService, id="snapshot"),
            pytest.param(PlainTraversalService, id="plain"),
        ],
    )
    def test_real_gate_survives_the_crash(self, factory):
        report = check_engine(
            make_engine(Network(ring(4)), factory(), "compiled"),
            CheckConfig(max_failures=0, crash=True),
        )
        assert report.exit_code == 0, report.format_text(ring(4))
        assert report.scenarios == 2

    def test_misplaced_gate_caught_by_mc010(self):
        from repro.analysis.modelcheck import (
            CRASH_EPOCHS,
            Explorer,
            ModelContext,
            Scenario,
            StatefulStepper,
            TriggerSpec,
            active_invariants,
        )
        from repro.analysis.symbolic import FieldWidths
        from repro.core.fields import FIELD_EPOCH

        topo = ring(4)
        engine = compiled(topo, SnapshotService())
        widths = FieldWidths.for_switches(engine.switches.values())
        steppers = {
            n: StatefulStepper(sw, widths)
            for n, sw in engine.switches.items()
        }
        pre, post = CRASH_EPOCHS
        # The gate guards node 2 while the traversal roots at node 0: the
        # stale straggler reports at an unguarded origin.
        scenario = Scenario(
            "snapshot:crash-misplaced-gate",
            "snapshot",
            2,
            (
                TriggerSpec(0, ((FIELD_EPOCH, pre),), label="pre-crash"),
                TriggerSpec(
                    0, ((FIELD_EPOCH, post),), after_crash=True, label="retry"
                ),
            ),
            crash=(pre, post),
        )
        ctx = ModelContext(topo, engine.service, scenario, widths)
        explorer = Explorer(
            steppers,
            topo,
            scenario,
            ctx,
            CheckConfig(max_failures=0, crash=True),
            active_invariants(),
        )
        found, _explored, _exhausted = explorer.explore()
        mc010 = [c for c in found if c.violation.invariant == "MC010"]
        assert mc010, [c.violation.format() for c in found]
        trace = mc010[0].trace
        # The crash survives minimization (only failures and extra triggers
        # are deletable) and renders readably.
        assert ("crash",) in trace
        from repro.analysis.modelcheck import format_action

        assert "crash" in format_action(("crash",))

    def test_crash_traces_refuse_replay(self):
        from repro.analysis.modelcheck import Counterexample, Violation
        from repro.analysis.modelcheck import _crash_scenario

        cex = Counterexample(
            scenario=_crash_scenario("snapshot", 0),
            violation=Violation("MC010", "crash-at-most-once", "synthetic"),
            trace=(("inject", 0), ("crash",), ("inject", 1)),
        )
        with pytest.raises(ValueError, match="crash"):
            replay_counterexample(cex, ring(4), SnapshotService())

    def test_cli_crash_flag(self, capsys):
        from repro.cli import main

        code = main([
            "check", "--topology", "ring", "--nodes", "4",
            "--service", "snapshot", "--crash",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 scenario(s)" in out


class TestSwitchCrashScenarios:
    def test_scenarios_enumerate_non_root_victims(self):
        scenarios = scenarios_for(
            SnapshotService(), ring(4), 0, max_failures=0, switch_crash=True
        )
        sw = [s for s in scenarios if s.sw_crash is not None]
        assert [s.sw_crash for s in sw] == [1, 2, 3]
        for scenario in sw:
            assert not scenario.allow_failures
            assert scenario.triggers[1].after_reboot

    def test_scenario_round_trips_json(self):
        from repro.analysis.modelcheck import _switch_crash_scenarios

        payload = _switch_crash_scenarios("snapshot", 0, ring(4))[0].to_dict()
        assert payload["sw_crash"] == 1
        assert payload["triggers"][1]["after_reboot"] is True
        json.dumps(payload)

    def test_sw_losses_are_environment_losses(self):
        from repro.analysis.modelcheck import ENVIRONMENT_LOSSES

        assert {"sw_down", "sw_bare"} <= ENVIRONMENT_LOSSES

    def test_action_formatting(self):
        from repro.analysis.modelcheck import format_action

        assert "crashes" in format_action(("sw-crash", 2))
        assert "bare" in format_action(("sw-reboot", 2))

    @pytest.mark.parametrize(
        "factory",
        [
            pytest.param(SnapshotService, id="snapshot"),
            pytest.param(PlainTraversalService, id="plain"),
        ],
    )
    def test_real_programs_only_under_claim(self, factory):
        report = check_engine(
            compiled(ring(4), factory()),
            CheckConfig(max_failures=0, switch_crash=True),
        )
        assert report.exit_code == 0, report.format_text(ring(4))
        assert report.scenarios == 4  # base + one per non-root victim

    def test_crash_mid_traversal_drops_then_bare_switch_miss_drops(self):
        from repro.analysis.modelcheck import (
            Explorer,
            ModelContext,
            StatefulStepper,
            _switch_crash_scenarios,
            active_invariants,
        )
        from repro.analysis.symbolic import FieldWidths

        topo = ring(4)
        engine = compiled(topo, SnapshotService())
        widths = FieldWidths.for_switches(engine.switches.values())
        steppers = {
            n: StatefulStepper(sw, widths)
            for n, sw in engine.switches.items()
        }
        scenario = _switch_crash_scenarios("snapshot", 0, topo)[1]  # victim 2
        ctx = ModelContext(topo, engine.service, scenario, widths)
        explorer = Explorer(
            steppers, topo, scenario, ctx,
            CheckConfig(max_failures=0), active_invariants(),
        )
        state = explorer.initial_state()
        state, _ = explorer.apply(state, ("inject", 0))
        state, _ = explorer.apply(state, ("sw-crash", 2))
        while state.packets or state.next_trigger < len(scenario.triggers):
            if state.packets:
                state, _ = explorer.apply(
                    state, ("step", state.packets[0].pid)
                )
            elif state.down:
                state, _ = explorer.apply(state, ("sw-reboot", min(state.down)))
            else:
                state, _ = explorer.apply(state, ("inject", state.next_trigger))
        kinds = [loss[0] for loss in state.losses]
        assert kinds == ["sw_down", "sw_bare"]
        assert state.reports == ()  # pure under-claim, nothing fabricated
        assert explorer.terminal_violations(state) == []


class TestMC011Fires:
    def synthetic(self, **overrides):
        from repro.analysis.modelcheck import (
            GlobalState,
            ModelContext,
            _switch_crash_scenarios,
        )
        from repro.analysis.symbolic import FieldWidths

        topo = ring(4)
        engine = compiled(topo, SnapshotService())
        widths = FieldWidths.for_switches(engine.switches.values())
        scenario = _switch_crash_scenarios("snapshot", 0, topo)[1]  # victim 2
        ctx = ModelContext(topo, engine.service, scenario, widths)
        fields = {
            "packets": (),
            "live": frozenset(range(topo.num_edges)),
            "cursors": (),
            "failures_left": 0,
            "next_trigger": 2,
            "extra_left": 0,
            "next_pid": 1,
            "reports": (),
            "deliveries": (),
            "losses": (),
            "sw_mark": (0, 0),
        }
        fields.update(overrides)
        return ctx, GlobalState(**fields)

    def violations(self, ctx, state):
        return list(INVARIANTS["MC011"].check(ctx, state))

    def test_vacuous_without_a_fired_crash(self):
        ctx, state = self.synthetic(
            sw_mark=None, reports=((2, (("snap_done", 1),), ()),)
        )
        assert self.violations(ctx, state) == []

    def test_report_from_the_victim_is_fabrication(self):
        ctx, state = self.synthetic(reports=((2, (), ()),))
        found = self.violations(ctx, state)
        assert any("stay silent" in v.message for v in found)

    def test_delivery_from_the_victim_is_fabrication(self):
        ctx, state = self.synthetic(deliveries=((2, ()),))
        found = self.violations(ctx, state)
        assert any("stay silent" in v.message for v in found)

    def test_sw_loss_at_non_victim_is_flagged(self):
        ctx, state = self.synthetic(losses=(("sw_down", 1, 1, -1),))
        found = self.violations(ctx, state)
        assert any("victim is 2" in v.message for v in found)

    def test_snapshot_over_claim_is_flagged(self):
        # A decoded stream naming a nonexistent link (0-2 is not a ring
        # edge) is a wrong result; a partial stream is a fine under-claim.
        ghost_stack = (
            ("visit", 0, 0),
            ("out", 2),
            ("visit", 2, 2),
        )
        ctx, state = self.synthetic(
            reports=((0, (("snapdone", 1),), ghost_stack),)
        )
        found = self.violations(ctx, state)
        assert any("nonexistent" in v.message for v in found)

    def test_honest_under_claims_pass(self):
        ctx, state = self.synthetic(
            losses=(("sw_down", 2, 1, -1), ("sw_bare", 2, 1, -1)),
            reports=((0, (), ()),),  # root-side report, no ghost content
        )
        assert self.violations(ctx, state) == []
