"""Analysis helpers: graph oracles and match-overlap logic."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.graph import (
    articulation_points,
    connected_components,
    dfs_edge_order,
    spanning_tree,
)
from repro.analysis.verify import matches_overlap
from repro.net.topology import Topology, erdos_renyi, line, ring
from repro.openflow.match import FieldTest, Match


class TestComponents:
    def test_single_component(self):
        assert connected_components(ring(4)) == [{0, 1, 2, 3}]

    def test_multiple_components(self):
        topo = Topology(5)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        comps = connected_components(topo)
        assert {frozenset(c) for c in comps} == {
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4}),
        }


class TestSpanningTree:
    def test_tree_size(self):
        topo = erdos_renyi(12, 0.3, seed=5)
        tree = spanning_tree(topo, 0)
        assert len(tree) == topo.num_nodes - 1

    def test_tree_edges_connect_graph(self):
        topo = erdos_renyi(10, 0.4, seed=7)
        tree = spanning_tree(topo, 0)
        graph = nx.Graph()
        graph.add_nodes_from(topo.nodes())
        for edge_id in tree:
            edge = topo.edge(edge_id)
            graph.add_edge(edge.a.node, edge.b.node)
        assert nx.is_connected(graph)

    def test_disconnected_graph_spans_root_component(self):
        topo = Topology(4)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert len(spanning_tree(topo, 0)) == 1


class TestArticulationPoints:
    def test_adjacency_input(self):
        adj = {0: [1], 1: [0, 2], 2: [1]}
        assert articulation_points(adj) == {1}

    def test_disconnected_graph(self):
        topo = Topology(6)
        topo.add_link(0, 1)
        topo.add_link(1, 2)
        topo.add_link(3, 4)
        topo.add_link(4, 5)
        assert articulation_points(topo) == {1, 4}

    def test_empty_graph(self):
        assert articulation_points(Topology(3)) == set()


class TestDfsOrder:
    def test_line_order(self):
        hops = dfs_edge_order(line(3), 0)
        assert hops == [
            (0, 1, 1, 1),
            (1, 2, 2, 1),
            (2, 1, 1, 2),
            (1, 1, 0, 1),
        ]

    def test_respects_live_filter(self):
        topo = ring(4)
        dead = topo.find_edge(0, 1)
        hops = dfs_edge_order(topo, 0, live=lambda e: e is not dead)
        crossed = {(u, p) for u, p, _, _ in hops}
        assert (dead.a.node, dead.a.port) not in crossed
        assert (dead.b.node, dead.b.port) not in crossed

    def test_deep_line_does_not_blow_recursion(self):
        hops = dfs_edge_order(line(600), 0)
        assert len(hops) == 2 * 599

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 15), st.integers(0, 300))
    def test_hop_count_matches_formula(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        hops = dfs_edge_order(topo, 0)
        assert len(hops) == 4 * topo.num_edges - 2 * n + 2


class TestMatchOverlap:
    def test_disjoint_exact(self):
        assert not matches_overlap(Match(x=1), Match(x=2))

    def test_same_exact(self):
        assert matches_overlap(Match(x=1), Match(x=1))

    def test_different_fields_overlap(self):
        assert matches_overlap(Match(x=1), Match(y=2))

    def test_wildcard_overlaps_everything(self):
        assert matches_overlap(Match(), Match(x=5))

    def test_masked_vs_exact(self):
        masked = Match([FieldTest("x", 0b100, 0b110)])
        assert matches_overlap(masked, Match(x=0b101))
        assert not matches_overlap(masked, Match(x=0b010))

    def test_masked_vs_masked(self):
        a = Match([FieldTest("x", 0b10, 0b11)])
        b = Match([FieldTest("x", 0b100, 0b100)])
        assert matches_overlap(a, b)  # x = 0b110 satisfies both
        c = Match([FieldTest("x", 0b00, 0b10)])
        assert not matches_overlap(a, c)
