"""Traversal supervision: watchdogs, epoch retries, graceful degradation."""

from __future__ import annotations

import pytest

from repro.control.channel import ControlChannel
from repro.control.supervisor import (
    ACCEPTED,
    DEGRADED_REPORT,
    PACKET_OUT_LOST,
    PROBE_INCOMPLETE,
    UNCONFIRMED,
    EpochAttempt,
    SupervisedOutcome,
    SupervisedRuntime,
    SupervisorConfig,
    TraversalSupervisor,
    check_epoch_ledger,
)
from repro.core.engine import make_engine
from repro.core.fields import FIELD_REPEAT
from repro.core.services.blackhole import (
    BH_INCOMPLETE,
    FIELD_BH,
    REPEAT_VERIFY,
    BlackholeService,
)
from repro.core.services.snapshot import SnapshotService
from repro.net.failures import fail_edge_after_steps
from repro.net.simulator import Network
from repro.net.topology import complete, ring, torus


class TestSupervisorConfig:
    def test_defaults_valid(self):
        SupervisorConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"safety_factor": 0.5},
            {"base_backoff": -1.0},
            {"backoff_factor": 0.9},
            {"jitter": 1.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs).validate()


class TestCleanSupervision:
    def test_snapshot_first_attempt_accepted(self):
        net = Network(torus(3, 3))
        runtime = SupervisedRuntime(net)
        snap = runtime.snapshot(0)
        assert snap.ok and not snap.degraded
        assert snap.links == net.live_port_pairs()
        outcome = snap.supervision
        assert outcome.attempts_used == 1
        assert outcome.epochs == [1]
        assert outcome.attempts[0].outcome == ACCEPTED
        assert check_epoch_ledger(outcome) == []

    def test_epochs_shared_across_services(self):
        net = Network(ring(5))
        runtime = SupervisedRuntime(net)
        first = runtime.snapshot(0).supervision.epochs
        second = runtime.critical(1).supervision.epochs
        assert first == [1]
        assert second == [2]  # one clock, no epoch reuse across calls

    def test_anycast_delivery_accepted(self):
        net = Network(ring(6))
        runtime = SupervisedRuntime(net)
        delivery = runtime.anycast(0, 1, {1: {3}})
        assert not delivery.degraded and not delivery.fallback
        assert delivery.delivered_at == 3


class TestRetryPath:
    def test_mid_traversal_failure_retried_and_recovered(self):
        # Fail the DFS tree edge *behind* the packet (it has already
        # descended across it): attempt 1's parent return dies, the
        # failure then becomes visible, and the retry routes around it.
        net = Network(ring(4))
        fail_edge_after_steps(net, 2, 3)
        runtime = SupervisedRuntime(net)
        snap = runtime.snapshot(0)
        assert snap.ok
        assert snap.links == net.live_port_pairs()
        outcome = snap.supervision
        assert outcome.attempts_used >= 2
        assert outcome.attempts[-1].outcome == ACCEPTED
        assert all(a.outcome != ACCEPTED for a in outcome.attempts[:-1])
        assert check_epoch_ledger(outcome) == []

    def test_backoff_grows_and_jitter_is_seeded(self):
        net_a = Network(ring(4), seed=9)
        net_b = Network(ring(4), seed=9)
        sup_a = TraversalSupervisor(net_a, SnapshotService())
        sup_b = TraversalSupervisor(net_b, SnapshotService())
        delays_a = [sup_a._backoff(i) for i in range(4)]
        delays_b = [sup_b._backoff(i) for i in range(4)]
        assert delays_a == delays_b  # same network seed, same jitter
        bare = [sup_a.config.base_backoff * sup_a.config.backoff_factor**i
                for i in range(4)]
        for drawn, base in zip(delays_a, bare):
            assert base <= drawn <= base * (1 + sup_a.config.jitter)


class TestDegradation:
    def test_snapshot_degrades_under_persistent_blackhole(self):
        # A silent drop-all blackhole adjacent to the root kills every
        # attempt on a ring (no alternate path for the sweep's first hop).
        net = Network(ring(5))
        net.links[0].set_blackhole()
        config = SupervisorConfig(max_attempts=2)
        runtime = SupervisedRuntime(net, config=config)
        snap = runtime.snapshot(0)
        assert snap.degraded and not snap.ok
        assert snap.links == set()  # never a lie: no invented links
        assert 0 in snap.nodes
        assert snap.nodes <= set(net.topology.nodes())
        outcome = snap.supervision
        assert outcome.attempts_used == 2
        assert outcome.attempts[-1].outcome == DEGRADED_REPORT
        assert outcome.reason == "retries-exhausted"
        assert check_epoch_ledger(outcome) == []

    def test_critical_degrades_to_explicit_unknown(self):
        net = Network(ring(5))
        net.links[0].set_blackhole()
        net.links[4].set_blackhole()
        runtime = SupervisedRuntime(net, config=SupervisorConfig(max_attempts=2))
        verdict = runtime.critical(0)
        assert verdict.degraded
        assert verdict.critical is None

    def test_anycast_falls_back_to_confirmed_member(self):
        net = Network(ring(6))
        runtime = SupervisedRuntime(net, config=SupervisorConfig(max_attempts=2))
        first = runtime.anycast(0, 1, {1: {3}})
        assert first.delivered_at == 3
        # Now every path out of the origin silently drops: no fresh
        # delivery is possible, but member 3 was confirmed earlier.
        for link in net.links:
            link.set_blackhole()
        second = runtime.anycast(0, 1, {1: {3}})
        assert second.degraded and second.fallback
        assert second.delivered_at == 3

    def test_anycast_without_history_degrades_to_none(self):
        net = Network(ring(6))
        for link in net.links:
            link.set_blackhole()
        runtime = SupervisedRuntime(net, config=SupervisorConfig(max_attempts=2))
        delivery = runtime.anycast(0, 1, {1: {3}})
        assert delivery.degraded and not delivery.fallback
        assert delivery.delivered_at is None


class TestControllerDisconnection:
    def test_all_packet_outs_lost_reports_disconnection(self):
        net = Network(ring(5))
        channel = ControlChannel(net)
        channel.disconnect(0)
        runtime = SupervisedRuntime(
            net, config=SupervisorConfig(max_attempts=3), channel=channel
        )
        snap = runtime.snapshot(0)
        assert snap.degraded
        outcome = snap.supervision
        assert outcome.reason == "controller-disconnected"
        assert outcome.attempts[-1].outcome == DEGRADED_REPORT
        assert all(
            a.outcome in (PACKET_OUT_LOST, DEGRADED_REPORT)
            for a in outcome.attempts
        )
        assert channel.packet_outs_lost == 3
        assert check_epoch_ledger(outcome) == []

    def test_reconnect_mid_call_recovers(self):
        net = Network(ring(5))
        channel = ControlChannel(net)
        channel.disconnect(0)
        # Reconnect while the supervisor is backing off after attempt 1.
        net.sim.at(20.0, lambda: channel.reconnect(0))
        runtime = SupervisedRuntime(
            net, config=SupervisorConfig(max_attempts=4), channel=channel
        )
        snap = runtime.snapshot(0)
        assert snap.ok
        assert snap.supervision.attempts[0].outcome == PACKET_OUT_LOST
        assert snap.supervision.attempts[-1].outcome == ACCEPTED

    def test_blackhole_detection_reports_disconnection(self):
        net = Network(ring(5))
        channel = ControlChannel(net)
        channel.disconnect(0)
        runtime = SupervisedRuntime(
            net, config=SupervisorConfig(max_attempts=2), channel=channel
        )
        result = runtime.detect_blackhole(0)
        assert result.degraded
        assert result.supervision.reason == "controller-disconnected"


class TestSupervisedBlackhole:
    def test_symmetric_blackhole_confirmed_across_epochs(self):
        net = Network(complete(5))
        net.links[3].set_blackhole()
        runtime = SupervisedRuntime(net, config=SupervisorConfig(max_attempts=4))
        result = runtime.detect_blackhole(0)
        assert not result.degraded
        verdict = result.verdict
        assert verdict is not None and verdict.found
        node, port = verdict.location
        edge = net.topology.port_edge(node, port)
        assert edge is not None and edge.edge_id == 3
        # Cross-epoch confirmation: one UNCONFIRMED sighting, then accept.
        outcomes = [a.outcome for a in result.supervision.attempts]
        assert outcomes == [UNCONFIRMED, ACCEPTED]
        assert check_epoch_ledger(result.supervision) == []

    def test_clean_network_accepted_first_attempt(self):
        net = Network(torus(3, 3))
        runtime = SupervisedRuntime(net)
        result = runtime.detect_blackhole(0)
        assert not result.degraded
        assert result.verdict is not None and not result.verdict.found
        assert result.supervision.attempts_used == 1

    def test_verify_without_probe_halts_incomplete(self):
        # A verify walk over virgin counters proves the probe never ran:
        # the very first send fetches 0, halts, and reports BH_INCOMPLETE
        # instead of wandering off and fabricating count-1 signatures.
        net = Network(ring(4))
        engine = make_engine(net, BlackholeService(), "interpreted")
        result = engine.trigger(0, fields={FIELD_REPEAT: REPEAT_VERIFY})
        kinds = [pkt.get(FIELD_BH) for _node, pkt in result.reports]
        assert kinds == [BH_INCOMPLETE]
        assert result.reports[0][0] == 0  # halted right at the root

    def test_incomplete_epoch_fails_fast(self):
        # Heavy loss next to the root: some attempts die without a count-1
        # signature and must resolve as probe-incomplete (in-band), not
        # hang until the watchdog; the call still ends honestly.
        net = Network(ring(5), seed=11)
        net.links[0].set_loss(0.45)
        net.links[1].set_loss(0.45)
        runtime = SupervisedRuntime(net, config=SupervisorConfig(max_attempts=6))
        result = runtime.detect_blackhole(0)
        assert check_epoch_ledger(result.supervision) == []
        if not result.degraded:
            # Accepted verdicts under pure loss must never name a clean
            # link: every flagged edge really dropped something.
            verdict = result.verdict
            if verdict is not None and verdict.found:
                node, port = verdict.location
                edge = net.topology.port_edge(node, port)
                link = net.links[edge.edge_id]
                assert any(link.dropped.values())


class TestEpochLedger:
    def _outcome(self, attempts, ok=False, degraded=True,
                 reason="retries-exhausted"):
        return SupervisedOutcome(
            service="snapshot", root=0, ok=ok, degraded=degraded,
            reason=reason, attempts=attempts,
        )

    def test_double_accept_flagged(self):
        attempts = [
            EpochAttempt(epoch=1, injected_at=0.0, deadline=1.0, outcome=ACCEPTED),
            EpochAttempt(epoch=2, injected_at=1.0, deadline=1.0, outcome=ACCEPTED),
        ]
        problems = check_epoch_ledger(
            self._outcome(attempts, ok=True, degraded=False, reason="completed")
        )
        assert any("at-most-once" in p for p in problems)

    def test_unknown_outcome_flagged(self):
        attempts = [
            EpochAttempt(epoch=1, injected_at=0.0, deadline=1.0, outcome="???"),
        ]
        assert check_epoch_ledger(self._outcome(attempts))

    def test_neither_result_nor_degraded_flagged(self):
        outcome = self._outcome([], ok=False, degraded=False)
        assert check_epoch_ledger(outcome)

    def test_probe_incomplete_is_a_valid_outcome(self):
        attempts = [
            EpochAttempt(
                epoch=1, injected_at=0.0, deadline=1.0, outcome=PROBE_INCOMPLETE
            ),
            EpochAttempt(
                epoch=2, injected_at=1.0, deadline=1.0, outcome=DEGRADED_REPORT
            ),
        ]
        assert check_epoch_ledger(self._outcome(attempts)) == []


class TestStaleSquashing:
    def test_straggler_from_old_epoch_cannot_report(self):
        # Slow the far side of the ring so attempt 1's packet is still in
        # flight when the watchdog fires; the retry must squash it at the
        # origin rather than accept a stale report.
        net = Network(ring(6))
        for link in net.links:
            link.delay = 30.0
        config = SupervisorConfig(
            max_attempts=3, safety_factor=1.0, base_backoff=1.0
        )
        supervisor = TraversalSupervisor(net, SnapshotService(), config=config)
        # Shrink the deadline below the real traversal time.
        supervisor._deadline = lambda: 100.0
        outcome = supervisor.supervise(0)
        assert check_epoch_ledger(outcome) == []
        assert outcome.stale_squashed >= 1
