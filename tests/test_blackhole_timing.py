"""Timing of the smart-counter phases: why the paper's delay gap matters.

§3.3: "The controller sends the two packets with a time difference of twice
the maximum delay."  A sufficient gap keeps the verify traversal strictly
behind the probe traversal; an insufficient one lets the verify packet read
counters the probe phase is still building.
"""

from __future__ import annotations

import pytest

from repro.core.engine import make_engine
from repro.core.services.blackhole import (
    BlackholeService,
    SmartCounterBlackholeDetector,
)
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, line, ring


def detector_on(topology, blackhole_edge=None, mode="compiled"):
    net = Network(topology)
    if blackhole_edge is not None:
        net.links[blackhole_edge].set_blackhole()
    engine = make_engine(net, BlackholeService(), mode)
    return SmartCounterBlackholeDetector(engine), net


class TestSafeGap:
    def test_safe_gap_matches_sequential_healthy(self, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=6)
        sequential, _ = detector_on(topo, mode=engine_mode)
        timed, net = detector_on(topo, mode=engine_mode)
        verdict_seq = sequential.run(0)
        verdict_timed = timed.run(0, gap=timed.safe_gap(net))
        assert verdict_seq.found == verdict_timed.found is False

    @pytest.mark.parametrize("edge_id", [0, 3, 7])
    def test_safe_gap_matches_sequential_blackhole(self, edge_id, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=6)
        sequential, _ = detector_on(topo, edge_id, mode=engine_mode)
        timed, net = detector_on(topo, edge_id, mode=engine_mode)
        verdict_seq = sequential.run(0)
        verdict_timed = timed.run(0, gap=timed.safe_gap(net))
        assert verdict_timed.found
        assert verdict_timed.location == verdict_seq.location

    def test_safe_gap_bound_formula(self):
        topo = ring(6)
        net = Network(topo)
        net.links[0].delay = 5.0
        gap = SmartCounterBlackholeDetector.safe_gap(net)
        assert gap == (4 * 6 + 2) * 5.0 + 1.0


class TestUnsafeGap:
    def test_overlapping_phases_misreport(self):
        """With gap=0 the verify packet races the probe packet and reads
        counters that are still 0 or 1 — producing false reports on a
        perfectly healthy network.  This is exactly the failure the paper's
        delay gap exists to rule out."""
        topo = line(6)
        detector, net = detector_on(topo)  # no blackhole at all
        verdict = detector.run(0, gap=0.0)
        assert verdict.found  # false positive, deterministically

    def test_sequential_never_misreports_healthy(self, engine_mode):
        topo = line(6)
        detector, _net = detector_on(topo, mode=engine_mode)
        verdict = detector.run(0)
        assert not verdict.found
