"""Group table semantics: ALL, INDIRECT, fast failover, round-robin SELECT."""

from __future__ import annotations

import pytest

from repro.openflow.actions import GroupAction, Output, SetField
from repro.openflow.errors import GroupError
from repro.openflow.group import Bucket, Group, GroupTable, GroupType
from repro.openflow.packet import Packet


def make_table(live_ports=None):
    live = set(live_ports or [])
    return GroupTable(lambda port: port in live)


def run(table: GroupTable, group_id: int, packet=None):
    outputs = []
    table.execute(
        group_id,
        packet or Packet(),
        lambda port, pkt: outputs.append((port, pkt)),
        in_port=1,
    )
    return outputs


class TestAllGroup:
    def test_every_bucket_runs_on_a_clone(self):
        table = make_table()
        table.add(
            Group(
                1,
                GroupType.ALL,
                [
                    Bucket([SetField("x", 1), Output(1)]),
                    Bucket([SetField("x", 2), Output(2)]),
                ],
            )
        )
        packet = Packet()
        outputs = run(table, 1, packet)
        assert [(port, pkt.get("x")) for port, pkt in outputs] == [(1, 1), (2, 2)]
        # The original packet is untouched (buckets saw clones).
        assert packet.get("x") == 0


class TestIndirectGroup:
    def test_single_bucket(self):
        table = make_table()
        table.add(Group(1, GroupType.INDIRECT, [Bucket([Output(3)])]))
        assert [p for p, _ in run(table, 1)] == [3]

    def test_multiple_buckets_rejected(self):
        with pytest.raises(GroupError):
            Group(1, GroupType.INDIRECT, [Bucket([]), Bucket([])])

    def test_empty_indirect_is_noop(self):
        table = make_table()
        table.add(Group(1, GroupType.INDIRECT, []))
        assert run(table, 1) == []


class TestFastFailover:
    def _group(self):
        return Group(
            1,
            GroupType.FF,
            [
                Bucket([Output(1)], watch_port=1),
                Bucket([Output(2)], watch_port=2),
                Bucket([Output(9)], watch_port=None),  # unconditional
            ],
        )

    def test_first_live_bucket_wins(self):
        table = make_table(live_ports={1, 2})
        table.add(self._group())
        assert [p for p, _ in run(table, 1)] == [1]

    def test_failover_to_second(self):
        table = make_table(live_ports={2})
        table.add(self._group())
        assert [p for p, _ in run(table, 1)] == [2]

    def test_failover_to_unconditional(self):
        table = make_table(live_ports=set())
        table.add(self._group())
        assert [p for p, _ in run(table, 1)] == [9]

    def test_all_watched_down_no_terminal_drops(self):
        table = make_table(live_ports=set())
        table.add(
            Group(1, GroupType.FF, [Bucket([Output(1)], watch_port=1)])
        )
        assert run(table, 1) == []


class TestSelectRoundRobin:
    def test_cursor_advances_and_wraps(self):
        table = make_table()
        table.add(
            Group(
                1,
                GroupType.SELECT,
                [Bucket([SetField("v", j)]) for j in range(3)],
            )
        )
        seen = []
        for _ in range(7):
            packet = Packet()
            run(table, 1, packet)
            seen.append(packet.get("v"))
        assert seen == [0, 1, 2, 0, 1, 2, 0]

    def test_empty_select_rejected_at_execute(self):
        table = make_table()
        table.add(Group(1, GroupType.SELECT, []))
        with pytest.raises(GroupError):
            run(table, 1)


class TestChaining:
    def test_bucket_can_invoke_group(self):
        table = make_table()
        table.add(Group(2, GroupType.INDIRECT, [Bucket([Output(7)])]))
        table.add(Group(1, GroupType.INDIRECT, [Bucket([GroupAction(2)])]))
        assert [p for p, _ in run(table, 1)] == [7]

    def test_loop_detected(self):
        table = make_table()
        table.add(Group(1, GroupType.INDIRECT, [Bucket([GroupAction(1)])]))
        with pytest.raises(GroupError):
            run(table, 1)

    def test_mutual_loop_detected(self):
        table = make_table()
        table.add(Group(1, GroupType.INDIRECT, [Bucket([GroupAction(2)])]))
        table.add(Group(2, GroupType.INDIRECT, [Bucket([GroupAction(1)])]))
        with pytest.raises(GroupError):
            run(table, 1)


class TestTableManagement:
    def test_duplicate_id_rejected(self):
        table = make_table()
        table.add(Group(1, GroupType.ALL, []))
        with pytest.raises(GroupError):
            table.add(Group(1, GroupType.ALL, []))

    def test_unknown_id_rejected(self):
        with pytest.raises(GroupError):
            make_table().get(42)

    def test_contains_and_len(self):
        table = make_table()
        table.add(Group(5, GroupType.ALL, []))
        assert 5 in table
        assert 6 not in table
        assert len(table) == 1

    def test_packet_count(self):
        table = make_table()
        group = table.add(Group(1, GroupType.INDIRECT, [Bucket([])]))
        run(table, 1)
        run(table, 1)
        assert group.packet_count == 2
