"""Snapshot service: full topology reconstruction from the record stream."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import SmartSouthRuntime
from repro.core.services.snapshot import (
    SnapshotDecodeError,
    decode_snapshot,
    snapshot_record_count,
)
from repro.net.simulator import Network
from repro.net.topology import Topology, erdos_renyi, ring


def take_snapshot(topology, root=0, mode="interpreted", fail=()):
    net = Network(topology)
    for u, v in fail:
        net.fail_link(u, v)
    runtime = SmartSouthRuntime(net, mode=mode)
    return net, runtime.snapshot(root)


class TestReconstruction:
    def test_exact_reconstruction(self, zoo_topology, engine_mode):
        _net, snap = take_snapshot(zoo_topology, mode=engine_mode)
        assert snap.ok
        assert snap.nodes == set(zoo_topology.nodes())
        assert snap.links == zoo_topology.port_pair_set()

    def test_all_roots(self, engine_mode):
        topo = erdos_renyi(9, 0.35, seed=13)
        for root in topo.nodes():
            _net, snap = take_snapshot(topo, root=root, mode=engine_mode)
            assert snap.links == topo.port_pair_set(), f"root {root}"

    def test_with_failed_link(self, engine_mode):
        topo = ring(6)
        net, snap = take_snapshot(topo, fail=[(1, 2)], mode=engine_mode)
        assert snap.ok
        assert snap.links == net.live_port_pairs()
        assert snap.nodes == set(topo.nodes())

    def test_partitioned_network_snapshots_own_component(self, engine_mode):
        topo = ring(6)
        net, snap = take_snapshot(topo, fail=[(0, 1), (3, 4)], mode=engine_mode)
        assert snap.ok
        assert snap.nodes == {0, 5, 4}
        assert snap.links == {
            pair for pair in net.live_port_pairs()
            if all(endpoint[0] in {0, 4, 5} for endpoint in pair)
        }

    def test_single_node(self, engine_mode):
        _net, snap = take_snapshot(Topology(1), mode=engine_mode)
        assert snap.ok
        assert snap.nodes == {0}
        assert snap.links == set()

    def test_parallel_edges_distinguished(self, engine_mode):
        topo = Topology(2)
        topo.add_link(0, 1)
        topo.add_link(0, 1)
        _net, snap = take_snapshot(topo, mode=engine_mode)
        assert len(snap.links) == 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 22), st.integers(0, 1000))
    def test_random_graph_property(self, n, seed):
        topo = erdos_renyi(n, 0.3, seed=seed)
        _net, snap = take_snapshot(topo)
        assert snap.nodes == set(topo.nodes())
        assert snap.links == topo.port_pair_set()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 14), st.integers(0, 300), st.integers(0, 3))
    def test_random_failures_property(self, n, seed, kills):
        topo = erdos_renyi(n, 0.35, seed=seed)
        net = Network(topo)
        for edge_id in range(min(kills, topo.num_edges)):
            net.links[edge_id].up = False
        runtime = SmartSouthRuntime(net)
        snap = runtime.snapshot(0)
        assert snap.ok
        # Snapshot sees exactly the live links inside the root's component.
        assert snap.links <= net.live_port_pairs()
        for pair in net.live_port_pairs():
            nodes = {endpoint[0] for endpoint in pair}
            if nodes <= snap.nodes:
                assert pair in snap.links


class TestRecordStream:
    def test_record_count_formula(self, engine_mode):
        topo = erdos_renyi(12, 0.3, seed=4)
        _net, snap = take_snapshot(topo, mode=engine_mode)
        _node, packet = snap.result.reports[-1]
        assert len(packet.stack) == snapshot_record_count(
            topo.num_nodes, topo.num_edges
        )

    def test_stream_is_theta_of_edges(self):
        small = erdos_renyi(10, 0.25, seed=1)
        big = erdos_renyi(40, 0.25, seed=1)
        _n1, snap_small = take_snapshot(small)
        _n2, snap_big = take_snapshot(big)
        records_small = len(snap_small.result.reports[-1][1].stack)
        records_big = len(snap_big.result.reports[-1][1].stack)
        assert records_small <= 2 * small.num_edges + small.num_nodes
        assert records_big <= 2 * big.num_edges + big.num_nodes

    def test_out_band_is_two_messages(self, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=2)
        _net, snap = take_snapshot(topo, mode=engine_mode)
        assert snap.result.out_band_messages == 2  # trigger + response


class TestDecoder:
    def test_decode_from_record_list(self):
        records = [
            ("visit", 0, 0),
            ("out", 1),
            ("visit", 1, 1),
            ("ret",),
        ]
        nodes, links = decode_snapshot(records)
        assert nodes == {0, 1}
        assert links == {frozenset(((0, 1), (1, 1)))}

    def test_visit_without_out_rejected(self):
        with pytest.raises(SnapshotDecodeError):
            decode_snapshot([("visit", 0, 0), ("visit", 1, 1)])

    def test_ret_with_empty_path_rejected(self):
        with pytest.raises(SnapshotDecodeError):
            decode_snapshot([("visit", 0, 0), ("ret",)])

    def test_unknown_record_rejected(self):
        with pytest.raises(SnapshotDecodeError):
            decode_snapshot([("visit", 0, 0), ("garbage",)])

    def test_empty_stream(self):
        nodes, links = decode_snapshot([])
        assert nodes == set() and links == set()

    def test_bounce_at_known_node(self):
        records = [
            ("visit", 0, 0),
            ("out", 1),
            ("visit", 1, 1),  # descend to 1
            ("out", 2),
            ("visit", 0, 2),  # bounce at known node 0 -> edge recorded
            ("ret",),
        ]
        nodes, links = decode_snapshot(records)
        assert links == {
            frozenset(((0, 1), (1, 1))),
            frozenset(((1, 2), (0, 2))),
        }
        assert nodes == {0, 1}
