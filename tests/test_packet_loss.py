"""Packet-loss monitoring with multi-prime smart counters."""

from __future__ import annotations

import pytest

from repro.core.runtime import SmartSouthRuntime
from repro.core.services.blackhole import LossCheckService, PacketLossMonitor
from repro.net.link import Direction
from repro.net.simulator import Network
from repro.net.topology import grid, line, ring


def make_monitor(topology, moduli=(5, 7), seed=0):
    net = Network(topology, seed=seed)
    runtime = SmartSouthRuntime(net)
    return runtime.loss_monitor(moduli), net


class TestHealthyNetwork:
    def test_no_reports_without_traffic(self):
        monitor, _net = make_monitor(ring(5))
        report = monitor.check(0)
        assert report.completed
        assert report.flagged == set()

    def test_no_reports_with_lossless_traffic(self):
        monitor, _net = make_monitor(grid(3, 3))
        monitor.send_traffic(packets_per_direction=9)
        report = monitor.check(0)
        assert report.completed
        assert report.flagged == set()

    def test_repeated_checks_stay_clean(self):
        monitor, _net = make_monitor(ring(4))
        monitor.send_traffic(3)
        first = monitor.check(0)
        second = monitor.check(0)
        assert first.flagged == set()
        assert second.flagged == set()


class TestLossDetection:
    def test_drop_all_link_flagged(self):
        monitor, net = make_monitor(line(4))
        net.links[1].set_blackhole(Direction.A_TO_B)
        monitor.send_traffic(4)
        net.links[1].clear()  # heal before the check so the check survives
        report = monitor.check(0)
        edge = net.topology.edge(1)
        assert (edge.b.node, edge.b.port) in report.flagged

    def test_flags_match_ground_truth(self):
        monitor, net = make_monitor(grid(3, 3), seed=3)
        net.links[2].set_loss(0.5)
        net.links[7].set_loss(0.5)
        monitor.send_traffic(11)
        for link in net.links:
            link.clear()
        report = monitor.check(0)
        assert report.flagged == monitor.detectable_losses()

    def test_loss_multiple_of_all_moduli_is_missed(self):
        # Drop exactly 35 packets (= 5 x 7): invisible to mod-5 and mod-7
        # counters — the paper's false-negative case.
        monitor, net = make_monitor(line(3), moduli=(5, 7))
        link = net.links[0]
        link.set_blackhole(Direction.A_TO_B)
        monitor.send_traffic(35)
        link.clear()
        report = monitor.check(0)
        assert monitor.detectable_losses() == set()
        assert report.flagged == set()

    def test_extra_prime_catches_the_blind_spot(self):
        monitor, net = make_monitor(line(3), moduli=(5, 7, 11))
        link = net.links[0]
        link.set_blackhole(Direction.A_TO_B)
        monitor.send_traffic(35)
        link.clear()
        report = monitor.check(0)
        edge = net.topology.edge(0)
        assert (edge.b.node, edge.b.port) in report.flagged

    def test_single_lost_packet_detected(self):
        monitor, net = make_monitor(ring(4))
        link = net.links[2]
        link.set_blackhole(Direction.B_TO_A)
        # Send exactly one packet on the lossy direction, lose it.
        monitor.send_traffic(1)
        link.clear()
        report = monitor.check(0)
        assert report.flagged == monitor.detectable_losses()
        assert len(report.flagged) == 1


class TestConfig:
    def test_bad_moduli_rejected(self):
        with pytest.raises(ValueError):
            LossCheckService(moduli=())
        with pytest.raises(ValueError):
            LossCheckService(moduli=(1,))

    def test_monitor_requires_losscheck_engine(self):
        from repro.core.engine import make_engine
        from repro.core.services.base import PlainTraversalService

        net = Network(ring(4))
        engine = make_engine(net, PlainTraversalService(), "interpreted")
        with pytest.raises(TypeError):
            PacketLossMonitor(engine)

    def test_losscheck_not_compilable(self):
        from repro.core.compiler import compile_service

        net = Network(ring(4))
        with pytest.raises(NotImplementedError):
            compile_service(net, 0, LossCheckService())
