"""Fine-grained unit tests of the Table 1 hooks, in isolation.

The integration suites exercise the hooks through whole traversals; these
tests pin each hook's behaviour on a synthetic :class:`HookContext`, making
the reconstructed Table 1 explicit and reviewable against the paper.
"""

from __future__ import annotations


from repro.core.fields import (
    FIELD_FIRST_PORT,
    FIELD_GID,
    FIELD_OPT_ID,
    FIELD_OPT_VAL,
    FIELD_REPEAT,
    FIELD_START,
    FIELD_TO_PARENT,
    FIELD_TTL,
    cur_field,
    par_field,
)
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import HookContext, SmartCounterBank
from repro.core.services.blackhole import (
    BH_FOUND,
    FIELD_BH,
    FIELD_REPORT_PORT,
    BlackholeService,
    BlackholeTtlService,
)
from repro.core.services.critical import (
    CRITICAL,
    FIELD_CRITICAL,
    CriticalNodeService,
)
from repro.core.services.snapshot import SnapshotService
from repro.openflow.packet import CONTROLLER_PORT, LOCAL_PORT, Packet


def ctx_for(node=1, in_port=1, deg=3, fields=None, live=None):
    packet = Packet(fields=dict(fields or {}))
    return HookContext(
        node=node,
        in_port=in_port,
        packet=packet,
        deg=deg,
        live=live or (lambda port: True),
        counters=SmartCounterBank(),
    )


class TestSnapshotHooks:
    def test_first_visit_records_node_and_inport(self):
        ctx = ctx_for(node=4, in_port=2)
        SnapshotService().first_visit(ctx)
        assert ctx.packet.stack == [("visit", 4, 2)]

    def test_bounce_known_pops(self):
        service = SnapshotService()
        # in < cur: the bounce arrives on an already-swept port.
        ctx = ctx_for(node=4, in_port=1, fields={cur_field(4): 3, par_field(4): 2})
        ctx.packet.push(("out", 9))
        service.visit_not_from_cur(ctx)
        assert ctx.packet.stack == []

    def test_bounce_finished_node_pops(self):
        service = SnapshotService()
        # cur == par: the node already returned to its parent.
        ctx = ctx_for(node=4, in_port=3, fields={cur_field(4): 2, par_field(4): 2})
        ctx.packet.push(("out", 9))
        service.visit_not_from_cur(ctx)
        assert ctx.packet.stack == []

    def test_bounce_new_edge_pushes(self):
        service = SnapshotService()
        # in > cur and node mid-sweep: edge not yet recorded.
        ctx = ctx_for(node=4, in_port=3, fields={cur_field(4): 1, par_field(4): 2})
        service.visit_not_from_cur(ctx)
        assert ctx.packet.stack == [("visit", 4, 3)]

    def test_root_first_send_pushes_self_record(self):
        service = SnapshotService()
        ctx = ctx_for(node=7)
        ctx.out = 2
        service.send_next_neighbor(ctx)
        assert ctx.packet.stack == [("visit", 7, 0), ("out", 2)]

    def test_send_parent_pushes_ret(self):
        service = SnapshotService()
        ctx = ctx_for(node=7, fields={par_field(7): 2})
        ctx.out = 2
        service.send_parent(ctx)
        assert ctx.packet.stack == [("ret",)]

    def test_root_finish_does_not_push_ret(self):
        service = SnapshotService()
        ctx = ctx_for(node=7)
        ctx.out = 0
        service.send_parent(ctx)
        assert ctx.packet.stack == []


class TestPriocastHooks:
    def _service(self):
        return PriocastService({1: {1: 50, 2: 30}})

    def test_bid_updates_when_higher(self):
        ctx = ctx_for(node=1, fields={FIELD_GID: 1, FIELD_START: 1,
                                      FIELD_OPT_VAL: 30})
        self._service().first_visit(ctx)
        assert ctx.packet.get(FIELD_OPT_VAL) == 50
        assert ctx.packet.get(FIELD_OPT_ID) == 2  # node + 1

    def test_bid_keeps_when_lower(self):
        ctx = ctx_for(node=2, fields={FIELD_GID: 1, FIELD_START: 1,
                                      FIELD_OPT_VAL: 50, FIELD_OPT_ID: 2})
        self._service().first_visit(ctx)
        assert ctx.packet.get(FIELD_OPT_VAL) == 50
        assert ctx.packet.get(FIELD_OPT_ID) == 2

    def test_non_member_never_bids(self):
        ctx = ctx_for(node=5, fields={FIELD_GID: 1, FIELD_START: 1})
        self._service().first_visit(ctx)
        assert ctx.packet.get(FIELD_OPT_ID) == 0

    def test_phase2_winner_delivers_locally(self):
        ctx = ctx_for(node=1, in_port=2, fields={
            FIELD_START: 2, FIELD_OPT_ID: 2, par_field(1): 2, cur_field(1): 2,
        })
        self._service().visit_from_cur(ctx)
        assert ctx.out == LOCAL_PORT and ctx.skip_sweep

    def test_phase2_loser_restarts_sweep(self):
        ctx = ctx_for(node=5, in_port=2, fields={
            FIELD_START: 2, FIELD_OPT_ID: 2, par_field(5): 2, cur_field(5): 2,
        })
        self._service().visit_from_cur(ctx)
        assert ctx.out == 1 and not ctx.skip_sweep

    def test_finish_phase1_restarts_via_firstport(self):
        service = self._service()
        ctx = ctx_for(node=9, fields={
            FIELD_START: 1, FIELD_OPT_ID: 2, FIELD_FIRST_PORT: 3,
        })
        ctx.out = 0
        service.finish(ctx)
        assert ctx.packet.get(FIELD_START) == 2
        assert ctx.out == 3
        assert ctx.cur == 3

    def test_finish_phase1_root_wins(self):
        service = self._service()
        ctx = ctx_for(node=1, fields={FIELD_START: 1, FIELD_OPT_ID: 2})
        ctx.out = 0
        service.finish(ctx)
        assert ctx.out == LOCAL_PORT

    def test_finish_no_receiver_drops(self):
        service = self._service()
        ctx = ctx_for(node=9, fields={FIELD_START: 1})
        ctx.out = 0
        service.finish(ctx)
        assert ctx.out == 0


class TestCriticalHooks:
    def test_root_detects_second_child(self):
        service = CriticalNodeService()
        ctx = ctx_for(node=0, in_port=3, fields={
            cur_field(0): 3, FIELD_TO_PARENT: 1, FIELD_FIRST_PORT: 1,
        })
        service.visit_from_cur(ctx)
        assert ctx.out == CONTROLLER_PORT and ctx.skip_sweep
        assert ctx.packet.get(FIELD_CRITICAL) == CRITICAL

    def test_firstport_return_is_not_critical(self):
        service = CriticalNodeService()
        ctx = ctx_for(node=0, in_port=1, fields={
            cur_field(0): 1, FIELD_TO_PARENT: 1, FIELD_FIRST_PORT: 1,
        })
        service.visit_from_cur(ctx)
        assert ctx.out == 0 and not ctx.skip_sweep
        assert ctx.packet.get(FIELD_TO_PARENT) == 0  # cleared by the root

    def test_non_root_does_not_inspect(self):
        service = CriticalNodeService()
        ctx = ctx_for(node=5, in_port=3, fields={
            par_field(5): 2, cur_field(5): 3, FIELD_TO_PARENT: 1,
            FIELD_FIRST_PORT: 1,
        })
        service.visit_from_cur(ctx)
        assert ctx.out == 0 and not ctx.skip_sweep

    def test_send_clears_and_send_parent_sets(self):
        service = CriticalNodeService()
        ctx = ctx_for(node=5, fields={FIELD_TO_PARENT: 1, par_field(5): 2})
        ctx.out = 3
        service.send_next_neighbor(ctx)
        assert ctx.packet.get(FIELD_TO_PARENT) == 0
        ctx.out = 2
        service.send_parent(ctx)
        assert ctx.packet.get(FIELD_TO_PARENT) == 1


class TestBlackholeHooks:
    def test_first_visit_probe_echoes(self):
        service = BlackholeService()
        ctx = ctx_for(node=3, in_port=2, fields={FIELD_REPEAT: 3,
                                                 par_field(3): 2})
        service.first_visit(ctx)
        assert ctx.out == 2 and ctx.skip_sweep
        assert ctx.packet.get(FIELD_REPEAT) == 2
        assert ctx.counters.peek("C2") == 1

    def test_parent_returns_echo(self):
        service = BlackholeService()
        ctx = ctx_for(node=1, in_port=1, fields={FIELD_REPEAT: 2,
                                                 cur_field(1): 1})
        service.visit_from_cur(ctx)
        assert ctx.out == 1 and ctx.skip_sweep
        assert ctx.packet.get(FIELD_REPEAT) == 1

    def test_echo_back_resumes(self):
        service = BlackholeService()
        ctx = ctx_for(node=3, in_port=2, fields={FIELD_REPEAT: 1})
        ctx.out = 1
        service.first_visit(ctx)
        assert not ctx.skip_sweep
        assert ctx.packet.get(FIELD_REPEAT) == 3

    def test_verify_fetch_of_one_reports(self):
        service = BlackholeService()
        ctx = ctx_for(node=3, fields={FIELD_REPEAT: 0})
        ctx.counters.fetch_inc("C2", service.counter_modulus)  # counter -> 1
        ctx.out = 2
        service.send_next_neighbor(ctx)
        assert ctx.packet.get(FIELD_BH) == BH_FOUND
        assert ctx.packet.get(FIELD_REPORT_PORT) == 2
        assert len(ctx.extra_outputs) == 1
        assert ctx.extra_outputs[0].port == CONTROLLER_PORT

    def test_verify_healthy_fetch_silent(self):
        service = BlackholeService()
        ctx = ctx_for(node=3, fields={FIELD_REPEAT: 0})
        for _ in range(2):
            ctx.counters.fetch_inc("C2", service.counter_modulus)
        ctx.out = 2
        service.send_next_neighbor(ctx)
        assert ctx.extra_outputs == []

    def test_arrival_counts_receive(self):
        service = BlackholeService()
        ctx = ctx_for(node=3, in_port=2, fields={FIELD_REPEAT: 3})
        assert service.on_arrival(ctx) is None
        assert ctx.counters.peek("C2") == 1

    def test_trigger_arrival_not_counted(self):
        service = BlackholeService()
        ctx = ctx_for(node=3, in_port=LOCAL_PORT, fields={FIELD_REPEAT: 3})
        service.on_arrival(ctx)
        assert ctx.counters.names() == []


class TestTtlHooks:
    def test_expired_ttl_reports(self):
        service = BlackholeTtlService()
        ctx = ctx_for(node=3, in_port=2, fields={FIELD_TTL: 0})
        assert service.on_arrival(ctx) == CONTROLLER_PORT
        assert ctx.packet.get(FIELD_BH) == BH_FOUND
        assert ctx.packet.get("report_in") == 2

    def test_live_ttl_decrements(self):
        service = BlackholeTtlService()
        ctx = ctx_for(fields={FIELD_TTL: 5})
        assert service.on_arrival(ctx) is None
        assert ctx.packet.get(FIELD_TTL) == 4


class TestAnycastHooks:
    def test_member_consumes(self):
        service = AnycastService({1: {4}})
        ctx = ctx_for(node=4, fields={FIELD_GID: 1})
        assert service.pre_dispatch(ctx) == LOCAL_PORT

    def test_non_member_passes(self):
        service = AnycastService({1: {4}})
        ctx = ctx_for(node=5, fields={FIELD_GID: 1})
        assert service.pre_dispatch(ctx) is None

    def test_zero_gid_never_matches(self):
        service = AnycastService({1: {4}})
        ctx = ctx_for(node=4)  # gid absent (= 0)
        assert service.pre_dispatch(ctx) is None
