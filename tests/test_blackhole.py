"""Blackhole detection: both algorithms, all edges, healthy networks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import (
    dfs_message_count,
    echo_message_count,
    ttl_search_probes,
)
from repro.core.runtime import SmartSouthRuntime
from repro.net.link import Direction
from repro.net.simulator import Network
from repro.net.topology import erdos_renyi, grid, line, ring


def smart_verdict(topology, blackhole_edge=None, root=0, mode="interpreted"):
    net = Network(topology)
    if blackhole_edge is not None:
        net.links[blackhole_edge].set_blackhole()
    runtime = SmartSouthRuntime(net, mode=mode)
    return runtime.detect_blackhole_smart(root), net


def ttl_verdict(topology, blackhole_edge=None, root=0, mode="interpreted"):
    net = Network(topology)
    if blackhole_edge is not None:
        net.links[blackhole_edge].set_blackhole()
    runtime = SmartSouthRuntime(net, mode=mode)
    return runtime.detect_blackhole_ttl(root), net


def assert_located(verdict, topology, edge_id):
    """The verdict must name the blackholed edge (either side)."""
    assert verdict.found
    edge = topology.edge(edge_id)
    candidates = {
        (edge.a.node, edge.a.port),
        (edge.b.node, edge.b.port),
    }
    assert verdict.location in candidates
    if verdict.far_end is not None:
        assert verdict.far_end in candidates
        assert verdict.far_end != verdict.location


class TestSmartCounterAlgorithm:
    def test_healthy_network_reports_none(self, engine_mode):
        verdict, _ = smart_verdict(ring(6), mode=engine_mode)
        assert not verdict.found
        assert verdict.out_band_messages == 3  # 2 triggers + clean verdict

    @pytest.mark.parametrize("edge_id", range(6))
    def test_every_edge_of_a_ring(self, edge_id, engine_mode):
        topo = ring(6)
        verdict, _ = smart_verdict(topo, edge_id, mode=engine_mode)
        assert_located(verdict, topo, edge_id)

    def test_out_band_is_three_messages(self, engine_mode):
        topo = grid(3, 3)
        verdict, _ = smart_verdict(topo, 5, mode=engine_mode)
        assert verdict.out_band_messages == 3

    def test_in_band_bound(self, engine_mode):
        topo = erdos_renyi(10, 0.3, seed=7)
        verdict, _ = smart_verdict(topo, mode=engine_mode)
        bound = echo_message_count(10, topo.num_edges) + dfs_message_count(
            10, topo.num_edges
        )
        assert verdict.in_band_messages == bound  # healthy: both phases full

    def test_probe_phase_echo_count_exact(self, engine_mode):
        topo = erdos_renyi(9, 0.35, seed=9)
        net = Network(topo)
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        engine = runtime.engine_for(
            __import__("repro.core.services.blackhole", fromlist=["BlackholeService"]).BlackholeService()
        )
        from repro.core.fields import FIELD_REPEAT

        result = engine.trigger(0, fields={FIELD_REPEAT: 3})
        assert result.in_band_messages == echo_message_count(9, topo.num_edges)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 12), st.integers(0, 300), st.data())
    def test_random_graph_random_edge(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        edge_id = data.draw(st.integers(0, topo.num_edges - 1))
        verdict, _ = smart_verdict(topo, edge_id)
        assert_located(verdict, topo, edge_id)

    def test_directional_blackhole_still_names_the_link(self, engine_mode):
        topo = line(5)
        net = Network(topo)
        net.links[2].set_blackhole(Direction.B_TO_A)  # only 3->2 direction
        runtime = SmartSouthRuntime(net, mode=engine_mode)
        verdict = runtime.detect_blackhole_smart(0)
        assert_located(verdict, topo, 2)

    def test_counters_modulo_do_not_confuse(self, engine_mode):
        # Healthy counters land at 2/3 per direction, well inside modulus 8.
        topo = grid(3, 4)
        verdict, _ = smart_verdict(topo, mode=engine_mode)
        assert not verdict.found


class TestTtlAlgorithm:
    def test_healthy_network_reports_none(self, engine_mode):
        verdict, _ = ttl_verdict(ring(6), mode=engine_mode)
        assert not verdict.found
        assert verdict.probes == 1  # the sanity probe completes

    @pytest.mark.parametrize("edge_id", range(6))
    def test_every_edge_of_a_ring(self, edge_id, engine_mode):
        topo = ring(6)
        verdict, _ = ttl_verdict(topo, edge_id, mode=engine_mode)
        assert_located(verdict, topo, edge_id)

    def test_probe_budget_is_logarithmic(self, engine_mode):
        topo = erdos_renyi(12, 0.3, seed=4)
        verdict, _ = ttl_verdict(topo, 3, mode=engine_mode)
        assert verdict.found
        assert verdict.probes <= ttl_search_probes(topo.num_edges)

    def test_out_band_bound(self, engine_mode):
        topo = erdos_renyi(12, 0.3, seed=4)
        verdict, _ = ttl_verdict(topo, 3, mode=engine_mode)
        # Each probe costs one packet-out and at most one packet-in.
        assert verdict.out_band_messages <= 2 * verdict.probes

    @settings(max_examples=15, deadline=None)
    @given(st.integers(4, 10), st.integers(0, 200), st.data())
    def test_random_graph_random_edge(self, n, seed, data):
        topo = erdos_renyi(n, 0.3, seed=seed)
        edge_id = data.draw(st.integers(0, topo.num_edges - 1))
        verdict, _ = ttl_verdict(topo, edge_id)
        assert_located(verdict, topo, edge_id)

    def test_blackhole_on_first_hop(self, engine_mode):
        topo = line(4)
        verdict, _ = ttl_verdict(topo, 0, mode=engine_mode)
        assert_located(verdict, topo, 0)

    def test_blackhole_on_last_traversed_edge(self, engine_mode):
        topo = line(4)
        verdict, _ = ttl_verdict(topo, 2, mode=engine_mode)
        assert_located(verdict, topo, 2)


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("edge_id", [0, 2, 5, 8])
    def test_same_link_named(self, edge_id, engine_mode):
        topo = grid(3, 3)
        smart, _ = smart_verdict(topo, edge_id, mode=engine_mode)
        ttl, _ = ttl_verdict(topo, edge_id, mode=engine_mode)
        edge = topo.edge(edge_id)
        link = frozenset(
            ((edge.a.node, edge.a.port), (edge.b.node, edge.b.port))
        )
        assert smart.found and ttl.found
        assert smart.location in link
        assert ttl.location in link

    def test_smart_uses_fewer_out_band_messages(self, engine_mode):
        topo = erdos_renyi(12, 0.3, seed=1)
        smart, _ = smart_verdict(topo, 4, mode=engine_mode)
        ttl, _ = ttl_verdict(topo, 4, mode=engine_mode)
        assert smart.out_band_messages < ttl.out_band_messages
