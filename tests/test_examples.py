"""Every example script must run to completion and tell the truth."""

from __future__ import annotations

import importlib.util
import io
import pathlib
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def run_example(path: pathlib.Path) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[f"example_{path.stem}"] = module
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "inband_controller_recovery",
        "blackhole_hunt",
        "network_audit",
        "service_chain",
        "monitoring_dashboard",
        "custom_service",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    output = run_example(path)
    assert output.strip(), f"{path.stem} printed nothing"
    lowered = output.lower()
    assert "false" not in lowered.replace("completed: false", ""), (
        f"{path.stem} printed a failed check:\n{output}"
    )


class TestExampleClaims:
    def test_quickstart_reconstructs_exactly(self):
        output = run_example(EXAMPLES[[p.stem for p in EXAMPLES].index("quickstart")])
        assert "exact reconstruction: True" in output
        assert "3 out-of-band messages" in output

    def test_recovery_reaches_backup(self):
        path = next(p for p in EXAMPLES if p.stem == "inband_controller_recovery")
        output = run_example(path)
        assert "(backup: True)" in output
        assert "0 control messages" in output

    def test_blackhole_hunt_all_methods_agree(self):
        path = next(p for p in EXAMPLES if p.stem == "blackhole_hunt")
        output = run_example(path)
        assert output.count("located: (") == 2
        assert "matches counter-visible ground truth: True" in output

    def test_dashboard_fully_inband(self):
        path = next(p for p in EXAMPLES if p.stem == "monitoring_dashboard")
        output = run_example(path)
        assert "management messages used: 0" in output

    def test_audit_detects_partition(self):
        path = next(p for p in EXAMPLES if p.stem == "network_audit")
        output = run_example(path)
        assert "partition confirmed" in output
        assert "fabric stays connected" in output
