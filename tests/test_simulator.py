"""Discrete-event simulator, link state, traces."""

from __future__ import annotations

import pytest

from repro.net.link import Direction, Link
from repro.net.simulator import Network, SimulationLimitError, Simulator
from repro.net.topology import Topology, line, ring
from repro.net.trace import EventKind, Trace, TraceEvent
from repro.openflow.packet import (
    CONTROLLER_PORT,
    LOCAL_PORT,
    Packet,
    reset_packet_ids,
)
from repro.openflow.switch import PacketOut


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_run_until(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(5.0, lambda: order.append(2))
        sim.run(until=2.0)
        assert order == [1]
        assert sim.pending == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)

    def test_event_budget(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationLimitError):
            sim.run(max_events=100)


def echo_handler(packet: Packet, in_port: int) -> list[PacketOut]:
    """Bounce everything back where it came from."""
    return [PacketOut(in_port, packet)]


def sink_handler(packet: Packet, in_port: int) -> list[PacketOut]:
    return []


class TestNetworkMotion:
    def _two_nodes(self) -> Network:
        topo = line(2)
        net = Network(topo)
        return net

    def test_hop_recorded(self):
        net = self._two_nodes()
        net.set_handler(0, lambda p, i: [PacketOut(1, p)])
        net.set_handler(1, sink_handler)
        net.inject(0, Packet())
        net.run()
        assert net.trace.hop_sequence() == [(0, 1, 1, 1)]
        assert net.trace.count(EventKind.PIPELINE_DROP) == 1

    def test_failed_link_is_dead_port(self):
        net = self._two_nodes()
        net.set_handler(0, lambda p, i: [PacketOut(1, p)])
        net.set_handler(1, sink_handler)
        net.fail_link(0, 1)
        net.inject(0, Packet())
        net.run()
        assert net.trace.count(EventKind.DEAD_PORT) == 1
        assert net.trace.in_band_messages == 0

    def test_blackhole_counts_as_in_band_drop(self):
        net = self._two_nodes()
        net.set_handler(0, lambda p, i: [PacketOut(1, p)])
        net.set_handler(1, sink_handler)
        net.link_between(0, 1).set_blackhole()
        net.inject(0, Packet())
        net.run()
        assert net.trace.count(EventKind.DROP) == 1
        assert net.trace.in_band_messages == 1  # the send was attempted

    def test_directional_blackhole(self):
        net = self._two_nodes()
        link = net.link_between(0, 1)
        link.set_blackhole(Direction.B_TO_A)
        net.set_handler(0, lambda p, i: [PacketOut(1, p)])
        net.set_handler(1, echo_handler)
        net.inject(0, Packet())
        net.run()
        # Forward crossing succeeds, echo back is swallowed.
        assert net.trace.count(EventKind.HOP) == 1
        assert net.trace.count(EventKind.DROP) == 1

    def test_probabilistic_loss_is_seeded(self):
        def run_once(seed: int) -> int:
            net = Network(line(2), seed=seed)
            net.link_between(0, 1).set_loss(0.5)
            net.set_handler(0, lambda p, i: [PacketOut(1, p)])
            net.set_handler(1, sink_handler)
            for _ in range(50):
                net.inject(0, Packet())
            net.run()
            return net.trace.count(EventKind.DROP)

        assert run_once(7) == run_once(7)
        assert 5 < run_once(7) < 45  # not degenerate

    def test_controller_sink(self):
        net = self._two_nodes()
        seen = []
        net.set_controller_sink(lambda node, pkt: seen.append(node))
        net.set_handler(0, lambda p, i: [PacketOut(CONTROLLER_PORT, p)])
        net.inject(0, Packet())
        net.run()
        assert seen == [0]
        assert net.trace.count(EventKind.PACKET_IN) == 1

    def test_delivery_sink(self):
        net = self._two_nodes()
        seen = []
        net.set_delivery_sink(lambda node, pkt: seen.append(node))
        net.set_handler(0, lambda p, i: [PacketOut(LOCAL_PORT, p)])
        net.inject(0, Packet())
        net.run()
        assert seen == [0]
        assert net.trace.deliveries == 1

    def test_packet_out_accounting(self):
        net = self._two_nodes()
        net.set_handler(0, sink_handler)
        net.inject(0, Packet(), from_controller=True)
        net.run()
        assert net.trace.count(EventKind.PACKET_OUT) == 1
        assert net.trace.out_band_messages == 1

    def test_transmit_bypasses_pipeline(self):
        net = self._two_nodes()
        arrived = []
        net.set_handler(0, lambda p, i: (_ for _ in ()).throw(AssertionError))
        net.set_handler(1, lambda p, i: arrived.append(i) or [])
        net.transmit(0, 1, Packet())
        net.run()
        assert arrived == [1]

    def test_missing_handler_raises(self):
        net = self._two_nodes()
        net.inject(0, Packet())
        with pytest.raises(RuntimeError):
            net.run()

    def test_link_delay_ordering(self):
        topo = Topology(3)
        topo.add_link(0, 1)
        topo.add_link(0, 2)
        net = Network(topo)
        net.links[0].delay = 5.0
        net.links[1].delay = 1.0
        order = []
        net.set_handler(0, lambda p, i: [PacketOut(1, p), PacketOut(2, p.copy())])
        net.set_handler(1, lambda p, i: order.append(1) or [])
        net.set_handler(2, lambda p, i: order.append(2) or [])
        net.inject(0, Packet())
        net.run()
        assert order == [2, 1]

    def test_output_to_unused_port_is_dead(self):
        net = self._two_nodes()
        net.set_handler(0, lambda p, i: [PacketOut(5, p)])
        net.inject(0, Packet())
        net.run()
        assert net.trace.count(EventKind.DEAD_PORT) == 1

    def test_live_port_pairs_tracks_failures(self):
        topo = ring(4)
        net = Network(topo)
        full = net.live_port_pairs()
        assert len(full) == 4
        net.fail_link(0, 1)
        assert len(net.live_port_pairs()) == 3


class TestEventBudget:
    """``max_events`` counts every arrival and timer identically in both
    drain modes — a batched run of *n* arrivals consumes *n* of the budget,
    and the limit error fires at exactly the same packet."""

    def _spin(self, batch: bool, max_events: int) -> Network:
        """Ring of forwarders with several concurrent packets: every node
        bounces each arrival out port 1 forever, so the run only ends when
        the event budget does."""
        reset_packet_ids()
        net = Network(ring(3), batch=batch)

        def forward_batch(items, deliver):
            for index, (packet, in_port) in enumerate(items):
                deliver(index, [(1, packet)])

        for node in net.topology.nodes():
            net.set_handler(node, lambda p, i: [PacketOut(1, p)])
            if batch:
                net.set_batch_handler(node, forward_batch)
        for _ in range(6):
            net.inject(0, Packet())
        with pytest.raises(SimulationLimitError):
            net.run(max_events=max_events)
        return net

    def test_limit_fires_identically_across_modes(self):
        scalar = self._spin(batch=False, max_events=40)
        batched = self._spin(batch=True, max_events=40)
        # Byte-identical traces: same packets processed, same hop order,
        # same point of interruption.
        assert scalar.trace.to_jsonl() == batched.trace.to_jsonl()
        assert scalar.trace.count(EventKind.HOP) == batched.trace.count(
            EventKind.HOP
        )

    def test_budget_counts_arrivals_not_batches(self):
        # 6 same-time arrivals form one batch; if the batch consumed one
        # budget unit instead of six, this run would survive max_events=6.
        reset_packet_ids()
        net = Network(ring(3), batch=True)

        def forward_batch(items, deliver):
            for index, (packet, in_port) in enumerate(items):
                deliver(index, [(1, packet)])

        for node in net.topology.nodes():
            net.set_handler(node, lambda p, i: [PacketOut(1, p)])
            net.set_batch_handler(node, forward_batch)
        for _ in range(6):
            net.inject(0, Packet())
        with pytest.raises(SimulationLimitError):
            net.run(max_events=6)

    def test_budget_counts_timers_in_batch_mode(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        with pytest.raises(SimulationLimitError):
            sim.run(max_events=100, batch=True)


class TestLink:
    def _link(self) -> Link:
        topo = line(2)
        return Link(next(topo.edges()))

    def test_direction_from(self):
        link = self._link()
        assert link.direction_from(0) is Direction.A_TO_B
        assert link.direction_from(1) is Direction.B_TO_A
        with pytest.raises(ValueError):
            link.direction_from(9)

    def test_blackhole_and_clear(self):
        link = self._link()
        link.set_blackhole()
        assert link.is_blackhole()
        link.clear()
        assert not link.is_blackhole()
        assert link.up

    def test_bad_loss_probability(self):
        with pytest.raises(ValueError):
            self._link().set_loss(1.5)

    def test_down_link_is_not_blackhole(self):
        link = self._link()
        link.set_blackhole()
        link.up = False
        assert not link.is_blackhole()

    def test_flipped(self):
        assert Direction.A_TO_B.flipped() is Direction.B_TO_A
        assert Direction.B_TO_A.flipped() is Direction.A_TO_B


class TestTrace:
    def test_summary_keys(self):
        trace = Trace()
        trace.record(TraceEvent(0.0, EventKind.HOP, 0, 1, (0, 1, 1, 1)))
        trace.record(TraceEvent(0.0, EventKind.PACKET_IN, 1, 1))
        summary = trace.summary()
        assert summary["hop"] == 1
        assert summary["in_band"] == 1
        assert summary["out_band"] == 1

    def test_hops_of_filters_by_packet(self):
        trace = Trace()
        trace.record(TraceEvent(0.0, EventKind.HOP, 0, 1))
        trace.record(TraceEvent(0.0, EventKind.HOP, 0, 2))
        trace.record(TraceEvent(0.0, EventKind.DROP, 0, 2))
        assert trace.hops_of({2}) == 2

    def test_clear_and_len(self):
        trace = Trace()
        trace.record(TraceEvent(0.0, EventKind.HOP, 0, 1))
        assert len(trace) == 1
        trace.clear()
        assert len(trace) == 0
        assert trace.last_time() == 0.0

    def test_to_jsonl_roundtrips(self):
        import json

        trace = Trace()
        trace.record(TraceEvent(1.5, EventKind.HOP, 0, 7, (0, 1, 2, 3)))
        trace.record(TraceEvent(2.0, EventKind.PACKET_IN, 2, 7))
        lines = trace.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "t": 1.5, "kind": "hop", "node": 0, "packet": 7,
            "detail": [0, 1, 2, 3],
        }

    def test_format_hops(self):
        trace = Trace()
        for i in range(4):
            trace.record(TraceEvent(float(i), EventKind.HOP, i, 1,
                                    (i, 1, i + 1, 1)))
        text = trace.format_hops(limit=2)
        assert "0:p1 -> 1:p1" in text
        assert text.endswith("...")

    def test_format_hops_unlimited(self):
        trace = Trace()
        trace.record(TraceEvent(0.0, EventKind.HOP, 0, 1, (0, 1, 1, 2)))
        assert trace.format_hops() == "t=0      0:p1 -> 1:p2"
