"""Matches: exact, masked, range encoding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.openflow.errors import MatchError
from repro.openflow.match import FieldTest, Match, encode_range


class TestFieldTest:
    def test_exact_hit(self):
        assert FieldTest("x", 5).hits({"x": 5})

    def test_exact_miss(self):
        assert not FieldTest("x", 5).hits({"x": 6})

    def test_absent_field_reads_zero(self):
        assert FieldTest("x", 0).hits({})
        assert not FieldTest("x", 1).hits({})

    def test_masked_hit(self):
        test = FieldTest("x", 0b1000, 0b1100)
        assert test.hits({"x": 0b1011})
        assert test.hits({"x": 0b1000})

    def test_masked_miss(self):
        test = FieldTest("x", 0b1000, 0b1100)
        assert not test.hits({"x": 0b0100})

    def test_value_outside_mask_rejected(self):
        with pytest.raises(MatchError):
            FieldTest("x", 0b11, 0b10)

    def test_negative_value_rejected(self):
        with pytest.raises(MatchError):
            FieldTest("x", -1)

    def test_negative_mask_rejected(self):
        with pytest.raises(MatchError):
            FieldTest("x", 0, -2)


class TestMatch:
    def test_empty_match_is_wildcard(self):
        assert Match().hits({})
        assert Match().hits({"anything": 42})

    def test_conjunction(self):
        match = Match(x=1, y=2)
        assert match.hits({"x": 1, "y": 2})
        assert not match.hits({"x": 1, "y": 3})
        assert not match.hits({"x": 0, "y": 2})

    def test_duplicate_field_rejected(self):
        with pytest.raises(MatchError):
            Match([FieldTest("x", 1), FieldTest("x", 2)])

    def test_duplicate_kwarg_vs_test_rejected(self):
        with pytest.raises(MatchError):
            Match([FieldTest("x", 1)], x=2)

    def test_extended_adds_tests(self):
        base = Match(x=1)
        extended = base.extended(y=2)
        assert extended.hits({"x": 1, "y": 2})
        assert not extended.hits({"x": 1, "y": 0})
        # The original is unchanged.
        assert base.hits({"x": 1, "y": 0})

    def test_extended_duplicate_rejected(self):
        with pytest.raises(MatchError):
            Match(x=1).extended(x=2)

    def test_field_names(self):
        assert Match(x=1, y=2).field_names() == {"x", "y"}

    def test_len(self):
        assert len(Match()) == 0
        assert len(Match(a=1, b=2, c=3)) == 3

    def test_equality_and_hash(self):
        assert Match(x=1, y=2) == Match(y=2, x=1)
        assert hash(Match(x=1)) == hash(Match(x=1))
        assert Match(x=1) != Match(x=2)


class TestEncodeRange:
    def test_full_range_is_one_wildcardish_pair(self):
        pairs = encode_range(0, 255, 8)
        assert pairs == [(0, 0)]

    def test_single_value(self):
        pairs = encode_range(7, 7, 8)
        assert pairs == [(7, 255)]

    def test_empty_range_rejected(self):
        with pytest.raises(MatchError):
            encode_range(5, 4, 8)

    def test_out_of_width_rejected(self):
        with pytest.raises(MatchError):
            encode_range(0, 256, 8)

    def test_negative_rejected(self):
        with pytest.raises(MatchError):
            encode_range(-1, 3, 8)

    @staticmethod
    def _covers(pairs: list[tuple[int, int]], x: int) -> bool:
        return any((x & mask) == value for value, mask in pairs)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_exact_coverage(self, a, b):
        lo, hi = min(a, b), max(a, b)
        pairs = encode_range(lo, hi, 8)
        for x in range(256):
            assert self._covers(pairs, x) == (lo <= x <= hi)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_pair_count_bound(self, a, b):
        lo, hi = min(a, b), max(a, b)
        pairs = encode_range(lo, hi, 8)
        assert len(pairs) <= 2 * 8 - 2 or (lo, hi) == (0, 255)

    @given(st.integers(1, 16), st.data())
    def test_arbitrary_width(self, width, data):
        top = (1 << width) - 1
        lo = data.draw(st.integers(0, top))
        hi = data.draw(st.integers(lo, top))
        pairs = encode_range(lo, hi, width)
        # Spot-check the boundaries and a midpoint.
        for x in {lo, hi, (lo + hi) // 2, max(0, lo - 1), min(top, hi + 1)}:
            assert self._covers(pairs, x) == (lo <= x <= hi)
