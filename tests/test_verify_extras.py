"""Static verifier: reachability checks and multi-service coverage."""

from __future__ import annotations


from repro.analysis.verify import verify_switch
from repro.core.compiler import compile_service, compile_services
from repro.core.services.base import PlainTraversalService
from repro.core.services.blackhole import BlackholeService
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import ring
from repro.openflow.actions import GroupAction, Instructions, Output
from repro.openflow.group import Bucket, Group, GroupType
from repro.openflow.match import Match


def clean_switch():
    return compile_service(Network(ring(4)), 0, PlainTraversalService())


class TestReachability:
    def test_clean_pipeline_has_no_orphans(self):
        report = verify_switch(clean_switch())
        assert report.ok and not report.warnings

    def test_orphan_table_warned(self):
        switch = clean_switch()
        switch.install(47, Match(), Instructions(), cookie="floating")
        report = verify_switch(switch)
        assert any("unreachable tables" in w for w in report.warnings)

    def test_orphan_group_warned(self):
        switch = clean_switch()
        switch.add_group(
            Group(777, GroupType.FF, [Bucket([Output(1)], watch_port=None)])
        )
        report = verify_switch(switch)
        assert any("never referenced" in w for w in report.warnings)

    def test_chained_groups_count_as_referenced(self):
        switch = clean_switch()
        switch.add_group(
            Group(801, GroupType.INDIRECT, [Bucket([Output(1)])])
        )
        switch.add_group(
            Group(800, GroupType.INDIRECT, [Bucket([GroupAction(801)])])
        )
        switch.install(
            0, Match(chain_test=1),
            Instructions(apply_actions=(GroupAction(800),)), priority=99,
        )
        report = verify_switch(switch)
        assert not any("never referenced" in w for w in report.warnings)

    def test_multiservice_pipeline_fully_reachable(self):
        switch = compile_services(
            Network(ring(4)), 0, [SnapshotService(), BlackholeService()]
        )
        report = verify_switch(switch)
        assert report.ok, report.errors
        assert not report.warnings, report.warnings


class TestMultiServiceCoverage:
    def test_classify_coverage_per_block(self):
        switch = compile_services(
            Network(ring(4)), 0, [SnapshotService(), BlackholeService()]
        )
        # Sabotage the second block's bounce coverage: remove its rules by
        # rebuilding the table without the bounce entries.
        from repro.core.compiler import SERVICE_BLOCK_TABLES, T_CLASSIFY

        blackhole_classify = 1 + SERVICE_BLOCK_TABLES + T_CLASSIFY
        table = switch.tables[blackhole_classify]
        table._entries = [
            e for e in table._entries if "bounce" not in e.cookie
        ]
        report = verify_switch(switch)
        assert any("bounce coverage" in e for e in report.errors)
