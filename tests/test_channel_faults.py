"""Seeded control-channel faults, controller outage, and crash resync."""

from __future__ import annotations

import pytest

from repro.control.channel import ChannelFaultConfig, ControlChannel
from repro.control.supervisor import RESYNC_UNREACHABLE, SupervisedRuntime
from repro.core.engine import make_engine
from repro.core.services.snapshot import SnapshotService
from repro.net.simulator import Network
from repro.net.topology import grid, line, ring
from repro.openflow.packet import CONTROLLER_PORT, Packet
from repro.openflow.switch import PacketOut


def echo_to_controller(net: Network, node: int) -> None:
    """Every packet entering *node* becomes a packet-in."""
    net.set_handler(node, lambda p, i: [PacketOut(CONTROLLER_PORT, p)])


class TestChannelFaultConfig:
    def test_defaults_inactive(self):
        config = ChannelFaultConfig()
        config.validate()
        assert not config.active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_prob": 1.0},
            {"loss_prob": -0.1},
            {"dup_prob": 1.5},
            {"delay": -1.0},
            {"max_extra_delay": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChannelFaultConfig(**kwargs).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss_prob": 0.5},
            {"dup_prob": 0.5},
            {"delay": 1.0},
            {"max_extra_delay": 1.0},
        ],
    )
    def test_each_knob_activates(self, kwargs):
        assert ChannelFaultConfig(**kwargs).active


class TestFaultQueue:
    def test_fault_free_path_never_queues(self):
        net = Network(line(2))
        delivered = []
        net.set_handler(0, lambda p, i: delivered.append(p) or [])
        channel = ControlChannel(net)
        channel.packet_out(0, Packet())
        net.run()
        assert delivered and channel.queue == []
        assert channel.pending_messages == 0

    def test_inactive_config_is_cleared(self):
        net = Network(line(2))
        channel = ControlChannel(net, faults=ChannelFaultConfig())
        net.set_handler(0, lambda p, i: [])
        channel.packet_out(0, Packet())
        net.run()
        assert channel.queue == []

    def test_loss_drops_and_counts(self):
        net = Network(line(2))
        delivered = []
        net.set_handler(0, lambda p, i: delivered.append(p) or [])
        channel = ControlChannel(
            net, faults=ChannelFaultConfig(loss_prob=0.5, seed=7)
        )
        for _ in range(40):
            channel.packet_out(0, Packet())
        net.run()
        assert 0 < len(delivered) < 40
        assert channel.packet_outs_dropped == 40 - len(delivered)
        assert channel.packet_outs_lost == channel.packet_outs_dropped
        assert channel.packet_outs_sent == 40

    def test_same_seed_same_fate(self):
        def casualties(seed: int) -> tuple[int, int]:
            net = Network(line(2))
            net.set_handler(0, lambda p, i: [])
            channel = ControlChannel(
                net, faults=ChannelFaultConfig(loss_prob=0.3, seed=seed)
            )
            for _ in range(30):
                channel.packet_out(0, Packet())
            net.run()
            return channel.packet_outs_dropped, channel.packet_outs_sent

        assert casualties(3) == casualties(3)

    def test_duplication_delivers_twin(self):
        net = Network(line(2))
        delivered = []
        net.set_handler(0, lambda p, i: delivered.append(p) or [])
        channel = ControlChannel(
            net, faults=ChannelFaultConfig(dup_prob=1.0, seed=1)
        )
        channel.packet_out(0, Packet())
        net.run()
        assert len(delivered) == 2
        assert channel.messages_duplicated == 1
        # Twins are distinct objects: in-flight rewrites must not be shared.
        assert delivered[0] is not delivered[1]

    def test_delay_defers_delivery_in_order(self):
        net = Network(line(2))
        delivered = []
        net.set_handler(0, lambda p, i: delivered.append(p.fields.get("seq"))
                        or [])
        channel = ControlChannel(
            net, faults=ChannelFaultConfig(delay=5.0, seed=0)
        )
        for seq in range(4):
            channel.packet_out(0, Packet(fields={"seq": seq}))
        assert channel.pending_messages == 4
        net.run()
        # Equal delays keep send order: the queue is in-order by default.
        assert delivered == [0, 1, 2, 3]
        assert channel.pending_messages == 0

    def test_extra_delay_reorders_some_seed(self):
        def order(seed: int) -> list[int]:
            net = Network(line(2))
            delivered: list[int] = []
            net.set_handler(
                0, lambda p, i: delivered.append(p.fields.get("seq")) or []
            )
            channel = ControlChannel(
                net,
                faults=ChannelFaultConfig(
                    delay=1.0, max_extra_delay=10.0, seed=seed
                ),
            )
            for seq in range(6):
                channel.packet_out(0, Packet(fields={"seq": seq}))
            net.run()
            return delivered

        reordered = [s for s in range(20) if order(s) != sorted(order(s))]
        assert reordered, "no seed in 0..19 reordered the queue"
        # ... and reordering is still seed-deterministic.
        assert order(reordered[0]) == order(reordered[0])

    def test_queue_telemetry_records_fates(self):
        net = Network(line(2))
        net.set_handler(0, lambda p, i: [])
        channel = ControlChannel(
            net, faults=ChannelFaultConfig(delay=2.0, dup_prob=1.0, seed=4)
        )
        channel.packet_out(0, Packet())
        assert [m.duplicate for m in channel.queue] == [False, True]
        net.run()
        assert all(m.delivered for m in channel.queue)


class TestControllerOutage:
    def test_outage_severs_every_switch(self):
        net = Network(ring(3))
        channel = ControlChannel(net)
        channel.fail_controller()
        assert not any(channel.connected(n) for n in range(3))
        assert not channel.packet_out(0, Packet())
        assert channel.packet_outs_lost == 1
        channel.restore_controller()
        assert all(channel.connected(n) for n in range(3))

    def test_restore_preserves_per_switch_disconnects(self):
        net = Network(ring(3))
        channel = ControlChannel(net)
        channel.disconnect(1)
        channel.fail_controller()
        channel.restore_controller()
        assert not channel.connected(1)
        assert channel.connected(0)

    def test_outage_is_idempotent(self):
        net = Network(line(2))
        channel = ControlChannel(net)
        channel.fail_controller()
        channel.fail_controller()
        channel.restore_controller()
        channel.restore_controller()
        assert channel.controller_up

    def test_in_flight_packet_in_dies_with_the_controller(self):
        net = Network(line(2))
        echo_to_controller(net, 0)
        received = []
        channel = ControlChannel(
            net, faults=ChannelFaultConfig(delay=5.0, seed=0)
        )
        channel.set_packet_in_handler(lambda node, pkt: received.append(node))
        net.inject(0, Packet())
        # The upcall is queued for t=5; the controller dies at t=0.
        channel.fail_controller()
        net.run()
        assert received == []
        assert channel.packet_ins_lost == 1

    def test_outage_window_schedules_both_edges(self):
        net = Network(line(2))
        channel = ControlChannel(net)
        channel.outage_window(start=10.0, duration=20.0)
        net.sim.at(15.0, lambda: None)
        net.sim.run(until=15.0)
        assert not channel.controller_up
        net.run()
        assert channel.controller_up

    def test_partition_window_and_flap_validate(self):
        net = Network(line(2))
        channel = ControlChannel(net)
        with pytest.raises(ValueError):
            channel.partition_window(0, 0.0, 0.0)
        with pytest.raises(ValueError):
            channel.outage_window(0.0, -1.0)
        with pytest.raises(ValueError):
            channel.flap(0, 0.0, 5.0, 5.0, cycles=0)

    def test_flap_cycles_down_and_up(self):
        net = Network(line(2))
        channel = ControlChannel(net)
        channel.flap(0, start=10.0, down=10.0, up=10.0, cycles=2)
        states = []
        for t in (5.0, 15.0, 25.0, 35.0, 45.0):
            net.sim.at(t, lambda: states.append(channel.connected(0)))
        net.run()
        assert states == [True, False, True, False, True]


class TestHandlerDetach:
    def test_none_releases_owned_sink(self):
        net = Network(line(2))
        channel = ControlChannel(net)
        channel.set_packet_in_handler(lambda node, pkt: None)
        assert net.controller_sink is not None
        channel.set_packet_in_handler(None)
        assert net.controller_sink is None

    def test_none_leaves_successor_undisturbed(self):
        net = Network(line(2))
        first = ControlChannel(net)
        first.set_packet_in_handler(lambda node, pkt: None)
        second = ControlChannel(net)
        second.set_packet_in_handler(lambda node, pkt: None)
        # The stale predecessor detaches; the successor keeps the sink.
        first.set_packet_in_handler(None)
        assert net.controller_sink is not None

    def test_baseline_and_engine_alternate_on_one_network(self):
        # The satellite regression: a controller app detaching after an
        # in-band engine claimed the sink must not silence the engine.
        net = Network(ring(4))
        channel = ControlChannel(net)
        channel.set_packet_in_handler(lambda node, pkt: None)
        engine = make_engine(net, SnapshotService(), "compiled")
        engine.install()
        sink_after_install = net.controller_sink
        assert sink_after_install is not None
        channel.set_packet_in_handler(None)
        assert net.controller_sink == sink_after_install
        # And re-claiming flips ownership back to the channel.
        channel.set_packet_in_handler(lambda node, pkt: None)
        assert net.controller_sink != sink_after_install


class TestCrashResync:
    def make_runtime(self, topo=None):
        net = Network(topo or grid(3, 3))
        channel = ControlChannel(net)
        runtime = SupervisedRuntime(net, mode="compiled", channel=channel)
        return net, channel, runtime

    def test_clean_restart_converges_first_round(self):
        net, channel, runtime = self.make_runtime()
        assert not runtime.snapshot(0).degraded
        channel.fail_controller()
        channel.restore_controller()
        report = runtime.resynchronize(0)
        assert report.converged
        assert report.rounds == 1
        assert report.reprogrammed_nodes == []
        assert report.epoch_after != report.epoch_before
        assert report.relearned_nodes == set(range(9))
        assert not report.topology_degraded

    def test_epoch_jump_clears_the_margin(self):
        _net, _channel, runtime = self.make_runtime()
        runtime.snapshot(0)
        before = runtime.clock.current
        report = runtime.resynchronize(0, margin=2)
        # Two burned epochs plus the re-learning snapshot's own epoch.
        assert report.epoch_before == before
        assert runtime.clock.current != before

    def test_garbled_switch_is_reprogrammed(self):
        net, channel, runtime = self.make_runtime()
        runtime.snapshot(0)
        engine = runtime._supervisors["snapshot"].engine
        # Garble node 4's program while the controller is "dead": drop every
        # flow entry from one table (a crash mid-programming looks like this).
        switch = engine.switches[4]
        table = next(iter(switch.tables.values()))
        table._entries = []
        table._sorted = False
        report = runtime.resynchronize(0)
        assert report.converged
        assert 4 in report.reprogrammed_nodes
        # The handshake healed the data plane: the next snapshot is exact.
        snap = runtime.snapshot(0)
        assert not snap.degraded
        assert snap.nodes == set(range(9))

    def test_unreachable_switch_reported_not_hung(self):
        net, channel, runtime = self.make_runtime()
        runtime.snapshot(0)
        channel.disconnect(5)
        report = runtime.resynchronize(0)
        assert report.converged
        assert set(report.unreachable_nodes) == {5}
        assert all(
            s.status == RESYNC_UNREACHABLE
            for s in report.switches
            if s.node == 5
        )

    def test_resync_report_feeds_the_chaos_oracle(self):
        from repro.net.chaos import resync_problems

        _net, channel, runtime = self.make_runtime(ring(5))
        runtime.snapshot(0)
        channel.fail_controller()
        channel.restore_controller()
        report = runtime.resynchronize(0)
        assert resync_problems(report) == []
