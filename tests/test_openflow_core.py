"""Packets, actions, flow tables: the single-switch building blocks."""

from __future__ import annotations

import pytest

from repro.openflow.actions import (
    DecTtl,
    Instructions,
    Output,
    PopLabel,
    PushLabel,
    SetField,
)
from repro.openflow.errors import ActionError
from repro.openflow.flowtable import FlowTable
from repro.openflow.match import Match
from repro.openflow.packet import Packet


class TestPacket:
    def test_absent_field_reads_zero(self):
        assert Packet().get("anything") == 0

    def test_set_get_roundtrip(self):
        packet = Packet()
        packet.set("x", 7)
        assert packet.get("x") == 7

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            Packet().set("x", -1)

    def test_stack_push_pop(self):
        packet = Packet()
        packet.push(("a", 1))
        packet.push(("b", 2))
        assert packet.pop() == ("b", 2)
        assert packet.pop() == ("a", 1)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            Packet().pop()

    def test_copy_is_independent(self):
        packet = Packet(fields={"x": 1})
        packet.push(("r",))
        clone = packet.copy()
        clone.set("x", 2)
        clone.pop()
        assert packet.get("x") == 1
        assert packet.stack == [("r",)]

    def test_copy_gets_fresh_id(self):
        packet = Packet()
        assert packet.copy().packet_id != packet.packet_id


class TestActions:
    def _emitted(self):
        out = []
        return out, lambda port, pkt: out.append((port, pkt))

    def test_set_field(self):
        packet = Packet()
        out, emit = self._emitted()
        SetField("x", 3).apply(packet, emit, in_port=1)
        assert packet.get("x") == 3
        assert out == []

    def test_output_emits(self):
        packet = Packet()
        out, emit = self._emitted()
        Output(4).apply(packet, emit, in_port=1)
        assert out == [(4, packet)]

    def test_push_pop_label(self):
        packet = Packet()
        out, emit = self._emitted()
        PushLabel(("rec", 1)).apply(packet, emit, 1)
        assert packet.stack == [("rec", 1)]
        PopLabel().apply(packet, emit, 1)
        assert packet.stack == []

    def test_pop_on_empty_is_noop(self):
        packet = Packet()
        out, emit = self._emitted()
        PopLabel().apply(packet, emit, 1)  # must not raise
        assert packet.stack == []

    def test_dec_ttl_floors_at_zero(self):
        packet = Packet(fields={"ttl": 1})
        out, emit = self._emitted()
        DecTtl().apply(packet, emit, 1)
        assert packet.get("ttl") == 0
        DecTtl().apply(packet, emit, 1)
        assert packet.get("ttl") == 0

    def test_instructions_metadata_consistency(self):
        with pytest.raises(ActionError):
            Instructions(write_metadata=(0xFF, 0x0F))

    def test_instructions_describe(self):
        text = Instructions(
            apply_actions=(SetField("x", 1), Output(2)), goto_table=3
        ).describe()
        assert "SetField" in text and "goto:3" in text


class TestFlowTable:
    def test_lookup_priority_order(self):
        table = FlowTable(0)
        low = table.install(Match(), Instructions(), priority=1, cookie="low")
        high = table.install(Match(x=1), Instructions(), priority=10, cookie="high")
        assert table.lookup({"x": 1}) is high
        assert table.lookup({"x": 2}) is low

    def test_miss_returns_none(self):
        table = FlowTable(0)
        table.install(Match(x=1), Instructions())
        assert table.lookup({"x": 2}) is None

    def test_counters_increment(self):
        table = FlowTable(0)
        entry = table.install(Match(), Instructions())
        table.lookup({})
        table.lookup({})
        assert entry.packet_count == 2

    def test_insertion_order_breaks_ties(self):
        table = FlowTable(0)
        first = table.install(Match(), Instructions(), priority=5)
        table.install(Match(), Instructions(), priority=5)
        assert table.lookup({}) is first

    def test_entries_sorted_by_priority(self):
        table = FlowTable(0)
        table.install(Match(), Instructions(), priority=1)
        table.install(Match(), Instructions(), priority=9)
        priorities = [e.priority for e in table.entries()]
        assert priorities == sorted(priorities, reverse=True)

    def test_negative_table_id_rejected(self):
        from repro.openflow.errors import TableError

        with pytest.raises(TableError):
            FlowTable(-1)

    def test_len(self):
        table = FlowTable(0)
        assert len(table) == 0
        table.install(Match(), Instructions())
        assert len(table) == 1
