"""Epoch clock, origin gate, and the watchdog deadline closed form."""

from __future__ import annotations

import pytest

from repro.core.epoch import (
    EPOCH_SPACE,
    EpochClock,
    EpochGate,
    watchdog_deadline,
)
from repro.core.fields import FIELD_EPOCH
from repro.core.services.snapshot import SnapshotService
from repro.core.template import TemplateInterpreter
from repro.net.simulator import Network
from repro.net.topology import ring
from repro.openflow.packet import LOCAL_PORT, Packet


class TestEpochClock:
    def test_starts_unallocated(self):
        assert EpochClock().current == 0

    def test_advance_is_sequential(self):
        clock = EpochClock()
        assert [clock.advance() for _ in range(3)] == [1, 2, 3]

    def test_wraps_past_zero(self):
        clock = EpochClock(start=EPOCH_SPACE)
        assert clock.advance() == 1  # 0 is reserved for unsupervised

    def test_space_matches_field_width(self):
        assert EPOCH_SPACE == 63  # 6 reserved header bits

    def test_bad_start_rejected(self):
        with pytest.raises(ValueError):
            EpochClock(start=EPOCH_SPACE + 1)


class TestEpochGate:
    def test_admits_current_and_unsupervised(self):
        gate = EpochGate(origin=0, epoch=5)
        assert gate.admits(5)
        assert gate.admits(0)
        assert not gate.admits(4)
        assert not gate.admits(6)

    def test_template_squashes_stale_at_origin_only(self):
        net = Network(ring(4))
        service = SnapshotService()
        interpreter = TemplateInterpreter(net, service)
        interpreter.install()
        service.epoch_gate = EpochGate(origin=0, epoch=2)

        # Stale epoch at the origin: dropped on the floor, counted.
        stale = Packet(fields={FIELD_EPOCH: 1})
        assert interpreter.process(0, stale, LOCAL_PORT) == []
        assert service.epoch_gate.squashed == 1
        assert service.epoch_gate.squashed_packets == [stale.packet_id]

        # Same stale epoch at a non-origin node: processed normally.
        other = Packet(fields={FIELD_EPOCH: 1})
        assert interpreter.process(1, other, 1) != []

        # Current epoch and unsupervised traffic pass the gate.
        assert interpreter.process(0, Packet(fields={FIELD_EPOCH: 2}), LOCAL_PORT)
        assert interpreter.process(0, Packet(), LOCAL_PORT)
        assert service.epoch_gate.squashed == 1

    def test_supervised_traversal_still_completes(self):
        net = Network(ring(5))
        service = SnapshotService()
        interpreter = TemplateInterpreter(net, service)
        interpreter.install()
        service.epoch_gate = EpochGate(origin=0, epoch=3)
        reports = []
        net.set_controller_sink(lambda node, pkt: reports.append((node, pkt)))
        net.inject(0, Packet(fields={FIELD_EPOCH: 3}), in_port=LOCAL_PORT)
        net.run()
        assert len(reports) == 1
        assert reports[0][1].get(FIELD_EPOCH) == 3


class TestWatchdogDeadline:
    def test_scales_with_hops_and_delay(self):
        topo = ring(6)
        base = watchdog_deadline("snapshot", topo, 1.0, safety_factor=1.0)
        assert base > 0
        assert watchdog_deadline("snapshot", topo, 2.0, 1.0) == 2 * base
        assert watchdog_deadline("snapshot", topo, 1.0, 4.0) == 4 * base

    def test_covers_a_real_traversal(self):
        topo = ring(8)
        net = Network(topo)
        service = SnapshotService()
        interpreter = TemplateInterpreter(net, service)
        interpreter.install()
        done = []
        net.set_controller_sink(lambda node, pkt: done.append(node))
        net.inject(0, Packet(), in_port=LOCAL_PORT)
        net.run()
        deadline = watchdog_deadline("snapshot", topo, net.max_link_delay())
        assert done and net.sim.now <= deadline

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            watchdog_deadline("snapshot", ring(4), 0.0)
        with pytest.raises(ValueError):
            watchdog_deadline("snapshot", ring(4), 1.0, safety_factor=0.5)
