"""Fast-path cache invalidation: mutations take effect on the next packet.

The fast path caches compiled tables per ``FlowTable.version`` and compiled
group programs per ``GroupTable.version``; port liveness is *never* cached.
Each test mutates a live switch and asserts the very next packet behaves
exactly like a fresh interpreted switch would — no stale dispatch, no lost
dynamic state (round-robin cursors, counters), no recompile needed for
failover flips.
"""

from __future__ import annotations

import pytest

from repro.openflow.actions import GroupAction, Instructions, Output, SetField
from repro.openflow.errors import GroupError
from repro.openflow.group import Bucket, Group, GroupType
from repro.openflow.match import Match
from repro.openflow.packet import Packet
from repro.openflow.switch import Switch


def _switch(fast_path=True, liveness=None) -> Switch:
    return Switch(node_id=0, num_ports=4, liveness=liveness, fast_path=fast_path)


def _ports(outputs):
    return [out.port for out in outputs]


def _process(switch, fields=None, in_port=1):
    return switch.process(Packet(fields=dict(fields or {})), in_port)


class TestTableMutations:
    def test_add_entry_visible_immediately(self):
        switch = _switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(1),)))
        assert _ports(_process(switch)) == [1]  # compiled now
        switch.install(
            0, Match(a=5), Instructions(apply_actions=(Output(2),)), priority=9
        )
        assert _ports(_process(switch, {"a": 5})) == [2]
        assert _ports(_process(switch, {"a": 4})) == [1]

    def test_remove_entry_visible_immediately(self):
        switch = _switch()
        high = Match(a=5)
        switch.install(0, Match(), Instructions(apply_actions=(Output(1),)))
        switch.install(
            0, high, Instructions(apply_actions=(Output(2),)), priority=9
        )
        assert _ports(_process(switch, {"a": 5})) == [2]
        removed = switch.table(0).remove(match=high)
        assert len(removed) == 1
        assert _ports(_process(switch, {"a": 5})) == [1]

    def test_remove_all_causes_table_miss(self):
        switch = _switch()
        switch.install(0, Match(), Instructions(apply_actions=(Output(1),)))
        assert _ports(_process(switch)) == [1]
        switch.table(0).remove()  # OpenFlow delete-all
        misses = switch.table_misses
        assert _process(switch) == []
        assert switch.table_misses == misses + 1

    def test_modify_swaps_instructions(self):
        switch = _switch()
        match = Match(a=1)
        switch.install(0, match, Instructions(apply_actions=(Output(1),)))
        assert _ports(_process(switch, {"a": 1})) == [1]
        switch.table(0).modify(
            match, Instructions(apply_actions=(SetField("b", 7), Output(3)))
        )
        out = _process(switch, {"a": 1})
        assert _ports(out) == [3]
        assert out[0].packet.fields["b"] == 7

    def test_goto_target_added_later(self):
        """A goto to a table that does not exist yet starts raising; adding
        the table (with an entry) heals it on the next packet."""
        from repro.openflow.errors import TableError

        switch = _switch()
        switch.install(0, Match(), Instructions(goto_table=1))
        with pytest.raises(TableError):
            _process(switch)
        switch.install(1, Match(), Instructions(apply_actions=(Output(2),)))
        assert _ports(_process(switch)) == [2]

    def test_packet_counts_continue_across_recompile(self):
        switch = _switch()
        entry = switch.install(
            0, Match(), Instructions(apply_actions=(Output(1),))
        )
        _process(switch)
        _process(switch)
        assert entry.packet_count == 2
        switch.install(
            0, Match(a=9), Instructions(apply_actions=(Output(2),)), priority=5
        )  # forces a recompile of table 0
        _process(switch)
        assert entry.packet_count == 3  # same FlowEntry object, not a reset


class TestGroupMutations:
    def test_group_added_after_first_compile(self):
        """An entry pointing at a not-yet-installed group raises at
        execution (interpreter timing); installing the group heals it."""
        switch = _switch()
        switch.install(
            0, Match(), Instructions(apply_actions=(GroupAction(7),))
        )
        with pytest.raises(GroupError):
            _process(switch)
        switch.add_group(
            Group(7, GroupType.INDIRECT, [Bucket(actions=(Output(2),))])
        )
        assert _ports(_process(switch)) == [2]

    def test_select_cursor_survives_recompile(self):
        """SELECT round-robin state lives on the Group object, not in the
        compiled program — a recompile must not rewind it."""
        switch = _switch()
        group = switch.add_group(
            Group(
                5,
                GroupType.SELECT,
                [Bucket(actions=(Output(p),)) for p in (1, 2, 3)],
            )
        )
        switch.install(
            0, Match(), Instructions(apply_actions=(GroupAction(5),))
        )
        assert _ports(_process(switch)) == [1]
        assert group.rr_next == 1
        # Mutate the flow table: recompiles the entry closures and (via the
        # embedded programs) the group dispatch.
        switch.install(
            0, Match(a=1), Instructions(apply_actions=(Output(4),)), priority=9
        )
        assert _ports(_process(switch)) == [2]  # continues, no rewind
        assert _ports(_process(switch)) == [3]
        assert _ports(_process(switch)) == [1]

    def test_ff_liveness_flip_needs_no_invalidation(self):
        """Failover takes the same per-packet liveness path as the
        interpreter: flipping a port re-routes the very next packet with no
        table or group mutation at all."""
        live = {1: True, 2: True}
        switch = _switch(liveness=lambda port: live.get(port, True))
        switch.add_group(
            Group(
                3,
                GroupType.FF,
                [
                    Bucket(actions=(Output(1),), watch_port=1),
                    Bucket(actions=(Output(2),), watch_port=2),
                ],
            )
        )
        switch.install(
            0, Match(), Instructions(apply_actions=(GroupAction(3),))
        )
        versions = (switch.table(0).version, switch.groups.version)
        assert _ports(_process(switch)) == [1]
        live[1] = False
        assert _ports(_process(switch)) == [2]
        live[1] = True
        assert _ports(_process(switch)) == [1]
        live[1] = live[2] = False
        assert _process(switch) == []  # no live bucket: silent drop
        # No mutation happened: the compiled caches were never invalidated.
        assert (switch.table(0).version, switch.groups.version) == versions

    def test_flattened_indirect_group_still_counts(self):
        """Single-bucket INDIRECT groups are inlined into the entry closure;
        the flattening must keep bumping group and bucket counters."""
        switch = _switch()
        group = switch.add_group(
            Group(9, GroupType.INDIRECT, [Bucket(actions=(Output(2),))])
        )
        switch.install(
            0, Match(), Instructions(apply_actions=(GroupAction(9),))
        )
        _process(switch)
        _process(switch)
        assert group.packet_count == 2
        assert group.buckets[0].packet_count == 2


class TestExplicitInvalidation:
    def test_in_place_edit_plus_invalidate(self):
        """Editing an entry object in place bypasses the version counters
        (documented); ``invalidate_fast_path`` is the escape hatch."""
        switch = _switch()
        entry = switch.install(
            0, Match(), Instructions(apply_actions=(Output(1),))
        )
        assert _ports(_process(switch)) == [1]
        entry.instructions = Instructions(apply_actions=(Output(3),))
        assert _ports(_process(switch)) == [1]  # stale, by design
        switch.invalidate_fast_path()
        assert _ports(_process(switch)) == [3]

    def test_touch_is_equivalent_to_invalidate(self):
        switch = _switch()
        entry = switch.install(
            0, Match(), Instructions(apply_actions=(Output(1),))
        )
        assert _ports(_process(switch)) == [1]
        entry.instructions = Instructions(apply_actions=(Output(2),))
        switch.table(0).touch()
        assert _ports(_process(switch)) == [2]

    def test_enable_disable_round_trip(self):
        switch = _switch(fast_path=False)
        switch.install(0, Match(), Instructions(apply_actions=(Output(1),)))
        assert not switch.fast_path_enabled
        assert _ports(_process(switch)) == [1]
        switch.enable_fast_path()
        assert switch.fast_path_enabled
        assert _ports(_process(switch)) == [1]
        switch.disable_fast_path()
        assert not switch.fast_path_enabled
        assert _ports(_process(switch)) == [1]
