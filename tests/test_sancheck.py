"""The determinism & shared-state sanitizer, end to end.

The corpus under ``tests/fixtures/sancheck/`` pins precision *and*
recall: every line marked ``# expect[RULE]`` must be flagged by exactly
that rule, and no unmarked line may be flagged at all.  The remaining
tests cover suppression comments, the baseline workflow, the CLI, and
the gate's contract on the repo itself (zero unbaselined findings).
"""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.analysis.static import (
    SAN_RULES,
    SanConfig,
    analyze_models,
    build_models,
    run_sancheck,
    write_baseline,
)
from repro.analysis.static.baseline import apply_baseline, load_baseline

FIXTURES = Path(__file__).parent / "fixtures" / "sancheck"
REPO_ROOT = Path(__file__).parent.parent

_EXPECT_RE = re.compile(r"#\s*expect\[([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]")


def corpus_expectations() -> set[tuple[str, int, str]]:
    """(file, line, rule) triples the corpus demands, from its markers."""
    expected: set[tuple[str, int, str]] = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, text in enumerate(path.read_text().splitlines(), 1):
            match = _EXPECT_RE.search(text)
            if match:
                for rule in match.group(1).split(","):
                    expected.add((path.name, lineno, rule.strip()))
    return expected


def corpus_findings() -> set[tuple[str, int, str]]:
    models = build_models(FIXTURES, rel_base=FIXTURES)
    findings, _ = analyze_models(models)
    return {(f.path, f.line, f.rule) for f in findings if f.active}


def analyze_source(tmp_path: Path, source: str):
    """Analyze one synthetic module; return its findings."""
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent(source))
    models = build_models(target, rel_base=tmp_path)
    findings, _ = analyze_models(models)
    return findings


class TestCorpus:
    def test_recall_every_marked_line_is_caught(self):
        missed = corpus_expectations() - corpus_findings()
        assert not missed, f"true positives the sanitizer missed: {sorted(missed)}"

    def test_precision_no_benign_line_is_flagged(self):
        extra = corpus_findings() - corpus_expectations()
        assert not extra, f"benign look-alikes falsely flagged: {sorted(extra)}"

    def test_corpus_exercises_every_registered_rule(self):
        covered = {rule for _, _, rule in corpus_expectations()}
        assert covered == set(SAN_RULES), (
            "every registered rule needs at least one true positive in "
            f"the corpus; missing: {sorted(set(SAN_RULES) - covered)}"
        )

    def test_corpus_has_benign_lookalikes(self):
        # Precision is only meaningful if the corpus contains unmarked
        # near-miss code; `good_`-prefixed defs are that contract.
        for path in sorted(FIXTURES.glob("*.py")):
            assert "def good_" in path.read_text(), (
                f"{path.name} has no benign look-alike functions"
            )


class TestSuppression:
    def test_same_line_comment(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import random

            def f():
                return random.random()  # repro: allow[DET001] corpus
            """,
        )
        assert [f.rule for f in findings] == ["DET001"]
        assert findings[0].suppressed and not findings[0].active

    def test_lone_comment_line_above(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import random

            def f():
                # repro: allow[DET001] seeded at a higher layer
                return random.random()
            """,
        )
        assert findings[0].suppressed

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import random

            def f():
                return random.random()  # repro: allow[DET003] wrong id
            """,
        )
        assert not findings[0].suppressed

    def test_comment_above_code_line_does_not_leak(self, tmp_path):
        # The allowance must ride a *lone* comment line, not trailing code.
        findings = analyze_source(
            tmp_path,
            """
            import random

            def f():
                x = 1  # repro: allow[DET001] attached to the wrong line
                return random.random()
            """,
        )
        assert not findings[0].suppressed

    def test_multiple_rule_ids_in_one_comment(self, tmp_path):
        findings = analyze_source(
            tmp_path,
            """
            import random, time

            def f():
                # repro: allow[DET001,DET003] bench-only path
                return random.random() + time.time()
            """,
        )
        assert all(f.suppressed for f in findings)
        assert {f.rule for f in findings} == {"DET001", "DET003"}


class TestBaseline:
    SOURCE = """
        import random

        def f():
            return random.random()
        """

    def test_roundtrip_marks_baselined(self, tmp_path):
        findings = analyze_source(tmp_path, self.SOURCE)
        baseline_path = tmp_path / "sancheck-baseline.json"
        write_baseline(baseline_path, findings)
        allowance = load_baseline(baseline_path)
        marked, stale = apply_baseline(findings, allowance)
        assert all(f.baselined for f in marked)
        assert not stale

    def test_baseline_survives_line_drift(self, tmp_path):
        findings = analyze_source(tmp_path, self.SOURCE)
        baseline_path = tmp_path / "sancheck-baseline.json"
        write_baseline(baseline_path, findings)
        drifted = analyze_source(
            tmp_path, "\n\n# a new comment shifts lines\n" + textwrap.dedent(self.SOURCE)
        )
        marked, stale = apply_baseline(drifted, load_baseline(baseline_path))
        assert all(f.baselined for f in marked)
        assert not stale

    def test_fixed_site_reports_stale_entry(self, tmp_path):
        findings = analyze_source(tmp_path, self.SOURCE)
        baseline_path = tmp_path / "sancheck-baseline.json"
        write_baseline(baseline_path, findings)
        marked, stale = apply_baseline([], load_baseline(baseline_path))
        assert marked == []
        assert len(stale) == 1 and stale[0]["rule"] == "DET001"

    def test_run_sancheck_discovers_baseline_above_root(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(
            "import random\n\ndef f():\n    return random.random()\n"
        )
        report = run_sancheck(root=pkg, use_baseline=True)
        assert report.exit_code == 1  # no baseline anywhere above tmp_path
        write_baseline(tmp_path / "sancheck-baseline.json", report.findings)
        report = run_sancheck(root=pkg, use_baseline=True)
        assert report.exit_code == 0
        assert report.baseline_path == str(tmp_path / "sancheck-baseline.json")


class TestConfig:
    def test_disable_rule(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import random\n\ndef f():\n    return random.random()\n")
        models = build_models(target, rel_base=tmp_path)
        findings, rules_run = analyze_models(
            models, SanConfig(disable=frozenset({"DET001"}))
        )
        assert "DET001" not in rules_run
        assert not findings

    def test_rule_subset(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import random\n\ndef f():\n    return random.random()\n")
        models = build_models(target, rel_base=tmp_path)
        _, rules_run = analyze_models(models, SanConfig(rules=("DET001",)))
        assert rules_run == ["DET001"]


class TestRegistry:
    def test_rules_have_docs_severities_and_hints(self):
        for rule in SAN_RULES.values():
            assert rule.doc, f"{rule.rule_id} has no docstring"
            assert rule.severity in ("error", "warning", "info")
            assert rule.fix_hint, f"{rule.rule_id} has no fix hint"

    def test_duplicate_rule_id_rejected(self):
        from repro.analysis.static import san_rule

        with pytest.raises(ValueError, match="duplicate"):
            @san_rule("DET001", "dup", "error", fix_hint="x")
            def dup(model, rule):  # pragma: no cover - never runs
                yield


class TestRepoGate:
    def test_repo_has_zero_unbaselined_findings(self):
        report = run_sancheck()
        assert report.exit_code == 0, (
            "new sanitizer findings in the repo source:\n"
            + report.format_text()
        )

    def test_committed_baseline_has_no_stale_entries(self):
        report = run_sancheck()
        assert not report.stale_baseline, (
            "baseline entries whose sites are fixed — prune them: "
            f"{report.stale_baseline}"
        )

    def test_repo_scan_paths_are_package_relative(self):
        report = run_sancheck()
        assert all(f.path.startswith("repro/") for f in report.findings)


class TestCli:
    def test_sancheck_text_and_exit(self, capsys):
        from repro.cli import main

        assert main(["sancheck"]) == 0
        out = capsys.readouterr().out
        assert "sancheck:" in out and "0 new" in out

    def test_sancheck_json_is_sorted(self, capsys):
        from repro.cli import main

        assert main(["sancheck", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 0
        assert list(payload) == sorted(payload)

    def test_sancheck_no_baseline_reports_findings(self, capsys):
        from repro.cli import main

        assert main(["sancheck", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RACE001" in out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "mod.py"
        target.write_text("import random\n\ndef f():\n    return random.random()\n")
        baseline = tmp_path / "sancheck-baseline.json"
        assert main([
            "sancheck", "--root", str(target),
            "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert baseline.is_file()
        capsys.readouterr()
        assert main([
            "sancheck", "--root", str(target), "--baseline", str(baseline),
        ]) == 0
