"""Property-based fuzz: the fast-path index ≡ the linear priority scan.

Two layers:

* **Lookup equivalence** — random flow tables full of overlapping
  priorities, masked matches (including ``mask == 0`` no-op wildcards and
  register tests on ``in_port`` / ``metadata``) probed with random
  contexts.  :meth:`FastTable.lookup` must return *the same entry object*
  (entry-for-entry, not merely an equal one) as :meth:`FlowTable.lookup`.

* **Pipeline equivalence** — random multi-table rule sets with goto chains
  and output actions, executed on two identically-configured switches (one
  per engine).  Emitted packets and every counter must agree.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openflow.actions import Instructions, Output, SetField
from repro.openflow.fastpath import compile_table
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import FieldTest, Match
from repro.openflow.packet import Packet
from repro.openflow.switch import Switch

#: Small value domain so random contexts collide with match values often —
#: a sparse domain would make almost every lookup a miss.
FIELDS = ("a", "b", "c", "in_port", "metadata")
VALUES = st.integers(0, 7)
MASKS = st.sampled_from([None, 0, 1, 3, 5, 6, 7])


@st.composite
def field_tests(draw):
    name = draw(st.sampled_from(FIELDS))
    mask = draw(MASKS)
    value = draw(VALUES)
    if mask is not None:
        value &= mask  # FieldTest rejects value bits outside the mask
    return FieldTest(name, value, mask)


@st.composite
def matches(draw):
    tests = draw(st.lists(field_tests(), max_size=3))
    unique = {test.name: test for test in tests}
    return Match(unique.values())


@st.composite
def tables(draw):
    table = FlowTable(0)
    for _ in range(draw(st.integers(0, 12))):
        table.add(
            FlowEntry(
                match=draw(matches()),
                instructions=Instructions(),
                # A tight priority range forces same-priority overlaps, the
                # insertion-order tie-break case.
                priority=draw(st.integers(0, 3)),
            )
        )
    return table


@st.composite
def contexts(draw):
    fields = draw(
        st.dictionaries(st.sampled_from(("a", "b", "c")), VALUES, max_size=3)
    )
    return fields, draw(VALUES), draw(VALUES)  # (fields, in_port, metadata)


@settings(max_examples=300, deadline=None)
@given(tables(), st.lists(contexts(), min_size=1, max_size=8))
def test_lookup_equivalence(table, probes):
    fast = compile_table(table)
    for fields, in_port, metadata in probes:
        context = dict(fields)
        context["in_port"] = in_port
        context["metadata"] = metadata
        slow_entry = table.lookup(context)
        fast_entry = fast.lookup(fields, in_port, metadata)
        if slow_entry is None:
            assert fast_entry is None
        else:
            # Entry-for-entry: the identical FlowEntry object, so priority,
            # seq, instructions and counters all agree by construction.
            assert fast_entry is not None
            assert fast_entry.entry is slow_entry


@st.composite
def rule_sets(draw):
    """A random 3-table pipeline: matches, set-fields, outputs, goto chains."""
    rules = []
    for table_id in range(3):
        for _ in range(draw(st.integers(0, 6))):
            actions = []
            if draw(st.booleans()):
                actions.append(
                    SetField(draw(st.sampled_from(("a", "b"))), draw(VALUES))
                )
            if draw(st.booleans()):
                actions.append(Output(draw(st.integers(1, 3))))
            goto = None
            if table_id < 2 and draw(st.booleans()):
                goto = draw(st.integers(table_id + 1, 2))
            rules.append(
                (
                    table_id,
                    draw(matches()),
                    Instructions(apply_actions=tuple(actions), goto_table=goto),
                    draw(st.integers(0, 3)),
                )
            )
    return rules


def _build_switch(rules, fast_path: bool) -> Switch:
    switch = Switch(node_id=0, num_ports=3, fast_path=fast_path)
    for table_id in range(3):
        switch.table(table_id)  # goto targets must exist even if empty
    for table_id, match, instructions, priority in rules:
        switch.install(table_id, match, instructions, priority)
    return switch


def _counters(switch: Switch):
    return (
        switch.packets_processed,
        switch.table_misses,
        [
            (table_id, entry.seq, entry.packet_count)
            for table_id, entry in switch.iter_entries()
        ],
    )


@settings(max_examples=200, deadline=None)
@given(rule_sets(), st.lists(contexts(), min_size=1, max_size=6))
def test_pipeline_equivalence(rules, packets):
    slow = _build_switch(rules, fast_path=False)
    fast = _build_switch(rules, fast_path=True)
    for fields, in_port, _metadata in packets:
        slow_out = slow.process(Packet(fields=dict(fields)), in_port)
        fast_out = fast.process(Packet(fields=dict(fields)), in_port)
        assert [
            (o.port, sorted(o.packet.fields.items())) for o in slow_out
        ] == [(o.port, sorted(o.packet.fields.items())) for o in fast_out]
    assert _counters(slow) == _counters(fast)
