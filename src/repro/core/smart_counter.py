"""Smart counters (§3.3): fetch-and-increment from round-robin groups.

A smart counter with k values is an OpenFlow ``SELECT`` group with a
round-robin bucket-selection policy and k buckets, where bucket j's action
writes j into a packet header field.  Applying the group to a packet
therefore *fetches* the counter value (it lands in the packet, where flow
tables can match it) and *increments* the counter (the round-robin cursor
advances), wrapping to 0 on overflow — exactly the paper's construction.
"""

from __future__ import annotations

from repro.core.fields import FIELD_SCRATCH
from repro.openflow.actions import SetField
from repro.openflow.group import Bucket, Group, GroupType


def build_counter_group(
    group_id: int,
    modulus: int,
    field_name: str = FIELD_SCRATCH,
    start: int = 0,
) -> Group:
    """Build a k-valued smart counter as a round-robin SELECT group.

    ``modulus`` is k (the number of buckets); each application writes the
    pre-increment value into ``field_name``.  Bucket order is canonical —
    bucket j writes value j — so a counter's behaviour is fully determined
    by its cursor, never by construction order.  ``start`` seeds the cursor
    (the first fetch returns ``start``), which lets the model checker and
    the simulator replay counter-dependent traversals bit-identically.
    """
    if modulus < 2:
        raise ValueError("a smart counter needs at least 2 values")
    if not 0 <= start < modulus:
        raise ValueError(f"counter start {start} not in [0, {modulus})")
    buckets = [Bucket(actions=(SetField(field_name, j),)) for j in range(modulus)]
    return Group(
        group_id=group_id,
        group_type=GroupType.SELECT,
        buckets=buckets,
        rr_next=start,
    )


def counter_value(group: Group) -> int:
    """The value a fetch would return next (the round-robin cursor).

    Only the control plane can call this (via group statistics); the data
    plane must fetch-and-increment.
    """
    return group.rr_next


def seed_counter(group: Group, start: int) -> None:
    """Reset a counter group's cursor so the next fetch returns *start*.

    Control-plane only (a group-mod in real OpenFlow); used to restore a
    deterministic counter state before a replay.
    """
    if not 0 <= start < len(group.buckets):
        raise ValueError(
            f"counter start {start} not in [0, {len(group.buckets)})"
        )
    group.rr_next = start


def counter_bucket_value(group: Group, index: int) -> int | None:
    """The value bucket *index* writes, or None if it is not a pure
    set-field bucket (a malformed counter; the model checker flags it)."""
    bucket = group.buckets[index]
    values = [a.value for a in bucket.actions if isinstance(a, SetField)]
    return values[-1] if values else None
