"""Traversal engines: one service, one network, two implementations.

:class:`InterpretedEngine` executes the paper's pseudocode directly
(:mod:`repro.core.template`); :class:`CompiledEngine` executes the OpenFlow
rule sets produced by :mod:`repro.core.compiler` on simulated switches.
Both expose the same two-stage API the paper describes: :meth:`install`
(the offline stage) and :meth:`trigger` (the runtime stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fields import FIELD_SVC
from repro.core.services.base import Service
from repro.core.template import TemplateInterpreter
from repro.net.simulator import Network
from repro.openflow.packet import LOCAL_PORT, Packet
from repro.openflow.switch import Switch


@dataclass
class TraversalResult:
    """What one trigger produced."""

    root: int
    packet: Packet
    #: Controller packet-ins during this run, as (node, packet).
    reports: list[tuple[int, Packet]] = field(default_factory=list)
    #: Local deliveries during this run (anycast receivers), as (node, packet).
    deliveries: list[tuple[int, Packet]] = field(default_factory=list)
    in_band_messages: int = 0
    out_band_messages: int = 0

    @property
    def delivered_at(self) -> int | None:
        """Node id of the first local delivery, if any."""
        return self.deliveries[0][0] if self.deliveries else None

    @property
    def completed(self) -> bool:
        """True if the run produced any report or delivery."""
        return bool(self.reports or self.deliveries)


class _BaseEngine:
    """Shared install/trigger plumbing."""

    mode = "abstract"

    def __init__(self, network: Network, service: Service) -> None:
        self.network = network
        self.service = service
        self.reports: list[tuple[int, Packet]] = []
        self.deliveries: list[tuple[int, Packet]] = []
        self._installed = False

    def _on_report(self, node: int, packet: Packet) -> None:
        self.reports.append((node, packet))

    def _on_delivery(self, node: int, packet: Packet) -> None:
        self.deliveries.append((node, packet))

    def install(self) -> None:
        """Offline stage: install the service on every node.

        Safe to call repeatedly; several engines can share one network (the
        last engine to install or trigger owns the handlers and sinks).
        """
        if not self._installed:
            self._do_install()
            self._installed = True
        self._bind()

    def _do_install(self) -> None:
        raise NotImplementedError

    def _bind(self) -> None:
        """(Re)claim the network's handlers and controller/delivery sinks.

        The engine's sinks are passive collectors (they only append to the
        report/delivery lists), so batched segments may keep running while
        they are attached.
        """
        self.network.set_controller_sink(self._on_report, passive=True)
        self.network.set_delivery_sink(self._on_delivery, passive=True)
        self._bind_handlers()

    def _bind_handlers(self) -> None:
        raise NotImplementedError

    def trigger(
        self,
        root: int,
        fields: dict[str, int] | None = None,
        from_controller: bool = True,
        payload=None,
        run: bool = True,
    ) -> TraversalResult:
        """Runtime stage: inject one trigger packet at *root* and run the
        network to quiescence.

        ``from_controller`` decides whether the injection is accounted as an
        out-of-band packet-out (anycast requests come from hosts and are
        not).  With ``run=False`` the packet is only enqueued — the caller
        drives the event loop and reads ``engine.reports`` itself (used for
        timing experiments with overlapping traversals); the returned
        result then carries no reports or message counts.
        """
        self.install()
        packet_fields = {FIELD_SVC: self.service.service_id}
        if fields:
            packet_fields.update(fields)
        packet = Packet(fields=packet_fields, payload=payload)

        trace = self.network.trace
        mark_reports = len(self.reports)
        mark_deliveries = len(self.deliveries)
        mark_in = trace.in_band_messages
        mark_out = trace.out_band_messages

        self.network.inject(
            root, packet, in_port=LOCAL_PORT, from_controller=from_controller
        )
        if not run:
            return TraversalResult(root=root, packet=packet)
        self.network.run()

        return TraversalResult(
            root=root,
            packet=packet,
            reports=self.reports[mark_reports:],
            deliveries=self.deliveries[mark_deliveries:],
            in_band_messages=trace.in_band_messages - mark_in,
            out_band_messages=trace.out_band_messages - mark_out,
        )


class InterpretedEngine(_BaseEngine):
    """Reference engine: interprets Algorithm 1 + hooks directly."""

    mode = "interpreted"

    def __init__(self, network: Network, service: Service) -> None:
        super().__init__(network, service)
        self.interpreter = TemplateInterpreter(network, service)

    def _do_install(self) -> None:
        pass  # nothing to precompute; handlers are bound in _bind_handlers

    def _bind_handlers(self) -> None:
        self.interpreter.install()


class CompiledEngine(_BaseEngine):
    """Compiled engine: OpenFlow rule sets on simulated switches.

    ``fast_path`` picks the switches' packet engine: the interpreted
    per-entry scan (False) or the indexed dispatch of
    :mod:`repro.openflow.fastpath` (True); None defers to the network's
    ``fast_path`` default.  ``batch`` additionally registers the switches'
    batched pipelines and flips the network into batched drain mode
    (None: network default) — same wiring pattern as ``fast_path``.  All
    combinations are observably identical.
    """

    mode = "compiled"

    def __init__(
        self,
        network: Network,
        service: Service,
        fast_path: bool | None = None,
        batch: bool | None = None,
    ) -> None:
        super().__init__(network, service)
        self.switches: dict[int, Switch] = {}
        self.fast_path = network.fast_path if fast_path is None else fast_path
        self.batch = network.batch if batch is None else batch

    def _do_install(self) -> None:
        from repro.core.compiler import compile_service

        for node in self.network.topology.nodes():
            self.switches[node] = compile_service(
                self.network, node, self.service, fast_path=self.fast_path
            )

    def _bind_handlers(self) -> None:
        # repro: allow[SHARD001] install-time drain-mode config, pre-run
        self.network.batch = self.batch
        for node, switch in self.switches.items():
            self.network.set_handler(node, switch.process)
            if self.batch:
                self.network.set_batch_handler(node, switch.process_batch)

    def total_rules(self) -> int:
        self.install()
        return sum(s.rule_count() for s in self.switches.values())

    def total_groups(self) -> int:
        self.install()
        return sum(s.group_count() for s in self.switches.values())


def make_engine(
    network: Network,
    service: Service,
    mode: str = "interpreted",
    fast_path: bool | None = None,
    batch: bool | None = None,
) -> _BaseEngine:
    """Factory: ``mode`` is "interpreted" or "compiled"; ``fast_path``
    selects the compiled switches' packet engine and ``batch`` the batched
    drain mode (None: network default for both)."""
    if mode == "interpreted":
        return InterpretedEngine(network, service)
    if mode == "compiled":
        return CompiledEngine(network, service, fast_path=fast_path, batch=batch)
    raise ValueError(f"unknown engine mode {mode!r}")


class MultiServiceEngine:
    """Several SmartSouth services hosted on one data plane simultaneously.

    In compiled mode every switch gets one pipeline whose table 0 dispatches
    on the packet's ``svc`` field into per-service table blocks (see
    :func:`repro.core.compiler.compile_services`); in interpreted mode a
    per-node dispatcher routes each packet to its service's interpreter.
    Packets with an unknown service id are dropped, as a table-0 miss would.
    """

    def __init__(
        self,
        network: Network,
        services: list[Service],
        mode: str = "compiled",
        fast_path: bool | None = None,
        batch: bool | None = None,
    ) -> None:
        if mode not in ("interpreted", "compiled"):
            raise ValueError(f"unknown engine mode {mode!r}")
        ids = [service.service_id for service in services]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate service ids in {ids}")
        self.network = network
        self.mode = mode
        self.fast_path = network.fast_path if fast_path is None else fast_path
        self.batch = network.batch if batch is None else batch
        self.services: dict[int, Service] = {
            service.service_id: service for service in services
        }
        self.reports: list[tuple[int, Packet]] = []
        self.deliveries: list[tuple[int, Packet]] = []
        self.switches: dict[int, Switch] = {}
        self._interpreters: dict[int, TemplateInterpreter] = {}
        self._installed = False

    def _on_report(self, node: int, packet: Packet) -> None:
        self.reports.append((node, packet))

    def _on_delivery(self, node: int, packet: Packet) -> None:
        self.deliveries.append((node, packet))

    def install(self) -> None:
        if not self._installed:
            if self.mode == "compiled":
                from repro.core.compiler import compile_services

                ordered = list(self.services.values())
                for node in self.network.topology.nodes():
                    self.switches[node] = compile_services(
                        self.network, node, ordered, fast_path=self.fast_path
                    )
            else:
                self._interpreters = {
                    sid: TemplateInterpreter(self.network, service)
                    for sid, service in self.services.items()
                }
            self._installed = True
        self.network.set_controller_sink(self._on_report, passive=True)
        self.network.set_delivery_sink(self._on_delivery, passive=True)
        if self.mode == "compiled":
            # repro: allow[SHARD001] install-time drain-mode config, pre-run
            self.network.batch = self.batch
            for node, switch in self.switches.items():
                self.network.set_handler(node, switch.process)
                if self.batch:
                    self.network.set_batch_handler(node, switch.process_batch)
        else:
            for node in self.network.topology.nodes():
                self.network.set_handler(node, self._make_dispatcher(node))

    def _make_dispatcher(self, node: int):
        def dispatch(packet: Packet, in_port: int):
            interpreter = self._interpreters.get(packet.get(FIELD_SVC))
            if interpreter is None:
                return []  # unknown service id: drop (table-0 miss)
            return interpreter.process(node, packet, in_port)

        return dispatch

    def trigger(
        self,
        service: Service | int,
        root: int,
        fields: dict[str, int] | None = None,
        from_controller: bool = True,
    ) -> TraversalResult:
        """Run one trigger of *service* (an instance or its id) at *root*."""
        self.install()
        service_id = service if isinstance(service, int) else service.service_id
        if service_id not in self.services:
            raise KeyError(f"service id {service_id} not installed")
        packet_fields = {FIELD_SVC: service_id}
        if fields:
            packet_fields.update(fields)
        packet = Packet(fields=packet_fields)

        trace = self.network.trace
        mark_reports = len(self.reports)
        mark_deliveries = len(self.deliveries)
        mark_in = trace.in_band_messages
        mark_out = trace.out_band_messages
        self.network.inject(
            root, packet, in_port=LOCAL_PORT, from_controller=from_controller
        )
        self.network.run()
        return TraversalResult(
            root=root,
            packet=packet,
            reports=self.reports[mark_reports:],
            deliveries=self.deliveries[mark_deliveries:],
            in_band_messages=trace.in_band_messages - mark_in,
            out_band_messages=trace.out_band_messages - mark_out,
        )

    def total_rules(self) -> int:
        self.install()
        return sum(s.rule_count() for s in self.switches.values())
