"""Direct interpreter of Algorithm 1 (the SmartSouth template).

This is the reference semantics: the code below follows the paper's
pseudocode line by line (line numbers in comments), with the service hooks
of Table 1 injected at the labelled points.  The compiled engine
(:mod:`repro.core.compiler`) must produce byte-identical traversals — the
differential tests in ``tests/test_differential.py`` enforce that.
"""

from __future__ import annotations

from repro.core.fields import FIELD_EPOCH, FIELD_START
from repro.core.services.base import HookContext, Service, SmartCounterBank
from repro.net.simulator import Network
from repro.openflow.packet import NO_PORT, Packet
from repro.openflow.switch import PacketOut


class TemplateInterpreter:
    """Runs the SmartSouth template for one service on every node."""

    def __init__(self, network: Network, service: Service) -> None:
        self.network = network
        self.service = service
        self.counters: dict[int, SmartCounterBank] = {
            node: SmartCounterBank() for node in network.topology.nodes()
        }

    def install(self) -> None:
        """Offline stage: register a handler at every node."""
        for node in self.network.topology.nodes():
            self.network.set_handler(node, self._make_handler(node))

    def _make_handler(self, node: int):
        def handler(packet: Packet, in_port: int) -> list[PacketOut]:
            return self.process(node, packet, in_port)

        return handler

    # ------------------------------------------------------------------ #
    # Algorithm 1                                                        #
    # ------------------------------------------------------------------ #

    def process(self, node: int, packet: Packet, in_port: int) -> list[PacketOut]:
        """Process one packet arrival at *node*; returns the emissions."""
        # Epoch gate: the supervisor's origin-side squash of stale-epoch
        # packets (the analogue of a high-priority ``epoch != current ->
        # drop`` rule in table 0).  Runs before any hook so an abandoned
        # attempt can neither report nor keep traversing through the origin.
        gate = self.service.epoch_gate
        if gate is not None and node == gate.origin:
            if not gate.admits(packet.get(FIELD_EPOCH)):
                gate.squashed += 1
                gate.squashed_packets.append(packet.packet_id)
                return []
        topo = self.network.topology
        ctx = HookContext(
            node=node,
            in_port=in_port,
            packet=packet,
            deg=topo.degree(node),
            live=lambda port: self.network.port_live(node, port),
            counters=self.counters[node],
        )
        service = self.service

        # Pre-template hooks: anycast's receiver test ("a simple test at the
        # beginning of the SmartSouth template") and per-arrival processing
        # (the TTL check of blackhole detection, §3.3).
        override = service.pre_dispatch(ctx)
        if override is None:
            override = service.on_arrival(ctx)
        if override is not None:
            ctx.out = override
            return self._finalize(ctx)

        if packet.get(FIELD_START) == 0:  # line 1
            packet.set(FIELD_START, 1)  # line 2
            ctx.out = 1  # line 3
            service.on_trigger(ctx)  # root-side first visit
        else:  # line 4
            if ctx.cur == 0:  # line 5
                ctx.par = in_port  # line 6
                ctx.out = 1
                service.first_visit(ctx)
            elif in_port == ctx.cur:  # line 7
                ctx.out = ctx.cur + 1  # line 8
                service.visit_from_cur(ctx)
            else:  # line 9
                ctx.out = in_port  # line 10
                service.visit_not_from_cur(ctx)
                return self._finalize(ctx)  # line 11: goto 26

        if ctx.skip_sweep:
            # Echo-style hooks emit directly without advancing the sweep.
            return self._finalize(ctx)

        # Port sweep with failover: lines 12-21.
        out = ctx.out
        par = ctx.par
        to_parent = False
        if out == ctx.deg + 1:  # line 12
            to_parent = True  # line 13-14
        else:
            while not ctx.live(out) or out == par:  # line 15
                out += 1  # line 16
                if out == ctx.deg + 1:  # line 17
                    to_parent = True  # line 18-19
                    break

        if to_parent:
            ctx.out = par  # lines 13/18
            service.send_parent(ctx)  # line 22
            ctx.cur = ctx.out  # line 23
            if ctx.out == NO_PORT:  # line 24
                service.finish(ctx)  # line 25 (root only)
            return self._finalize(ctx)  # line 26

        ctx.out = out
        service.send_next_neighbor(ctx)  # line 20
        ctx.cur = ctx.out  # line 23
        return self._finalize(ctx)  # line 26

    @staticmethod
    def _finalize(ctx: HookContext) -> list[PacketOut]:
        outputs = list(ctx.extra_outputs)
        if ctx.out != NO_PORT:
            outputs.append(PacketOut(ctx.out, ctx.packet))
        return outputs
