"""SmartSouth header-field names and the exact bit-level tag layout.

The paper reserves, per node *i*, header bits for the tag ``v_i``: the parent
port ``pkt.v_i.par`` and the currently-probed port ``pkt.v_i.cur``, plus
global fields (``start`` and per-service fields).  In the simulator these are
named packet fields; :class:`TagLayout` computes the *packed* layout a real
deployment would use, so the header-size numbers in the paper's §3.5 (the
"O(n log n) bits" DFS part, the 0.5 KB packet budget) can be measured rather
than estimated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.net.topology import Topology
from repro.openflow.packet import Packet

# --------------------------------------------------------------------- #
# Field names                                                           #
# --------------------------------------------------------------------- #

#: Traversal phase: 0 = not started, 1 = first traversal, 2 = second
#: (priocast's second phase).  The paper extends ``start`` "to be ternary".
FIELD_START = "start"
#: Service selector, so several services can share a pipeline.  Value 0 is
#: reserved for ordinary data traffic (counted by the packet-loss monitor).
FIELD_SVC = "svc"
#: Anycast group id carried by the request.
FIELD_GID = "gid"
#: Priocast: id of the best receiver found so far.
FIELD_OPT_ID = "opt_id"
#: Priocast: priority of the best receiver found so far.
FIELD_OPT_VAL = "opt_val"
#: Blackhole: echo/phase state (3 = probe, 2/1 = echo, 0 = verify phase).
FIELD_REPEAT = "repeat"
#: Blackhole (TTL variant): remaining hop budget.
FIELD_TTL = "ttl"
#: First out-port used by the root (priocast restart, critical node).
FIELD_FIRST_PORT = "firstport"
#: Set on packets travelling to a DFS parent (critical-node detection).
FIELD_TO_PARENT = "toparent"
#: Scratch field written by smart-counter groups (a fetch result).
FIELD_SCRATCH = "scratch"
#: Second scratch field (packet-loss monitor comparisons).
FIELD_SCRATCH2 = "scratch2"
#: Service-chain position (anycast chaining extension).
FIELD_CHAIN_IDX = "chain_idx"
#: Remaining record budget of a chunked snapshot (decremented per record).
FIELD_RECCAP = "reccap"
#: Set on the final snapshot report (vs. an intermediate chunk).
FIELD_SNAP_DONE = "snapdone"
#: Supervision epoch tag (0 = unsupervised).  The traversal supervisor
#: stamps each trigger with the current epoch so the origin can squash
#: stale packets from abandoned attempts (see ``repro.core.epoch``).
FIELD_EPOCH = "epoch"

#: Field bit-widths for the packed layout (per-node tags are sized from the
#: topology; these are the global fields).
GLOBAL_FIELD_BITS: dict[str, int] = {
    FIELD_START: 2,
    FIELD_SVC: 4,
    FIELD_GID: 16,
    FIELD_OPT_ID: 16,
    FIELD_OPT_VAL: 8,
    FIELD_REPEAT: 2,
    FIELD_TTL: 16,
    FIELD_FIRST_PORT: 8,
    FIELD_TO_PARENT: 1,
    FIELD_SCRATCH: 8,
    FIELD_SCRATCH2: 8,
    FIELD_CHAIN_IDX: 4,
    FIELD_RECCAP: 8,
    FIELD_SNAP_DONE: 1,
    FIELD_EPOCH: 6,
}

#: Width (bits) of the supervision epoch tag: epochs live in 1..2^bits - 1
#: and wrap around, giving a 63-epoch staleness window.
EPOCH_BITS = GLOBAL_FIELD_BITS[FIELD_EPOCH]

#: Width (bits) of the priocast priority / opt_val domain.
OPT_VAL_BITS = GLOBAL_FIELD_BITS[FIELD_OPT_VAL]


def par_field(node: int) -> str:
    """Name of node *node*'s parent-port tag field (``pkt.v_i.par``)."""
    return f"v{node}.par"


def cur_field(node: int) -> str:
    """Name of node *node*'s current-port tag field (``pkt.v_i.cur``)."""
    return f"v{node}.cur"


def port_bits(degree: int) -> int:
    """Bits needed to store a port number 0..degree."""
    return max(1, degree.bit_length())


# --------------------------------------------------------------------- #
# Packed layout                                                         #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class FieldSlot:
    """Bit position of one field in the packed header."""

    name: str
    offset: int
    width: int


class TagLayout:
    """The packed bit layout of a SmartSouth header for a given topology.

    Layout: global fields first, then per-node ``par``/``cur`` slots sized by
    each node's degree.  :meth:`pack`/:meth:`unpack` round-trip a packet's
    SmartSouth fields through the packed representation, proving the layout
    is faithful; :meth:`total_bits` feeds the header-size experiments.
    """

    def __init__(self, topology: Topology) -> None:
        self._slots: dict[str, FieldSlot] = {}
        offset = 0
        for name, width in GLOBAL_FIELD_BITS.items():
            self._slots[name] = FieldSlot(name, offset, width)
            offset += width
        self._tag_offset = offset
        for node in topology.nodes():
            width = port_bits(topology.degree(node))
            for name in (par_field(node), cur_field(node)):
                self._slots[name] = FieldSlot(name, offset, width)
                offset += width
        self._total_bits = offset
        self._topology = topology

    @property
    def total_bits(self) -> int:
        """Size of the packed header in bits."""
        return self._total_bits

    @property
    def total_bytes(self) -> int:
        """Size of the packed header in whole bytes."""
        return (self._total_bits + 7) // 8

    @property
    def tag_bits(self) -> int:
        """Bits used by the per-node DFS tags only (the paper's
        "another O(n log n) bits")."""
        return self._total_bits - self._tag_offset

    def slot(self, name: str) -> FieldSlot:
        return self._slots[name]

    def has_field(self, name: str) -> bool:
        return name in self._slots

    def pack(self, fields: Mapping[str, int]) -> int:
        """Pack a field mapping into a single integer header."""
        header = 0
        for name, value in fields.items():
            slot = self._slots.get(name)
            if slot is None:
                raise KeyError(f"field {name!r} not in layout")
            if value < 0 or value >= (1 << slot.width):
                raise ValueError(
                    f"value {value} does not fit field {name!r} "
                    f"({slot.width} bits)"
                )
            header |= value << slot.offset
        return header

    def unpack(self, header: int) -> dict[str, int]:
        """Unpack an integer header into a {field: value} mapping.

        Zero-valued fields are omitted, matching the packet model's
        "absent reads as 0" convention.
        """
        fields: dict[str, int] = {}
        for slot in self._slots.values():
            value = (header >> slot.offset) & ((1 << slot.width) - 1)
            if value:
                fields[slot.name] = value
        return fields

    def pack_packet(self, packet: Packet) -> int:
        """Pack the SmartSouth fields of *packet* (others are ignored)."""
        known = {k: v for k, v in packet.fields.items() if k in self._slots}
        return self.pack(known)

    # ------------------------------------------------------------------ #
    # Record (label-stack) sizing, for snapshot payload measurements     #
    # ------------------------------------------------------------------ #

    def record_bits(self) -> dict[str, int]:
        """Bit cost of each snapshot record type on this topology."""
        node_bits = max(1, (self._topology.num_nodes - 1).bit_length())
        pbits = port_bits(self._topology.max_degree())
        type_bits = 2  # VISIT / OUT / RET
        return {
            "visit": type_bits + node_bits + pbits,
            "out": type_bits + pbits,
            "ret": type_bits,
        }

    def stack_bits(self, stack: list[tuple]) -> int:
        """Packed size in bits of a snapshot record stack."""
        costs = self.record_bits()
        total = 0
        for record in stack:
            kind = record[0]
            total += costs.get(kind, costs["visit"])
        return total
