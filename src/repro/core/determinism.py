"""The one place this codebase is allowed to touch randomness or clocks.

Every pillar of the reproduction — golden traces, counterexample replay,
seeded chaos, the fast-path differential suite — rests on runs being
bit-for-bit deterministic, and the roadmap's sharded simulator will demand
that determinism *per worker process*.  So randomness and time are
centralized here:

* **Randomness** comes only from :func:`seeded_rng` (a fresh
  ``random.Random`` with an explicit seed — never the process-global RNG,
  never OS entropy) or from :func:`derive_rng`, which derives stable
  sub-seeds from a master seed and string labels.  Sub-seed derivation uses
  SHA-256, *not* the builtin ``hash()``, so it is identical across
  processes and ``PYTHONHASHSEED`` values — a requirement once seeds are
  dealt out to shard workers.
* **Time** is the simulator's virtual clock (``network.sim.now``) or the
  packet-step logical clock (``network.packet_steps``); wall-clock reads
  are confined to :func:`wall_clock`, which exists for benchmark harnesses
  and must never feed a trace, result payload, or seed.

The static analyzer (:mod:`repro.analysis.static`) enforces this split:
``DET001``/``DET003`` flag direct RNG and clock access everywhere *except*
this module, which is the allowlisted provider.
"""

from __future__ import annotations

import hashlib
import random

#: The RNG type handed out by this module (an alias so call sites can
#: annotate without importing :mod:`random` themselves).
Rng = random.Random

_SEED_MASK = (1 << 63) - 1


def seeded_rng(seed: int) -> Rng:
    """A fresh deterministic RNG stream for *seed*.

    ``None`` is rejected on purpose: ``random.Random(None)`` silently falls
    back to OS entropy, which is exactly the hazard this module exists to
    prevent.
    """
    if seed is None:
        raise ValueError(
            "refusing an unseeded RNG: pass an explicit integer seed "
            "(random.Random(None) would read OS entropy)"
        )
    return random.Random(seed)


def derive_seed(master: int, *labels: object) -> int:
    """A stable sub-seed from *master* and any hashable-as-text labels.

    The derivation is ``SHA-256(master ':' label ':' label ...)`` truncated
    to 63 bits: independent labels give independent streams, and the result
    is identical in every process regardless of ``PYTHONHASHSEED`` —
    builtin ``hash()`` would not be.
    """
    digest = hashlib.sha256(
        ":".join([str(int(master)), *(str(label) for label in labels)]).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


def derive_rng(master: int, *labels: object) -> Rng:
    """A fresh RNG on the sub-seed :func:`derive_seed` gives for *labels*."""
    return seeded_rng(derive_seed(master, *labels))


class PacketIdAllocator:
    """Sequential id allocation behind an owned object, not a module global.

    Packet ids are bookkeeping, never matched on — but they appear in
    traces, so byte-identical replay needs a resettable, deterministic
    source.  Owning the cursor as instance state (instead of rebinding a
    module-level ``itertools.count``, the old EFF001 debt in
    ``shardcheck-baseline.json``) keeps the mutation inside one object the
    sharded simulator can place per worker or proxy across the channel.
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def allocate(self) -> int:
        """Hand out the next id (sequential from the configured start)."""
        value = self._next
        self._next = value + 1
        return value

    def reset(self, start: int = 1) -> None:
        """Restart the sequence (test/bench support for golden traces)."""
        self._next = start


#: The process-wide allocator instance behind :func:`next_packet_id`.
_PACKET_IDS = PacketIdAllocator()


def next_packet_id() -> int:
    """Allocate the next packet id (the provider seam traces rely on)."""
    return _PACKET_IDS.allocate()


def reset_packet_ids(start: int = 1) -> None:
    """Restart the packet-id sequence at *start*.

    Runs that must produce byte-identical traces (the fast-path
    differential suite, the golden-trace corpus, chaos campaigns) call
    this before each scenario.
    """
    _PACKET_IDS.reset(start)


def wall_clock() -> float:
    """The explicit wall-clock escape hatch (``time.perf_counter``).

    Benchmark harnesses may time real work with this; simulation code,
    services, and anything whose output is traced, asserted, or serialized
    must use the virtual clock instead.  Keeping the only wall-clock read
    in this module is what lets ``DET003`` flag every other one.
    """
    import time

    return time.perf_counter()
