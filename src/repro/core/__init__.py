"""SmartSouth: the paper's contribution.

The package is organized around two execution engines that share one
semantics:

* :mod:`repro.core.template` — a direct interpreter of Algorithm 1 plus the
  Table 1 service hooks (the *reference* semantics, readable side-by-side
  with the paper),
* :mod:`repro.core.compiler` — a compiler from the same template + hooks to
  concrete OpenFlow 1.3 flow tables and groups, executed by the
  :mod:`repro.openflow` switch model (the paper's *expressibility claim*,
  made constructive).

:mod:`repro.core.engine` wraps both behind a common API;
:mod:`repro.core.runtime` adds the offline install stage and trigger/collect
orchestration; :mod:`repro.core.services` hosts the four case studies.
"""

from repro.core.engine import (
    CompiledEngine,
    InterpretedEngine,
    MultiServiceEngine,
    TraversalResult,
    make_engine,
)
from repro.core.fields import (
    FIELD_GID,
    FIELD_OPT_ID,
    FIELD_OPT_VAL,
    FIELD_REPEAT,
    FIELD_START,
    FIELD_SVC,
    FIELD_TTL,
    TagLayout,
    cur_field,
    par_field,
)
from repro.core.runtime import SmartSouthRuntime
from repro.core.services import (
    AnycastService,
    BlackholeService,
    CriticalNodeService,
    PlainTraversalService,
    PriocastService,
    Service,
    SnapshotService,
)

__all__ = [
    "AnycastService",
    "BlackholeService",
    "CompiledEngine",
    "CriticalNodeService",
    "FIELD_GID",
    "FIELD_OPT_ID",
    "FIELD_OPT_VAL",
    "FIELD_REPEAT",
    "FIELD_START",
    "FIELD_SVC",
    "FIELD_TTL",
    "InterpretedEngine",
    "MultiServiceEngine",
    "PlainTraversalService",
    "PriocastService",
    "Service",
    "SmartSouthRuntime",
    "SnapshotService",
    "TagLayout",
    "TraversalResult",
    "cur_field",
    "make_engine",
    "par_field",
]
