"""Compile the SmartSouth template + service hooks into OpenFlow rules.

This module is the constructive proof of the paper's central claim: that the
whole mechanism fits in the standard OpenFlow 1.3 match-action paradigm.  For
each node the compiler emits a pipeline of flow tables and a set of groups
that realize Algorithm 1 with the service hooks of Table 1, using only:

* masked exact matches (incl. range-to-prefix expansion for priocast's
  ``opt_val < priority`` test, cf. the paper's reference [2]),
* per-port rule enumeration where OpenFlow lacks a primitive (there is no
  "copy in_port into a field" action and no field-to-field comparison — the
  snapshot ``in < cur`` test becomes O(Δ²) rules),
* set-field / push / pop / output / dec-ttl actions,
* fast-failover groups for the port sweep (one per (sweep-start, parent)
  pair — O(Δ²) groups per node, measured by the C-tablesize experiment),
* round-robin SELECT groups as smart counters,
* pipeline metadata to carry the sweep start port between tables.

Pipeline layout (table ids)::

    0  DISPATCH       service pre-dispatch & per-arrival rules (anycast gid
                      test, TTL check/decrement); default: goto CLASSIFY
    1  CLASSIFY       Algorithm 1 state decode: trigger / first visit /
                      advance / bounce; writes metadata.sweep; may goto BID
    2  BID            priocast phase-1 bidding (range-expanded opt_val test)
    3  SWEEP          metadata.sweep × parent → fast-failover sweep group
                      (root rows also match the Finish-variant fields)
    4  VERIFY_SWEEP   blackhole phase B: table-driven sweep + counter fetch
    5  VERIFY_CHECK   blackhole phase B: fetched-value test, report on 1

Known fidelity limits (documented in DESIGN.md):

* blackhole phase B selects ports in tables (a counter fetch must be
  followed by a match, which buckets cannot do), so it has no fast-failover;
  the paper itself assumes no failures during execution;
* the packet-loss monitor and the load-audit service are interpreted-only.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.fields import (
    FIELD_FIRST_PORT,
    FIELD_GID,
    FIELD_OPT_ID,
    FIELD_OPT_VAL,
    FIELD_RECCAP,
    FIELD_REPEAT,
    FIELD_SCRATCH,
    FIELD_SNAP_DONE,
    FIELD_START,
    FIELD_SVC,
    FIELD_TO_PARENT,
    FIELD_TTL,
    OPT_VAL_BITS,
    cur_field,
    par_field,
)
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import PlainTraversalService, Service
from repro.core.services.blackhole import (
    BH_DONE,
    BH_FOUND,
    FIELD_BH,
    FIELD_REPORT_IN,
    FIELD_REPORT_PORT,
    REPEAT_ECHO,
    REPEAT_ECHO_BACK,
    REPEAT_PROBE,
    REPEAT_VERIFY,
    BlackholeService,
    BlackholeTtlService,
)
from repro.core.services.critical import (
    CRITICAL,
    FIELD_CRITICAL,
    NOT_CRITICAL,
    CriticalNodeService,
)
from repro.core.services.snapshot import ChunkedSnapshotService, SnapshotService
from repro.core.smart_counter import build_counter_group
from repro.net.simulator import Network
from repro.openflow.actions import (
    Action,
    DecTtl,
    GroupAction,
    Instructions,
    Output,
    PopLabel,
    PushLabel,
    SetField,
)
from repro.openflow.match import FieldTest, Match, encode_range
from repro.openflow.packet import CONTROLLER_PORT, IN_PORT, LOCAL_PORT
from repro.openflow.switch import Switch

# Table ids.
T_DISPATCH = 0
T_CLASSIFY = 1
T_BID = 2
T_SWEEP = 3
T_VERIFY_SWEEP = 4
T_VERIFY_CHECK = 5

# Metadata register layout: bits 0..7 sweep start port, bits 8..15 the
# port being verified (blackhole phase B), bits 16..17 the send kind.
META_SWEEP_MASK = 0x0000FF
META_PORT_SHIFT = 8
META_PORT_MASK = 0x00FF00
META_KIND_SHIFT = 16
META_KIND_MASK = 0x030000
KIND_PROBE = 0
KIND_BOUNCE = 1
KIND_PARENT = 2

# Group-id layout (per switch).
COUNTER_GROUP_BASE = 1  # counter for port p has id COUNTER_GROUP_BASE + p
SWEEP_GROUP_BASE = 1000


def meta_sweep(s: int) -> tuple[int, int]:
    """write_metadata payload selecting sweep start *s*."""
    return (s, META_SWEEP_MASK)


def meta_verify(port: int, kind: int) -> tuple[int, int]:
    """write_metadata payload for the verify-check table."""
    value = (port << META_PORT_SHIFT) | (kind << META_KIND_SHIFT)
    return (value, META_PORT_MASK | META_KIND_MASK)


def match_meta_sweep(s: int, **exact: int) -> Match:
    return Match([FieldTest("metadata", s, META_SWEEP_MASK)], **exact)


def match_meta_verify(port: int, kind: int, **exact: int) -> Match:
    value = (port << META_PORT_SHIFT) | (kind << META_KIND_SHIFT)
    return Match(
        [FieldTest("metadata", value, META_PORT_MASK | META_KIND_MASK)], **exact
    )


class FinishVariant:
    """One root-finish behaviour: extra match fields select it, and its
    actions become the terminal bucket of the root's sweep groups."""

    def __init__(
        self, match: dict[str, int], actions: Sequence[Action], priority: int = 0
    ) -> None:
        self.match = dict(match)
        self.actions = tuple(actions)
        self.priority = priority


class Codegen:
    """Per-node emission context shared by the service code generators.

    ``table_base`` and ``group_base`` relocate a service's whole pipeline
    block, so several services can share one switch (multi-service install,
    see :func:`compile_services`): logical table ids T_* become
    ``table_base + T_*`` and group ids are offset likewise.
    """

    def __init__(
        self,
        switch: Switch,
        node: int,
        deg: int,
        service: Service,
        table_base: int = 0,
        group_base: int = 0,
    ) -> None:
        self.switch = switch
        self.node = node
        self.deg = deg
        self.service = service
        self.table_base = table_base
        self.group_base = group_base
        self.par = par_field(node)
        self.cur = cur_field(node)
        self._next_group = group_base + SWEEP_GROUP_BASE

    def alloc_group(self) -> int:
        gid = self._next_group
        self._next_group += 1
        return gid

    def counter_group_id(self, port: int) -> int:
        """The (relocated) smart-counter group id for *port*."""
        return self.group_base + COUNTER_GROUP_BASE + port

    def install(
        self,
        table: int,
        match: Match,
        actions: Iterable[Action] = (),
        goto: int | None = None,
        meta: tuple[int, int] | None = None,
        priority: int = 0,
        cookie: str = "",
    ) -> None:
        self.switch.install(
            self.table_base + table,
            match,
            Instructions(
                apply_actions=tuple(actions),
                goto_table=None if goto is None else self.table_base + goto,
                write_metadata=meta,
            ),
            priority=priority,
            cookie=cookie,
        )


class ServiceCodegen:
    """Default code generation: the plain traversal.

    Subclasses override the hook-action providers (mirroring Table 1's
    columns) or whole emission phases when the service changes the template
    control flow (blackhole's echo protocol).
    """

    #: Does this service route first visits through the BID table?
    uses_bid_table = False

    def __init__(self, service: Service, node: int, deg: int) -> None:
        self.service = service
        self.node = node
        self.deg = deg
        self._cg: Codegen | None = None

    def bind(self, cg: Codegen) -> None:
        """Attach the emission context (needed by providers that allocate
        relocated group ids, e.g. the blackhole counters)."""
        self._cg = cg

    # -- hook-action providers (all arguments are compile-time constants) --

    def trigger_actions(self) -> list[Action]:
        return []

    def first_visit_actions(self, in_port: int) -> list[Action]:
        return []

    def advance_actions(self, cur: int, root: bool) -> list[Action]:
        """Visit_from_cur actions; ``root`` selects the par=0 rule variant."""
        return []

    def rootfirst_actions(self, out_port: int) -> list[Action]:
        """Actions of the root's very first send (par=0 and cur=0)."""
        return []

    def send_next_actions(self, out_port: int) -> list[Action]:
        return []

    def send_parent_actions(self, par: int) -> list[Action]:
        return []

    def finish_variants(self) -> list[FinishVariant]:
        return [FinishVariant({}, [Output(self.service.report_destination)])]

    # -- emission phases ---------------------------------------------------

    def emit_dispatch(self, cg: Codegen) -> None:
        """T_DISPATCH: default is a bare goto CLASSIFY."""
        cg.install(T_DISPATCH, Match(), goto=T_CLASSIFY, cookie="dispatch:default")

    def emit_classify(self, cg: Codegen) -> None:
        """T_CLASSIFY: the generic Algorithm 1 state decode."""
        after = T_BID if self.uses_bid_table else T_SWEEP
        # Trigger (start = 0): this node becomes the DFS root.
        cg.install(
            T_CLASSIFY,
            Match(**{FIELD_START: 0}),
            actions=[SetField(FIELD_START, 1)] + self.trigger_actions(),
            meta=meta_sweep(0),
            goto=after,
            priority=100,
            cookie="classify:trigger",
        )
        self.emit_classify_overrides(cg)
        # First visit (cur = 0): adopt the arrival port as parent.
        for p in range(1, self.deg + 1):
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: 0, "in_port": p}),
                actions=[SetField(cg.par, p)] + self.first_visit_actions(p),
                meta=meta_sweep(1),
                goto=after,
                priority=50,
                cookie=f"classify:first_visit:{p}",
            )
        # Advance (in = cur): continue the sweep at cur + 1.
        for c in range(1, self.deg + 1):
            root_actions = self.advance_actions(c, root=True)
            plain_actions = self.advance_actions(c, root=False)
            if root_actions != plain_actions:
                cg.install(
                    T_CLASSIFY,
                    Match(**{cg.cur: c, "in_port": c, cg.par: 0}),
                    actions=root_actions,
                    meta=meta_sweep(c + 1),
                    goto=T_SWEEP,
                    priority=51,
                    cookie=f"classify:advance_root:{c}",
                )
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: c, "in_port": c}),
                actions=plain_actions,
                meta=meta_sweep(c + 1),
                goto=T_SWEEP,
                priority=50,
                cookie=f"classify:advance:{c}",
            )
        self.emit_bounce_rules(cg)

    def emit_classify_overrides(self, cg: Codegen) -> None:
        """Service-specific high-priority classify rules."""

    def emit_bounce_rules(self, cg: Codegen) -> None:
        """Visit_not_from_cur: default just returns the packet."""
        cg.install(
            T_CLASSIFY,
            Match(),
            actions=[Output(IN_PORT)],
            priority=5,
            cookie="classify:bounce",
        )

    def emit_bid_table(self, cg: Codegen) -> None:
        """T_BID (priocast only)."""

    def emit_extra_tables(self, cg: Codegen) -> None:
        """Extra tables/groups (blackhole's counters and verify pipeline)."""

    # -- the generic sweep table and its fast-failover groups --------------

    def emit_sweep(self, cg: Codegen) -> None:
        deg = self.deg
        variants = self.finish_variants()
        for s in range(0, deg + 2):
            if s == 0 or 1 <= s <= deg + 1:
                self._emit_root_row(cg, s, variants)
            if 1 <= s:
                for p in range(1, deg + 1):
                    self._emit_nonroot_row(cg, s, p)

    def _probe_bucket(self, cg: Codegen, q: int, rootfirst: bool):
        from repro.openflow.group import Bucket

        actions: list[Action] = []
        if rootfirst:
            actions += self.rootfirst_actions(q)
        actions += self.send_next_actions(q)
        actions += [SetField(cg.cur, q), Output(q)]
        return Bucket(actions=actions, watch_port=q)

    def _emit_root_row(
        self, cg: Codegen, s: int, variants: list[FinishVariant]
    ) -> None:
        from repro.openflow.group import Bucket, Group, GroupType

        deg = self.deg
        first = max(s, 1)
        for index, variant in enumerate(variants):
            # One entry per finish variant: a variant index in the cookie
            # keeps per-entry diagnostics (verify / lint) unambiguous when a
            # service has several variants (e.g. priocast's phase switch).
            suffix = f":v{index}" if len(variants) > 1 else ""
            if s == deg + 1 or first > deg:
                # No ports left to try: finish immediately via table actions.
                cg.install(
                    T_SWEEP,
                    match_meta_sweep(s, **{cg.par: 0}, **variant.match),
                    actions=list(variant.actions),
                    priority=10 + variant.priority,
                    cookie=f"sweep:root_finish:s{s}{suffix}",
                )
                continue
            buckets = [
                self._probe_bucket(cg, q, rootfirst=(s == 0))
                for q in range(first, deg + 1)
            ]
            buckets.append(Bucket(actions=variant.actions, watch_port=None))
            gid = cg.alloc_group()
            cg.switch.add_group(Group(gid, GroupType.FF, buckets))
            cg.install(
                T_SWEEP,
                match_meta_sweep(s, **{cg.par: 0}, **variant.match),
                actions=[GroupAction(gid)],
                priority=10 + variant.priority,
                cookie=f"sweep:root:s{s}{suffix}",
            )

    def _emit_nonroot_row(self, cg: Codegen, s: int, p: int) -> None:
        from repro.openflow.group import Bucket, Group, GroupType

        deg = self.deg
        parent_actions = (
            self.send_parent_actions(p) + [SetField(cg.cur, p), Output(p)]
        )
        ports = [q for q in range(s, deg + 1) if q != p]
        if not ports:
            cg.install(
                T_SWEEP,
                match_meta_sweep(s, **{cg.par: p}),
                actions=parent_actions,
                priority=10,
                cookie=f"sweep:parent:s{s}:p{p}",
            )
            return
        buckets = [self._probe_bucket(cg, q, rootfirst=False) for q in ports]
        buckets.append(Bucket(actions=parent_actions, watch_port=None))
        gid = cg.alloc_group()
        cg.switch.add_group(Group(gid, GroupType.FF, buckets))
        cg.install(
            T_SWEEP,
            match_meta_sweep(s, **{cg.par: p}),
            actions=[GroupAction(gid)],
            priority=10,
            cookie=f"sweep:s{s}:p{p}",
        )


# --------------------------------------------------------------------- #
# Per-service code generators                                           #
# --------------------------------------------------------------------- #


class SnapshotCodegen(ServiceCodegen):
    """Snapshot: record pushes/pops; the in < cur test is rule-enumerated."""

    def _push(self, record: tuple) -> list[Action]:
        """Actions recording one topology record (chunked variant also
        spends header budget here)."""
        return [PushLabel(record)]

    def first_visit_actions(self, in_port: int) -> list[Action]:
        return self._push(("visit", self.node, in_port))

    def rootfirst_actions(self, out_port: int) -> list[Action]:
        # The root's self-record must precede its first out record; both
        # live in the same bucket so ordering is guaranteed.
        return self._push(("visit", self.node, 0))

    def send_next_actions(self, out_port: int) -> list[Action]:
        return self._push(("out", out_port))

    def send_parent_actions(self, par: int) -> list[Action]:
        return self._push(("ret",))

    def finish_variants(self) -> list[FinishVariant]:
        return [
            FinishVariant(
                {},
                [
                    SetField(FIELD_SNAP_DONE, 1),
                    Output(self.service.report_destination),
                ],
            )
        ]

    def emit_bounce_rules(self, cg: Codegen) -> None:
        deg = self.deg
        bounce = [Output(IN_PORT)]
        # Known edge: pop the sender's record.  Three rule families encode
        # "in < cur or cur = par or in = par" without field comparisons.
        for p in range(1, deg + 1):
            cg.install(
                T_CLASSIFY,
                Match(**{"in_port": p, cg.par: p}),
                actions=[PopLabel()] + bounce,
                priority=8,
                cookie=f"classify:bounce_par:{p}",
            )
        for c in range(1, deg + 1):
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: c, cg.par: c}),
                actions=[PopLabel()] + bounce,
                priority=7,
                cookie=f"classify:bounce_done:{c}",
            )
        for c in range(2, deg + 1):
            for p in range(1, c):
                cg.install(
                    T_CLASSIFY,
                    Match(**{"in_port": p, cg.cur: c}),
                    actions=[PopLabel()] + bounce,
                    priority=6,
                    cookie=f"classify:bounce_lt:{p}<{c}",
                )
        # New edge: record this endpoint.
        for p in range(1, deg + 1):
            cg.install(
                T_CLASSIFY,
                Match(**{"in_port": p}),
                actions=self._push(("visit", self.node, p)) + bounce,
                priority=5,
                cookie=f"classify:bounce_new:{p}",
            )


class ChunkedSnapshotCodegen(SnapshotCodegen):
    """Chunked snapshot: budget-tracked pushes plus per-port flush rules."""

    def _push(self, record: tuple) -> list[Action]:
        return [PushLabel(record), DecTtl(FIELD_RECCAP)]

    def emit_dispatch(self, cg: Codegen) -> None:
        for p in range(1, self.deg + 1):
            cg.install(
                T_DISPATCH,
                Match(**{FIELD_RECCAP: 0, "in_port": p}),
                actions=[
                    SetField(FIELD_REPORT_IN, p),
                    Output(CONTROLLER_PORT),
                ],
                priority=100,
                cookie=f"dispatch:flush:{p}",
            )
        cg.install(T_DISPATCH, Match(), goto=T_CLASSIFY, cookie="dispatch:default")


class AnycastCodegen(ServiceCodegen):
    """Anycast: the gid test sits in the dispatch table; lost requests die
    silently at the root (0 out-of-band messages)."""

    def emit_dispatch(self, cg: Codegen) -> None:
        service: AnycastService = self.service  # type: ignore[assignment]
        for gid in sorted(service.groups_of(self.node)):
            cg.install(
                T_DISPATCH,
                Match(**{FIELD_GID: gid}),
                actions=[Output(LOCAL_PORT)],
                priority=100,
                cookie=f"dispatch:gid:{gid}",
            )
        cg.install(T_DISPATCH, Match(), goto=T_CLASSIFY, cookie="dispatch:default")

    def finish_variants(self) -> list[FinishVariant]:
        return [FinishVariant({}, [])]  # drop: no receiver reachable


class PriocastCodegen(ServiceCodegen):
    """Priocast: bid table in phase 1, restart/deliver rules for phase 2."""

    uses_bid_table = True

    def rootfirst_actions(self, out_port: int) -> list[Action]:
        return [SetField(FIELD_FIRST_PORT, out_port)]

    def emit_classify_overrides(self, cg: Codegen) -> None:
        # Phase-2 entry: the packet arrives from the parent port again.
        service: PriocastService = self.service  # type: ignore[assignment]
        for p in range(1, self.deg + 1):
            cg.install(
                T_CLASSIFY,
                Match(
                    **{
                        FIELD_START: 2,
                        "in_port": p,
                        cg.par: p,
                        FIELD_OPT_ID: self.node + 1,
                    }
                ),
                actions=[Output(LOCAL_PORT)],
                priority=90,
                cookie=f"classify:p2_deliver:{p}",
            )
            cg.install(
                T_CLASSIFY,
                Match(**{FIELD_START: 2, "in_port": p, cg.par: p}),
                meta=meta_sweep(1),
                goto=T_SWEEP,
                priority=85,
                cookie=f"classify:p2_restart:{p}",
            )

    def emit_bid_table(self, cg: Codegen) -> None:
        service: PriocastService = self.service  # type: ignore[assignment]
        for gid in sorted(service.groups_of(self.node)):
            priority_value = service.priority_of(self.node, gid)
            assert priority_value is not None
            cubes = encode_range(0, priority_value - 1, OPT_VAL_BITS)
            for index, (value, mask) in enumerate(cubes):
                # Index the cookie per range cube so diagnostics can point
                # at the exact entry, not just the (gid) rule family.
                suffix = f":r{index}" if len(cubes) > 1 else ""
                cg.install(
                    T_BID,
                    Match(
                        [FieldTest(FIELD_OPT_VAL, value, mask)],
                        **{FIELD_GID: gid, FIELD_START: 1},
                    ),
                    actions=[
                        SetField(FIELD_OPT_VAL, priority_value),
                        SetField(FIELD_OPT_ID, self.node + 1),
                    ],
                    goto=T_SWEEP,
                    priority=10,
                    cookie=f"bid:{gid}{suffix}",
                )
        cg.install(T_BID, Match(), goto=T_SWEEP, cookie="bid:default")

    def finish_variants(self) -> list[FinishVariant]:
        variants = [
            FinishVariant(
                {FIELD_START: 1, FIELD_OPT_ID: self.node + 1},
                [Output(LOCAL_PORT)],
                priority=3,
            )
        ]
        for f in range(1, self.deg + 1):
            variants.append(
                FinishVariant(
                    {FIELD_START: 1, FIELD_FIRST_PORT: f},
                    [
                        SetField(FIELD_START, 2),
                        SetField(cur_field(self.node), f),
                        Output(f),
                    ],
                    priority=2,
                )
            )
        variants.append(FinishVariant({FIELD_START: 1}, [], priority=1))
        variants.append(FinishVariant({FIELD_START: 2}, [], priority=1))
        return variants


class CriticalCodegen(ServiceCodegen):
    """Critical node: toparent bookkeeping plus the root's verdict rules."""

    def rootfirst_actions(self, out_port: int) -> list[Action]:
        return [SetField(FIELD_FIRST_PORT, out_port)]

    def send_next_actions(self, out_port: int) -> list[Action]:
        return [SetField(FIELD_TO_PARENT, 0)]

    def send_parent_actions(self, par: int) -> list[Action]:
        return [SetField(FIELD_TO_PARENT, 1)]

    def advance_actions(self, cur: int, root: bool) -> list[Action]:
        # The root clears toparent after inspecting it (the inspection
        # itself is the higher-priority verdict rule below).
        return [SetField(FIELD_TO_PARENT, 0)] if root else []

    def emit_classify_overrides(self, cg: Codegen) -> None:
        # Root verdict: a toparent=1 return on a port other than firstport
        # means a second DFS child exists -> critical.
        for c in range(1, self.deg + 1):
            for f in range(1, self.deg + 1):
                if f == c:
                    continue
                cg.install(
                    T_CLASSIFY,
                    Match(
                        **{
                            cg.par: 0,
                            cg.cur: c,
                            "in_port": c,
                            FIELD_TO_PARENT: 1,
                            FIELD_FIRST_PORT: f,
                        }
                    ),
                    actions=[
                        SetField(FIELD_CRITICAL, CRITICAL),
                        Output(self.service.report_destination),
                    ],
                    priority=60,
                    cookie=f"classify:critical:{c}",
                )

    def finish_variants(self) -> list[FinishVariant]:
        return [
            FinishVariant(
                {},
                [
                    SetField(FIELD_CRITICAL, NOT_CRITICAL),
                    Output(self.service.report_destination),
                ],
            )
        ]


class TtlCodegen(ServiceCodegen):
    """TTL blackhole probes: check-and-report, else decrement, in dispatch."""

    def emit_dispatch(self, cg: Codegen) -> None:
        for p in range(1, self.deg + 1):
            cg.install(
                T_DISPATCH,
                Match(**{FIELD_TTL: 0, "in_port": p}),
                actions=[
                    SetField(FIELD_BH, BH_FOUND),
                    SetField(FIELD_REPORT_IN, p),
                    Output(CONTROLLER_PORT),
                ],
                priority=100,
                cookie=f"dispatch:ttl0:{p}",
            )
        cg.install(
            T_DISPATCH,
            Match(**{FIELD_TTL: 0}),
            actions=[
                SetField(FIELD_BH, BH_FOUND),
                SetField(FIELD_REPORT_IN, 0),
                Output(CONTROLLER_PORT),
            ],
            priority=99,
            cookie="dispatch:ttl0",
        )
        cg.install(
            T_DISPATCH,
            Match(),
            actions=[DecTtl(FIELD_TTL)],
            goto=T_CLASSIFY,
            cookie="dispatch:dec_ttl",
        )

    def finish_variants(self) -> list[FinishVariant]:
        return [
            FinishVariant(
                {}, [SetField(FIELD_BH, BH_DONE), Output(CONTROLLER_PORT)]
            )
        ]


class BlackholeCodegen(ServiceCodegen):
    """Smart-counter blackhole detection.

    Phase A (repeat 3/2/1) uses the generic fast-failover sweep with a
    counter fetch in every send; phase B (repeat 0) replaces the sweep with
    the VERIFY tables so the fetched value can be matched.
    """

    def counter_gid(self, port: int) -> int:
        assert self._cg is not None, "codegen used before bind()"
        return self._cg.counter_group_id(port)

    def _count(self, port: int) -> Action:
        return GroupAction(self.counter_gid(port))

    def emit_dispatch(self, cg: Codegen) -> None:
        # Received packets increment the port counter too (the counter
        # counts link traversals at the port, cf. the interpreted engine's
        # on_arrival hook and DESIGN.md).
        for p in range(1, self.deg + 1):
            cg.install(
                T_DISPATCH,
                Match(**{"in_port": p}),
                actions=[self._count(p)],
                goto=T_CLASSIFY,
                priority=10,
                cookie=f"dispatch:recv_count:{p}",
            )
        cg.install(T_DISPATCH, Match(), goto=T_CLASSIFY, cookie="dispatch:default")

    def send_next_actions(self, out_port: int) -> list[Action]:
        return [self._count(out_port)]

    def send_parent_actions(self, par: int) -> list[Action]:
        return [self._count(par)]

    def finish_variants(self) -> list[FinishVariant]:
        # Phase A ends silently at the root; phase B finishes in the
        # VERIFY tables, never here.
        return [FinishVariant({}, [])]

    def emit_classify(self, cg: Codegen) -> None:
        deg = self.deg
        service: BlackholeService = self.service  # type: ignore[assignment]
        modulus = service.counter_modulus
        # Smart counters: one per port, shared by both phases.  The cursor
        # seed makes compiled installs replay-deterministic (satellite of
        # the model-checker PR): the checker assumes the same start value.
        start = getattr(service, "counter_start", 0)
        for p in range(1, deg + 1):
            cg.switch.add_group(
                build_counter_group(
                    self.counter_gid(p), modulus, FIELD_SCRATCH, start=start
                )
            )

        # Triggers.
        cg.install(
            T_CLASSIFY,
            Match(**{FIELD_START: 0, FIELD_REPEAT: REPEAT_VERIFY}),
            actions=[SetField(FIELD_START, 1)],
            meta=meta_sweep(1),
            goto=T_VERIFY_SWEEP,
            priority=101,
            cookie="classify:trigger_verify",
        )
        cg.install(
            T_CLASSIFY,
            Match(**{FIELD_START: 0}),
            actions=[SetField(FIELD_START, 1)],
            meta=meta_sweep(0),
            goto=T_SWEEP,
            priority=100,
            cookie="classify:trigger",
        )

        for p in range(1, deg + 1):
            # First visit, probe phase: echo to the parent (count the send).
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: 0, "in_port": p, FIELD_REPEAT: REPEAT_PROBE}),
                actions=[
                    SetField(cg.par, p),
                    SetField(FIELD_REPEAT, REPEAT_ECHO),
                    self._count(p),
                    Output(IN_PORT),
                ],
                priority=52,
                cookie=f"classify:first_echo:{p}",
            )
            # First visit, echo completed: resume the probe sweep.
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: 0, "in_port": p, FIELD_REPEAT: REPEAT_ECHO_BACK}),
                actions=[SetField(cg.par, p), SetField(FIELD_REPEAT, REPEAT_PROBE)],
                meta=meta_sweep(1),
                goto=T_SWEEP,
                priority=52,
                cookie=f"classify:first_resume:{p}",
            )
            # First visit, verify phase: plain.
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: 0, "in_port": p, FIELD_REPEAT: REPEAT_VERIFY}),
                actions=[SetField(cg.par, p)],
                meta=meta_sweep(1),
                goto=T_VERIFY_SWEEP,
                priority=52,
                cookie=f"classify:first_verify:{p}",
            )

        for c in range(1, deg + 1):
            # Parent side of the echo: send the packet back to the child.
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: c, "in_port": c, FIELD_REPEAT: REPEAT_ECHO}),
                actions=[
                    SetField(FIELD_REPEAT, REPEAT_ECHO_BACK),
                    self._count(c),
                    Output(IN_PORT),
                ],
                priority=52,
                cookie=f"classify:echo_return:{c}",
            )
            # Advance, probe phase.
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: c, "in_port": c, FIELD_REPEAT: REPEAT_PROBE}),
                meta=meta_sweep(c + 1),
                goto=T_SWEEP,
                priority=50,
                cookie=f"classify:advance:{c}",
            )
            # Advance, verify phase.
            cg.install(
                T_CLASSIFY,
                Match(**{cg.cur: c, "in_port": c, FIELD_REPEAT: REPEAT_VERIFY}),
                meta=meta_sweep(c + 1),
                goto=T_VERIFY_SWEEP,
                priority=50,
                cookie=f"classify:advance_verify:{c}",
            )

        # Bounces: count the return send; verify-phase bounces also check.
        for p in range(1, deg + 1):
            cg.install(
                T_CLASSIFY,
                Match(**{"in_port": p, FIELD_REPEAT: REPEAT_VERIFY}),
                actions=[self._count(p)],
                meta=meta_verify(p, KIND_BOUNCE),
                goto=T_VERIFY_CHECK,
                priority=6,
                cookie=f"classify:bounce_verify:{p}",
            )
            cg.install(
                T_CLASSIFY,
                Match(**{"in_port": p}),
                actions=[self._count(p), Output(IN_PORT)],
                priority=5,
                cookie=f"classify:bounce:{p}",
            )

    def emit_extra_tables(self, cg: Codegen) -> None:
        deg = self.deg
        # VERIFY_SWEEP: table-driven port selection (no fast failover: a
        # fetched counter value can only be matched in a table, and a group
        # bucket cannot continue into a table).
        for s in range(1, deg + 2):
            for p in range(0, deg + 1):
                effective = s if s != p else s + 1
                if effective <= deg:
                    cg.install(
                        T_VERIFY_SWEEP,
                        match_meta_sweep(s, **{cg.par: p}),
                        actions=[self._count(effective)],
                        meta=meta_verify(effective, KIND_PROBE),
                        goto=T_VERIFY_CHECK,
                        priority=10,
                        cookie=f"vsweep:s{s}:p{p}",
                    )
                elif p == 0:
                    # Root finish of the verify phase: clean verdict.
                    cg.install(
                        T_VERIFY_SWEEP,
                        match_meta_sweep(s, **{cg.par: 0}),
                        actions=[
                            SetField(FIELD_BH, BH_DONE),
                            Output(CONTROLLER_PORT),
                        ],
                        priority=10,
                        cookie=f"vsweep:finish:s{s}",
                    )
                else:
                    # Return to the parent (counted and checked too).
                    cg.install(
                        T_VERIFY_SWEEP,
                        match_meta_sweep(s, **{cg.par: p}),
                        actions=[self._count(p)],
                        meta=meta_verify(p, KIND_PARENT),
                        goto=T_VERIFY_CHECK,
                        priority=10,
                        cookie=f"vsweep:parent:s{s}:p{p}",
                    )

        # VERIFY_CHECK: a fetch returning 1 identifies the blackhole port.
        report = lambda q: [  # noqa: E731 - tiny local factory
            SetField(FIELD_BH, BH_FOUND),
            SetField(FIELD_REPORT_PORT, q),
            Output(CONTROLLER_PORT),
        ]
        for q in range(1, deg + 1):
            forward = [SetField(cg.cur, q), Output(q)]
            cg.install(
                T_VERIFY_CHECK,
                match_meta_verify(q, KIND_PROBE, **{FIELD_SCRATCH: 1}),
                actions=report(q) + forward,
                priority=20,
                cookie=f"vcheck:probe_report:{q}",
            )
            cg.install(
                T_VERIFY_CHECK,
                match_meta_verify(q, KIND_PROBE),
                actions=forward,
                priority=10,
                cookie=f"vcheck:probe:{q}",
            )
            cg.install(
                T_VERIFY_CHECK,
                match_meta_verify(q, KIND_PARENT, **{FIELD_SCRATCH: 1}),
                actions=report(q) + forward,
                priority=20,
                cookie=f"vcheck:parent_report:{q}",
            )
            cg.install(
                T_VERIFY_CHECK,
                match_meta_verify(q, KIND_PARENT),
                actions=forward,
                priority=10,
                cookie=f"vcheck:parent:{q}",
            )
            cg.install(
                T_VERIFY_CHECK,
                match_meta_verify(q, KIND_BOUNCE, **{FIELD_SCRATCH: 1}),
                actions=report(q) + [Output(IN_PORT)],
                priority=20,
                cookie=f"vcheck:bounce_report:{q}",
            )
            cg.install(
                T_VERIFY_CHECK,
                match_meta_verify(q, KIND_BOUNCE),
                actions=[Output(IN_PORT)],
                priority=10,
                cookie=f"vcheck:bounce:{q}",
            )


#: Service class -> code generator class.
_CODEGENS: dict[type, type[ServiceCodegen]] = {
    PlainTraversalService: ServiceCodegen,
    ChunkedSnapshotService: ChunkedSnapshotCodegen,
    SnapshotService: SnapshotCodegen,
    AnycastService: AnycastCodegen,
    PriocastService: PriocastCodegen,
    CriticalNodeService: CriticalCodegen,
    BlackholeService: BlackholeCodegen,
    BlackholeTtlService: TtlCodegen,
}


def register_codegen(
    service_class: type, codegen_class: type[ServiceCodegen]
) -> None:
    """Register a code generator for a custom service class.

    Resolution walks the service's MRO, so registering for a base class
    covers subclasses; registering the subclass explicitly wins (it is
    found first).  See docs/TUTORIAL.md for a worked example.
    """
    if not issubclass(codegen_class, ServiceCodegen):
        raise TypeError("codegen_class must subclass ServiceCodegen")
    _CODEGENS[service_class] = codegen_class


def codegen_for(service: Service, node: int, deg: int) -> ServiceCodegen:
    """Pick the code generator for *service*."""
    for klass in type(service).__mro__:
        if klass in _CODEGENS:
            return _CODEGENS[klass](service, node, deg)
    raise NotImplementedError(
        f"service {service.name!r} has no OpenFlow code generator "
        "(it is interpreted-only; see DESIGN.md)"
    )


def _emit_service(
    switch: Switch,
    network: Network,
    node: int,
    service: Service,
    table_base: int = 0,
    group_base: int = 0,
) -> None:
    deg = network.topology.degree(node)
    cg = Codegen(switch, node, deg, service, table_base, group_base)
    codegen = codegen_for(service, node, deg)
    codegen.bind(cg)
    codegen.emit_dispatch(cg)
    codegen.emit_classify(cg)
    if codegen.uses_bid_table:
        codegen.emit_bid_table(cg)
    codegen.emit_sweep(cg)
    codegen.emit_extra_tables(cg)


def compile_service(
    network: Network,
    node: int,
    service: Service,
    fast_path: bool | None = None,
) -> Switch:
    """Compile *service* for *node*: the paper's offline stage, for real.

    ``fast_path`` selects the switch's packet engine (None: the network's
    default); see :mod:`repro.openflow.fastpath`.
    """
    deg = network.topology.degree(node)
    if fast_path is None:
        fast_path = network.fast_path
    switch = Switch(
        node, deg, liveness=network.liveness_fn(node), fast_path=fast_path
    )
    _emit_service(switch, network, node, service)
    return switch


#: Tables reserved per service block in a multi-service pipeline.
SERVICE_BLOCK_TABLES = 8
#: Group-id stride per service block.
SERVICE_BLOCK_GROUPS = 100_000


def compile_services(
    network: Network,
    node: int,
    services: Sequence[Service],
    fast_path: bool | None = None,
) -> Switch:
    """Compile several services onto one switch.

    Table 0 dispatches on the packet's ``svc`` field to per-service pipeline
    blocks (each a relocated copy of the single-service layout); unknown
    service ids are dropped by the table-0 miss, exactly as an OpenFlow
    switch would.  Proves the paper's implicit claim that the data plane can
    host all SmartSouth functions simultaneously.
    """
    ids = [service.service_id for service in services]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate service ids in {ids}")
    deg = network.topology.degree(node)
    if fast_path is None:
        fast_path = network.fast_path
    switch = Switch(
        node, deg, liveness=network.liveness_fn(node), fast_path=fast_path
    )
    for index, service in enumerate(services):
        table_base = 1 + index * SERVICE_BLOCK_TABLES
        switch.install(
            0,
            Match(**{FIELD_SVC: service.service_id}),
            Instructions(goto_table=table_base),
            priority=10,
            cookie=f"svc_dispatch:{service.name}",
        )
        _emit_service(
            switch,
            network,
            node,
            service,
            table_base=table_base,
            group_base=(index + 1) * SERVICE_BLOCK_GROUPS,
        )
    return switch
