"""Load inference from smart counters (the paper's §4 remark).

"The smart counter concept introduced in this paper may also be used to
infer network loads."  This module makes that concrete: per-port smart
counters count arriving data packets modulo several pairwise-coprime
moduli; an audit traversal reads every counter bank in-band (each fetch
returns the pre-increment value, i.e. the true count) and records the
readings on the packet's label stack, snapshot-style.  The controller then
reconstructs each port's load modulo the moduli product with the Chinese
remainder theorem — so counters of size 5, 7 and 11 jointly measure loads
up to 384 packets with three tiny round-robin groups per port.

One audit perturbs every counter by exactly +1 per modulus (the fetch *is*
an increment); :class:`LoadMonitor` tracks the number of audits performed
and corrects subsequent readings accordingly.

Interpreted-engine only, like the packet-loss monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.services.base import HookContext
from repro.core.services.blackhole import BH_DONE, FIELD_BH, LossCheckService
from repro.net.link import Direction
from repro.net.simulator import Network

if TYPE_CHECKING:
    from repro.core.engine import _BaseEngine
from repro.openflow.packet import CONTROLLER_PORT, Packet
from repro.core.fields import FIELD_SVC


def crt(residues: Mapping[int, int]) -> int:
    """Solve x ≡ r (mod m) for all (m, r) pairs; moduli must be pairwise
    coprime.  Returns the unique x in [0, ∏m)."""
    total = 0
    product = 1
    for modulus in residues:
        product *= modulus
    for modulus, residue in residues.items():
        partial = product // modulus
        total += residue * partial * pow(partial, -1, modulus)
    return total % product


class LoadAuditService(LossCheckService):
    """Audit traversal: read every port's Cin counter bank into the packet.

    Inherits the data-packet counting rules (``svc = 0`` arrivals increment
    ``Cin<port>.m<modulus>``) from :class:`LossCheckService` and replaces
    the loss-comparison hooks with counter collection.
    """

    name = "loadaudit"
    service_id = 10

    # Disable the loss-monitor traversal hooks.
    def on_arrival(self, ctx: HookContext) -> int | None:
        return None

    def visit_not_from_cur(self, ctx: HookContext) -> None:
        pass

    def send_next_neighbor(self, ctx: HookContext) -> None:
        pass

    def send_parent(self, ctx: HookContext) -> None:
        pass

    # Collect readings once per node.
    def _audit(self, ctx: HookContext) -> None:
        for port in range(1, ctx.deg + 1):
            for modulus in self.moduli:
                value = ctx.counters.fetch_inc(
                    f"Cin{port}.m{modulus}", modulus
                )
                ctx.packet.push(("load", ctx.node, port, modulus, value))

    def on_trigger(self, ctx: HookContext) -> None:
        self._audit(ctx)

    def first_visit(self, ctx: HookContext) -> None:
        self._audit(ctx)

    def finish(self, ctx: HookContext) -> None:
        ctx.packet.set(FIELD_BH, BH_DONE)
        ctx.out = CONTROLLER_PORT


@dataclass
class LoadReport:
    """Reconstructed per-port loads."""

    #: (node, in-port) -> inferred packets received, modulo `modulus_product`.
    loads: dict[tuple[int, int], int] = field(default_factory=dict)
    modulus_product: int = 1
    in_band_messages: int = 0
    out_band_messages: int = 0

    def load_between(self, network: Network, u: int, v: int) -> int | None:
        """Inferred load on the (first) u->v link direction."""
        edge = network.topology.find_edge(u, v)
        if edge is None:
            return None
        far = edge.other(u)
        return self.loads.get((far.node, far.port))


class LoadMonitor:
    """Traffic generation + in-band audit + CRT reconstruction."""

    def __init__(self, engine: "_BaseEngine") -> None:
        if not isinstance(engine.service, LoadAuditService):
            raise TypeError("LoadMonitor needs a LoadAuditService engine")
        self.engine = engine
        self.moduli = engine.service.moduli
        self.modulus_product = 1
        for modulus in self.moduli:
            self.modulus_product *= modulus
        self._audits = 0
        #: Data packets actually delivered per (receiver node, in-port) —
        #: kept separately because audit traversals also cross links but
        #: are not data traffic.
        self._data_delivered: dict[tuple[int, int], int] = {}

    def send_traffic(self, loads: Mapping[tuple[int, int], int]) -> None:
        """Send `count` data packets out of each given (node, port)."""
        self.engine.install()
        network: Network = self.engine.network
        before = [dict(link.delivered) for link in network.links]
        for (node, port), count in loads.items():
            if network.topology.port_edge(node, port) is None:
                raise ValueError(f"({node}, {port}) is not a connected port")
            for _ in range(count):
                packet = Packet(fields={FIELD_SVC: 0, "data_out": port})
                network.inject(node, packet)
        network.run()
        for link, old in zip(network.links, before):
            for direction, endpoint in (
                (Direction.A_TO_B, link.edge.b),
                (Direction.B_TO_A, link.edge.a),
            ):
                delta = link.delivered[direction] - old[direction]
                if delta:
                    key = (endpoint.node, endpoint.port)
                    self._data_delivered[key] = (
                        self._data_delivered.get(key, 0) + delta
                    )

    def send_uniform_traffic(self, packets_per_direction: int) -> None:
        """Convenience: the same load on every link direction."""
        network: Network = self.engine.network
        loads = {}
        for edge in network.topology.edges():
            loads[(edge.a.node, edge.a.port)] = packets_per_direction
            loads[(edge.b.node, edge.b.port)] = packets_per_direction
        self.send_traffic(loads)

    def audit(self, root: int) -> LoadReport:
        """Run one audit traversal and reconstruct loads via CRT."""
        network: Network = self.engine.network
        mark_in = network.trace.in_band_messages
        mark_out = network.trace.out_band_messages
        result = self.engine.trigger(root)
        report = LoadReport(modulus_product=self.modulus_product)
        report.in_band_messages = network.trace.in_band_messages - mark_in
        report.out_band_messages = network.trace.out_band_messages - mark_out
        if not result.reports:
            return report
        _node, packet = result.reports[-1]
        readings: dict[tuple[int, int], dict[int, int]] = {}
        for record in packet.stack:
            if record[0] != "load":
                continue
            _tag, node, port, modulus, value = record
            # Correct for the increments performed by earlier audits.
            corrected = (value - self._audits) % modulus
            readings.setdefault((node, port), {})[modulus] = corrected
        for key, residues in readings.items():
            report.loads[key] = crt(residues)
        self._audits += 1
        return report

    def ground_truth(self) -> dict[tuple[int, int], int]:
        """Actual *data* packets delivered per (receiving node, in-port),
        modulo the modulus product (what a correct audit must reconstruct).
        Ports that never received data read 0."""
        network: Network = self.engine.network
        truth: dict[tuple[int, int], int] = {}
        for link in network.links:
            for endpoint in (link.edge.a, link.edge.b):
                key = (endpoint.node, endpoint.port)
                truth[key] = (
                    self._data_delivered.get(key, 0) % self.modulus_product
                )
        return truth
