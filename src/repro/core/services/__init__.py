"""The four SmartSouth case-study services (plus the plain traversal)."""

from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import (
    HookContext,
    PlainTraversalService,
    Service,
    SmartCounterBank,
)
from repro.core.services.blackhole import (
    BlackholeService,
    BlackholeTtlService,
    PacketLossMonitor,
    SmartCounterBlackholeDetector,
    TtlBinarySearchDetector,
)
from repro.core.services.critical import CriticalNodeService
from repro.core.services.load import LoadAuditService, LoadMonitor, crt
from repro.core.services.snapshot import (
    ChunkedSnapshotCollector,
    ChunkedSnapshotService,
    SnapshotDecodeError,
    SnapshotService,
)

__all__ = [
    "AnycastService",
    "BlackholeService",
    "BlackholeTtlService",
    "ChunkedSnapshotCollector",
    "ChunkedSnapshotService",
    "CriticalNodeService",
    "HookContext",
    "LoadAuditService",
    "LoadMonitor",
    "PacketLossMonitor",
    "PlainTraversalService",
    "PriocastService",
    "Service",
    "SmartCounterBank",
    "SmartCounterBlackholeDetector",
    "SnapshotDecodeError",
    "SnapshotService",
    "TtlBinarySearchDetector",
    "crt",
]
