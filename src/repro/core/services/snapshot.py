"""The snapshot service (§3.1): collect the live topology into the packet.

The traversal accumulates three kinds of records on the packet's label stack:

* ``("visit", node, port)`` — pushed when a node is visited for the first
  time (recording its id and in-port, the paper's ``push({i, in})``), and
  when a *new* edge is discovered by a bounce at an already-visited node;
* ``("out", port)``        — pushed before every probe (``push({out})``);
  popped again by the far endpoint when the probed edge was already known
  (the paper's ancestor-edge optimization: the ``in < cur`` sub-case of
  ``Visit_not_from_cur``, with ``cur = par`` treated as ``in < cur``);
* ``("ret",)``             — pushed when returning to the parent.  This
  marker is our one refinement over the paper's record stream: without it a
  decoder cannot tell "child finished, packet is back at the parent" from
  "child keeps probing" (it would need to know the child's port count).
  It costs Θ(n) extra O(1)-bit records and keeps the stream uniquely
  decodable; see DESIGN.md.

:func:`decode_snapshot` replays the record stream and reconstructs the set
of live links *with port numbers*, which is exactly the object the paper's
requester needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.fields import FIELD_RECCAP, FIELD_SNAP_DONE
from repro.core.services.base import HookContext, Service

if TYPE_CHECKING:
    from repro.core.engine import _BaseEngine
from repro.openflow.packet import (
    CONTROLLER_PORT,
    NO_PORT,
    Packet,
    is_physical_port,
)


class SnapshotDecodeError(Exception):
    """The record stream is malformed (e.g. truncated by a lost packet)."""


class SnapshotService(Service):
    """Compile-time/interpreter hooks for the snapshot traversal."""

    name = "snapshot"
    service_id = 2

    def __init__(self, inband_report: bool = False) -> None:
        if inband_report:
            from repro.openflow.packet import LOCAL_PORT

            self.report_destination = LOCAL_PORT

    def _record(self, ctx: HookContext, record: tuple) -> None:
        """Push one topology record (chunked subclass also spends budget)."""
        ctx.packet.push(record)

    def first_visit(self, ctx: HookContext) -> None:
        self._record(ctx, ("visit", ctx.node, ctx.in_port))

    def visit_not_from_cur(self, ctx: HookContext) -> None:
        # Bounce at an already-visited node. If this node has already probed
        # the arrival port itself (in < cur), or has finished its sweep
        # (cur = par), the edge is already recorded: delete the sender's
        # tracking instead of adding more (the paper's pop()).  The parent
        # edge (in = par) is likewise already recorded by the parent's probe.
        already_known = (
            ctx.in_port < ctx.cur
            or ctx.cur == ctx.par
            or ctx.in_port == ctx.par
        )
        if already_known:
            if ctx.packet.stack:
                ctx.packet.pop()
        else:
            self._record(ctx, ("visit", ctx.node, ctx.in_port))

    def send_next_neighbor(self, ctx: HookContext) -> None:
        if ctx.par == NO_PORT and ctx.cur == NO_PORT:
            # Root's very first send: record the root itself (the paper's
            # "if pkt.v_i.par = 0 and pkt.v_i.cur = 0 ... push({i, in})").
            self._record(ctx, ("visit", ctx.node, 0))
        self._record(ctx, ("out", ctx.out))

    def send_parent(self, ctx: HookContext) -> None:
        if ctx.out != NO_PORT:
            self._record(ctx, ("ret",))

    def finish(self, ctx: HookContext) -> None:
        ctx.packet.set(FIELD_SNAP_DONE, 1)
        ctx.out = self.report_destination  # deliver to the requester


class ChunkedSnapshotService(SnapshotService):
    """Snapshot split across multiple packets (the paper's §3.1 remark).

    "If the snapshot of a large network does not fit into a single packet
    ... all we have to do is to track the amount of data gathered so far
    (e.g. using special counter) and, when needed, we send the packet to
    the controller."

    Implementation: the trigger carries a record budget in ``pkt.reccap``;
    every pushed record decrements it (a ``dec_ttl`` in the compiled form —
    pops do not refund, which only makes flushing conservative).  When a
    packet *arrives* with an exhausted budget, the switch tags the arrival
    port into ``pkt.report_in`` and punts the whole packet to the
    controller, which strips the records and re-injects the packet at the
    same (switch, port) with a fresh budget — resuming the traversal
    exactly where it paused.  Drive it with
    :class:`ChunkedSnapshotCollector`; a bare trigger without a collector
    stalls at the first flush, like a controller that never answers.
    """

    name = "snapshot_chunked"
    service_id = 9

    def __init__(self, max_records: int = 16) -> None:
        if not 2 <= max_records <= 255:
            raise ValueError("max_records must be in [2, 255]")
        self.max_records = max_records

    def _record(self, ctx: HookContext, record: tuple) -> None:
        ctx.packet.push(record)
        budget = ctx.packet.get(FIELD_RECCAP)
        ctx.packet.set(FIELD_RECCAP, max(0, budget - 1))

    def on_arrival(self, ctx: HookContext) -> int | None:
        from repro.core.services.blackhole import FIELD_REPORT_IN

        if is_physical_port(ctx.in_port) and ctx.packet.get(FIELD_RECCAP) == 0:
            ctx.packet.set(FIELD_REPORT_IN, ctx.in_port)
            return CONTROLLER_PORT
        return None


class ChunkedSnapshotCollector:
    """Controller side of the chunked snapshot: gather, resume, decode."""

    def __init__(self, engine: "_BaseEngine") -> None:
        if not isinstance(engine.service, ChunkedSnapshotService):
            raise TypeError("collector needs a ChunkedSnapshotService engine")
        self.engine = engine
        self.max_records = engine.service.max_records

    def run(self, root: int):
        """Collect a snapshot in chunks; returns (nodes, links, stats)."""
        from repro.core.services.blackhole import FIELD_REPORT_IN

        network = self.engine.network
        records: list[tuple] = []
        chunks = 0
        mark_in = network.trace.in_band_messages
        mark_out = network.trace.out_band_messages

        result = self.engine.trigger(
            root, fields={FIELD_RECCAP: self.max_records}
        )
        # Generous bound: every flush frees >= max_records - 2 records.
        max_chunks = 8 + (4 * network.topology.num_edges) // max(
            1, self.max_records - 2
        )
        while True:
            if not result.reports:
                return None  # traversal died (e.g. a blackhole ate it)
            node, packet = result.reports[-1]
            if packet.get(FIELD_SNAP_DONE):
                records.extend(packet.stack)
                break
            chunks += 1
            if chunks > max_chunks:
                raise RuntimeError("chunked snapshot did not converge")
            records.extend(packet.stack)
            resumed = packet.copy()
            resumed.stack.clear()
            resumed.set(FIELD_RECCAP, self.max_records)
            in_port = packet.get(FIELD_REPORT_IN)
            mark_reports = len(self.engine.reports)
            network.inject(node, resumed, in_port=in_port, from_controller=True)
            network.run()
            result = type(result)(
                root=root,
                packet=resumed,
                reports=self.engine.reports[mark_reports:],
            )

        nodes, links = decode_snapshot(records)
        nodes.add(root)
        stats = {
            "chunks": chunks + 1,  # intermediate flushes + final report
            "records": len(records),
            "in_band": network.trace.in_band_messages - mark_in,
            "out_band": network.trace.out_band_messages - mark_out,
            "max_chunk_records": self.max_records,
        }
        return nodes, links, stats


def decode_snapshot(
    packet_or_records: Packet | list[tuple],
) -> tuple[set[int], set[frozenset[tuple[int, int]]]]:
    """Rebuild (nodes, links) from a snapshot packet's record stream.

    Returns the visited node set and the discovered links as unordered
    ``{(node, port), (node, port)}`` pairs.  Raises
    :class:`SnapshotDecodeError` on malformed streams.
    """
    if isinstance(packet_or_records, Packet):
        records = list(packet_or_records.stack)
    else:
        records = list(packet_or_records)

    nodes: set[int] = set()
    links: set[frozenset[tuple[int, int]]] = set()
    path: list[int] = []  # DFS ancestors of `current`
    current: int | None = None
    pending_out: int | None = None

    for index, record in enumerate(records):
        kind = record[0]
        if kind == "visit":
            _, node, port = record
            if current is None:
                # The root's self-record opens the stream.
                current = node
                nodes.add(node)
                continue
            if pending_out is None:
                raise SnapshotDecodeError(
                    f"record {index}: visit({node},{port}) without a "
                    f"preceding out record"
                )
            links.add(frozenset(((current, pending_out), (node, port))))
            pending_out = None
            if node not in nodes:
                nodes.add(node)
                path.append(current)
                current = node
            # else: bounce at a known node; the packet returned to `current`.
        elif kind == "out":
            _, port = record
            pending_out = port
        elif kind == "ret":
            if not path:
                raise SnapshotDecodeError(f"record {index}: ret with empty path")
            current = path.pop()
            pending_out = None
        else:
            raise SnapshotDecodeError(f"record {index}: unknown kind {kind!r}")

    return nodes, links


def snapshot_record_count(num_nodes: int, num_edges: int) -> int:
    """Closed-form record count for a full snapshot of a connected graph.

    visits: n first visits + (E - n + 1) new-edge bounces;
    outs:   one per probe minus one pop per re-probed non-tree edge = E;
    rets:   n - 1 parent returns.
    """
    non_tree = num_edges - (num_nodes - 1)
    return (num_nodes + non_tree) + num_edges + (num_nodes - 1)
