"""Critical-node detection (§3.4).

Is node *v* an articulation point — would removing it partition the network?
The controller asks *v* itself with a trigger packet; *v* roots a SmartSouth
traversal and watches the returning packets:

* the first out-port used is recorded in ``pkt.firstport``;
* every node sets ``pkt.toparent = 1`` when returning to its DFS parent and
  the bit is cleared again on every forward probe;
* if the root ever receives a packet with ``toparent = 1`` on a port other
  than ``firstport``, some node other than the first neighbor chose the root
  as its parent — i.e. that neighbor's region was unreachable except through
  the root — so the root is critical and reports to the controller
  immediately;
* if the traversal completes without that, the root reports "not critical".

This is the classic DFS-root articulation rule ("the root is an articulation
point iff it has at least two DFS children") executed entirely in-band, with
two out-of-band messages total (trigger + verdict), as Table 2 states.
"""

from __future__ import annotations

from repro.core.fields import FIELD_FIRST_PORT, FIELD_TO_PARENT
from repro.core.services.base import HookContext, Service
from repro.openflow.packet import NO_PORT

#: Report field: 1 = critical, 2 = not critical (0 = no verdict yet).
FIELD_CRITICAL = "crit"
CRITICAL = 1
NOT_CRITICAL = 2


class CriticalNodeService(Service):
    """Decide whether the traversal root is an articulation point."""

    name = "critical"
    service_id = 7

    def __init__(self, inband_report: bool = False) -> None:
        if inband_report:
            from repro.openflow.packet import LOCAL_PORT

            self.report_destination = LOCAL_PORT

    def visit_from_cur(self, ctx: HookContext) -> None:
        packet = ctx.packet
        if ctx.par != NO_PORT:
            return  # only the root inspects toparent
        if (
            packet.get(FIELD_TO_PARENT) == 1
            and ctx.cur != packet.get(FIELD_FIRST_PORT)
        ):
            # A second DFS child returned: the root is critical.
            packet.set(FIELD_CRITICAL, CRITICAL)
            ctx.out = self.report_destination
            ctx.skip_sweep = True
            return
        packet.set(FIELD_TO_PARENT, 0)

    def send_next_neighbor(self, ctx: HookContext) -> None:
        packet = ctx.packet
        if ctx.par == NO_PORT and ctx.cur == NO_PORT:
            packet.set(FIELD_FIRST_PORT, ctx.out)
        packet.set(FIELD_TO_PARENT, 0)

    def send_parent(self, ctx: HookContext) -> None:
        if ctx.out != NO_PORT:
            ctx.packet.set(FIELD_TO_PARENT, 1)

    def finish(self, ctx: HookContext) -> None:
        ctx.packet.set(FIELD_CRITICAL, NOT_CRITICAL)
        ctx.out = self.report_destination
