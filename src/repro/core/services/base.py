"""Service hook interface for the SmartSouth template.

Algorithm 1 exposes six extension points (the columns of the paper's
Table 1): ``First_visit``, ``Visit_from_cur``, ``Visit_not_from_cur``,
``Send_next_neighbor``, ``Send_parent`` and ``Finish``.  Two more are needed
to express behaviour the paper places "at the beginning of the template"
(anycast's group test) and "upon each visit" (the TTL check):

* :meth:`Service.pre_dispatch` — runs before everything, may consume the
  packet (e.g. deliver it to the local port);
* :meth:`Service.on_arrival` — runs before the template state machine, may
  divert the packet (e.g. TTL-expiry report to the controller);
* :meth:`Service.on_trigger` — the root-side analogue of ``First_visit``
  (Algorithm 1's ``start = 0`` branch never calls ``First_visit``, but e.g.
  priocast must consider the root as a potential receiver too).

All hooks receive a :class:`HookContext` and communicate by mutating the
packet, overriding ``ctx.out``, appending ``ctx.extra_outputs`` (side-channel
copies, e.g. reports that accompany a forwarded packet) or setting
``ctx.skip_sweep`` (bypass the port sweep entirely — used by the blackhole
echo protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.fields import cur_field, par_field
from repro.openflow.packet import CONTROLLER_PORT, NO_PORT, Packet
from repro.openflow.switch import PacketOut


class SmartCounterBank:
    """Per-switch smart-counter state for the *interpreted* engine.

    Semantically identical to the compiled form (a round-robin SELECT group
    per counter): ``fetch_inc`` returns the current cursor and advances it
    modulo the counter's bucket count.
    """

    def __init__(self, default_modulus: int = 8) -> None:
        self.default_modulus = default_modulus
        self._counters: dict[str, tuple[int, int]] = {}  # name -> (value, mod)

    def fetch_inc(self, name: str, modulus: int | None = None) -> int:
        """Fetch-and-increment: returns the value *before* incrementing."""
        mod = modulus or self.default_modulus
        value, stored_mod = self._counters.get(name, (0, mod))
        self._counters[name] = ((value + 1) % stored_mod, stored_mod)
        return value

    def peek(self, name: str) -> int:
        """Read without incrementing (used by assertions/benchmarks only;
        the data plane itself can only fetch-and-increment)."""
        return self._counters.get(name, (0, 0))[0]

    def names(self) -> list[str]:
        return sorted(self._counters)


@dataclass
class HookContext:
    """Everything a hook may read or mutate while processing one packet."""

    node: int
    in_port: int
    packet: Packet
    deg: int
    #: Port-liveness oracle for this node.
    live: Callable[[int], bool]
    #: This switch's smart counters.
    counters: SmartCounterBank
    #: The tentative output port (hooks may override).
    out: int = NO_PORT
    #: If set by a hook, the template skips the port sweep and the
    #: ``cur`` update, emitting ``out`` directly (echo protocols).
    skip_sweep: bool = False
    #: Additional emissions (e.g. a report copy to the controller) sent
    #: *before* the main output.
    extra_outputs: list[PacketOut] = field(default_factory=list)

    # -- tag accessors ---------------------------------------------------

    @property
    def par(self) -> int:
        return self.packet.get(par_field(self.node))

    @par.setter
    def par(self, value: int) -> None:
        self.packet.set(par_field(self.node), value)

    @property
    def cur(self) -> int:
        return self.packet.get(cur_field(self.node))

    @cur.setter
    def cur(self, value: int) -> None:
        self.packet.set(cur_field(self.node), value)

    def emit_copy(self, port: int) -> None:
        """Queue a copy of the packet for emission on *port*."""
        self.extra_outputs.append(PacketOut(port, self.packet.copy()))


class Service:
    """Base class: a no-op service is the plain traversal."""

    #: Short name (also used to tag compiled rule cookies).
    name = "plain"
    #: Value of the packet's ``svc`` field selecting this service
    #: (0 is reserved for plain data traffic).
    service_id = 1
    #: Where root-side verdicts go.  ``CONTROLLER_PORT`` by default; the
    #: paper notes that "all out-of-band messages can be sent in-band to
    #: any server connected to the first node of the traversal" — services
    #: that report only from the root support ``LOCAL_PORT`` here (set via
    #: their ``inband_report`` constructor flag), making monitoring fully
    #: in-band.
    report_destination = CONTROLLER_PORT
    #: Origin-side stale-epoch squash filter, set by the traversal
    #: supervisor (:class:`repro.core.epoch.EpochGate`); None = no
    #: supervision, all packets admitted.
    epoch_gate = None

    # -- extension points (paper's Table 1 + the three arrival hooks) ----

    def pre_dispatch(self, ctx: HookContext) -> int | None:
        """Before everything; return a port to consume the packet, else None."""
        return None

    def on_arrival(self, ctx: HookContext) -> int | None:
        """Before the template; return a port to divert the packet, else None."""
        return None

    def on_trigger(self, ctx: HookContext) -> None:
        """Root-side first visit (``start`` was 0)."""

    def first_visit(self, ctx: HookContext) -> None:
        """A non-root node sees the service packet for the first time."""

    def visit_from_cur(self, ctx: HookContext) -> None:
        """The packet returned from the port the node was probing."""

    def visit_not_from_cur(self, ctx: HookContext) -> None:
        """The packet arrived from an unexpected port (will be bounced)."""

    def send_next_neighbor(self, ctx: HookContext) -> None:
        """A live next port was selected; the packet is about to probe it."""

    def send_parent(self, ctx: HookContext) -> None:
        """All ports done; the packet is about to return to the parent."""

    def finish(self, ctx: HookContext) -> None:
        """The root exhausted its ports (``out`` is 0): traversal over."""

    # -- metadata used by engines and the compiler -----------------------

    def groups_of(self, node: int) -> frozenset[int]:
        """Anycast-style group ids this node belongs to (none by default)."""
        return frozenset()

    def describe(self) -> str:
        return f"{self.name} (svc={self.service_id})"


class PlainTraversalService(Service):
    """The bare SmartSouth DFS: visits every live edge, then stops.

    On completion the root reports to the controller, which makes the
    traversal observable (and matches how every trigger-response service
    terminates).
    """

    name = "plain"
    service_id = 1

    def __init__(self, inband_report: bool = False) -> None:
        if inband_report:
            from repro.openflow.packet import LOCAL_PORT

            self.report_destination = LOCAL_PORT

    def finish(self, ctx: HookContext) -> None:
        ctx.out = self.report_destination
