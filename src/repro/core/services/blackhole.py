"""Blackhole detection (§3.3): two algorithms, plus packet-loss monitoring.

**Algorithm 1 — TTL binary search** (:class:`BlackholeTtlService` +
:class:`TtlBinarySearchDetector`).  The controller injects DFS traversals
with different TTL budgets.  A node receiving a packet with TTL 0 reports it
to the controller (the packet carries the full traversal state, so the
controller — which installed the rules and therefore knows each node's port
count — can compute the hop the packet was about to take).  A probe that hits
the blackhole earlier is silently swallowed.  Binary search over the TTL
finds the last reachable DFS step; the next hop from there is the blackhole.
Out-of-band cost: one trigger and at most one report per probe, i.e.
``2·⌈log₂ L⌉``-ish messages for a DFS of length L ≤ 4E; in-band cost is the
geometric sum ≈ 2L = 8E − 4n (Table 2, "Blackhole 1").

**Algorithm 2 — smart counters** (:class:`BlackholeService` +
:class:`SmartCounterBlackholeDetector`).  Every switch keeps one smart
counter per port (a fetch-and-increment built from a round-robin group, see
:mod:`repro.core.smart_counter`).  Phase A (``repeat = 3``) traverses the
network, echoing once over every *new* link (child bounces the packet to its
parent and back, ``repeat`` 3→2→1, before sweeping), so that every directed
port of a healthy link counts **2** sends while a drop-all port counts
exactly **1**; total in-band cost 4E (Table 2, "Blackhole 2").  Phase B
(``repeat = 0``) re-walks the same DFS and, before every send, fetches the
port's counter: a fetch returning 1 identifies the blackhole and a report is
copied to the controller.  Three out-of-band messages total: two triggers
plus one verdict.

The default blackhole model drops both directions of a link (the paper's
"edge ... that loses all packets").  For single-direction blackholes phase B
survives past the bad link; rather than wander into the never-visited region
(where its own arrival counting would fabricate counter-1 reports on healthy
links) it halts at the first virgin port — a fetch returning 0, impossible
after a completed probe — and reports ``BH_INCOMPLETE``.  The detectors take
the *earliest* report as the verdict, which is correct in both models.

**Packet-loss monitoring** (:class:`LossCheckService` +
:class:`PacketLossMonitor`).  Two extra counter families per port count data
packets out (``Cout``) and in (``Cin``).  A check traversal writes the
sender-side ``Cout`` fetch into the packet before each send; the receiver
compares it against its own ``Cin`` fetch — a mismatch means packets were
lost on that link.  Because the check itself increments both sides by one
per crossing, repeated crossings stay balanced.  Counters wrap, so a loss
count ≡ 0 (mod m) is invisible to a modulus-m counter; as the paper
suggests, several counters with distinct prime moduli shrink the
false-negative rate to losses divisible by their product.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.fields import FIELD_REPEAT, FIELD_SVC, FIELD_TTL
from repro.core.services.base import HookContext, Service
from repro.net.simulator import Network

if TYPE_CHECKING:
    from repro.core.engine import _BaseEngine
from repro.openflow.packet import (
    CONTROLLER_PORT,
    LOCAL_PORT,
    NO_PORT,
    Packet,
    is_physical_port,
)

#: Report marker: 1 = blackhole/loss found, 2 = phase completed cleanly,
#: 3 = the verify walk reached a port the probe provably never touched
#: (the probe died mid-run without leaving a count-1 signature — e.g. on a
#: lossy link that swallowed a crossing of an already-counted port).
FIELD_BH = "bh"
BH_FOUND = 1
BH_DONE = 2
BH_INCOMPLETE = 3
#: The suspicious out-port (smart-counter reports).
FIELD_REPORT_PORT = "report_port"
#: The in-port of the reporting arrival (TTL and loss reports).
FIELD_REPORT_IN = "report_in"

#: ``repeat`` protocol values (phase A echo handshake / phase B verify).
REPEAT_PROBE = 3
REPEAT_ECHO = 2
REPEAT_ECHO_BACK = 1
REPEAT_VERIFY = 0


class BlackholeService(Service):
    """Smart-counter blackhole detection (the paper's second algorithm)."""

    name = "blackhole"
    service_id = 5

    #: Smart-counter modulus.  A port is touched at most 8 times per
    #: detection run (4 in each phase), so 16 keeps "fetch = 1"
    #: unambiguous with margin.  One detection per install: counters are
    #: stateful, so rerunning on the same engine needs a counter reset
    #: (fresh install), as it would on a real switch.
    counter_modulus = 16

    def __init__(self, counter_start: int = 0) -> None:
        """``counter_start`` seeds every per-port counter cursor at install
        time, so checker and simulator replays are bit-identical.  The
        detection algorithm assumes fresh counters, so anything but 0 is
        only useful for replay/differential experiments."""
        if not 0 <= counter_start < self.counter_modulus:
            raise ValueError(
                f"counter_start {counter_start} not in "
                f"[0, {self.counter_modulus})"
            )
        self.counter_start = counter_start

    def _count_send(self, ctx: HookContext, port: int) -> None:
        """Count an outgoing traversal of *port*; in the verify phase a
        fetch returning exactly 1 identifies the blackhole, and a fetch
        returning 0 proves the probe died before reaching this port.

        The 0 case halts the verify walk with an ``BH_INCOMPLETE`` report:
        a completed probe leaves every port it can reach at >= 2, so a
        virgin port means the probe was swallowed *without* stranding a
        count at 1 (probabilistic loss can kill a crossing of an
        already-counted port — unlike a drop-all blackhole, whose first
        crossing always dies).  Pressing on would be worse than useless:
        the verify's own arrival counting would manufacture count-1 ports
        in the never-visited region and report healthy links as blackholes.
        With the halt, a FOUND report implies its port's link really
        swallowed a packet (every arrival pairs with a same-port send count
        inside one handler, so no healthy port can rest at exactly 1 —
        degree-1 nodes excepted, where the parent port can hold a lone
        verify-arrival count)."""
        if not is_physical_port(port):
            return
        value = ctx.counters.fetch_inc(f"C{port}", self.counter_modulus)
        if ctx.packet.get(FIELD_REPEAT) != REPEAT_VERIFY:
            return
        if value == 1:
            ctx.packet.set(FIELD_BH, BH_FOUND)
            ctx.packet.set(FIELD_REPORT_PORT, port)
            ctx.emit_copy(CONTROLLER_PORT)
        elif value == 0:
            ctx.packet.set(FIELD_BH, BH_INCOMPLETE)
            ctx.packet.set(FIELD_REPORT_PORT, port)
            ctx.emit_copy(CONTROLLER_PORT)
            ctx.out = NO_PORT  # halt: consume the verify packet here

    # -- template hooks ---------------------------------------------------

    def on_arrival(self, ctx: HookContext) -> int | None:
        # The counter counts *link traversals at the port*: received
        # packets increment it too.  This makes both endpoints of a link
        # reach 2 within one probe/bounce (or echo) burst, so a traversal
        # that dies mid-run can never leave a healthy port at 1 anywhere
        # the verify phase will check (see DESIGN.md).
        if is_physical_port(ctx.in_port):
            ctx.counters.fetch_inc(f"C{ctx.in_port}", self.counter_modulus)
        return None

    def first_visit(self, ctx: HookContext) -> None:
        repeat = ctx.packet.get(FIELD_REPEAT)
        if repeat == REPEAT_PROBE:
            # New link: echo back to the parent before sweeping.
            ctx.packet.set(FIELD_REPEAT, REPEAT_ECHO)
            self._count_send(ctx, ctx.in_port)
            ctx.out = ctx.in_port
            ctx.skip_sweep = True  # cur stays 0: the echo-return re-enters here
        elif repeat == REPEAT_ECHO_BACK:
            # Echo completed; resume the normal probe traversal.
            ctx.packet.set(FIELD_REPEAT, REPEAT_PROBE)
        # repeat == REPEAT_VERIFY: plain first visit.

    def visit_from_cur(self, ctx: HookContext) -> None:
        if ctx.packet.get(FIELD_REPEAT) == REPEAT_ECHO:
            # Parent side of the echo: bounce the packet to the child again.
            ctx.packet.set(FIELD_REPEAT, REPEAT_ECHO_BACK)
            self._count_send(ctx, ctx.in_port)
            ctx.out = ctx.in_port
            ctx.skip_sweep = True  # cur must not advance during the echo

    def visit_not_from_cur(self, ctx: HookContext) -> None:
        self._count_send(ctx, ctx.in_port)

    def send_next_neighbor(self, ctx: HookContext) -> None:
        self._count_send(ctx, ctx.out)

    def send_parent(self, ctx: HookContext) -> None:
        self._count_send(ctx, ctx.out)

    def finish(self, ctx: HookContext) -> None:
        if ctx.packet.get(FIELD_REPEAT) == REPEAT_VERIFY:
            ctx.packet.set(FIELD_BH, BH_DONE)
            ctx.out = CONTROLLER_PORT  # "no blackhole" verdict
        # Phase A simply ends; the verdict belongs to phase B.


class BlackholeTtlService(Service):
    """TTL-probe blackhole detection (the paper's first algorithm)."""

    name = "blackhole_ttl"
    service_id = 6

    def on_arrival(self, ctx: HookContext) -> int | None:
        packet = ctx.packet
        ttl = packet.get(FIELD_TTL)
        if ttl == 0:
            packet.set(FIELD_BH, BH_FOUND)
            report_in = ctx.in_port if is_physical_port(ctx.in_port) else 0
            packet.set(FIELD_REPORT_IN, report_in)
            return CONTROLLER_PORT
        packet.set(FIELD_TTL, ttl - 1)
        return None

    def finish(self, ctx: HookContext) -> None:
        ctx.packet.set(FIELD_BH, BH_DONE)
        ctx.out = CONTROLLER_PORT


# --------------------------------------------------------------------- #
# Controller-side detectors                                             #
# --------------------------------------------------------------------- #


@dataclass
class BlackholeVerdict:
    """Outcome of a detection run."""

    found: bool
    #: Sender-side suspect: (node, out-port); None when not found.
    location: tuple[int, int] | None = None
    #: Far side of the suspect link, when resolvable: (node, in-port).
    far_end: tuple[int, int] | None = None
    #: Number of probe traversals used (TTL variant).
    probes: int = 0
    out_band_messages: int = 0
    in_band_messages: int = 0


class SmartCounterBlackholeDetector:
    """Runs the two-phase smart-counter algorithm via an engine.

    The paper's controller "sends the two packets with a time difference of
    twice the maximum delay": the verify phase must not overtake the probe
    phase, or it reads half-built counters.  ``run(gap=None)`` drains the
    network between phases (an infinite gap, the default used by tests and
    benchmarks); ``run(gap=seconds)`` schedules the verify trigger on the
    simulator clock instead — :func:`safe_gap` gives a sufficient value,
    and `tests/test_blackhole_timing.py` shows what a too-small gap does.
    """

    def __init__(self, engine: "_BaseEngine") -> None:
        self.engine = engine

    @staticmethod
    def safe_gap(network: Network) -> float:
        """An upper bound on the probe phase's duration: 4E hops at the
        slowest link delay (plus one for the injection step)."""
        slowest = max((link.delay for link in network.links), default=1.0)
        return (4 * network.topology.num_edges + 2) * slowest + 1.0

    def run(self, root: int, gap: float | None = None) -> BlackholeVerdict:
        engine = self.engine
        network: Network = engine.network
        trace = network.trace
        mark_out = trace.out_band_messages
        mark_in = trace.in_band_messages

        if gap is None:
            engine.trigger(root, fields={FIELD_REPEAT: REPEAT_PROBE})
            result = engine.trigger(root, fields={FIELD_REPEAT: REPEAT_VERIFY})
            reports = result.reports
        else:
            engine.install()
            mark_reports = len(engine.reports)
            engine.trigger(root, fields={FIELD_REPEAT: REPEAT_PROBE}, run=False)
            network.sim.schedule(
                gap,
                lambda: engine.trigger(
                    root, fields={FIELD_REPEAT: REPEAT_VERIFY}, run=False
                ),
            )
            network.run()
            reports = engine.reports[mark_reports:]

        verdict = BlackholeVerdict(found=False)
        for node, packet in reports:
            if packet.get(FIELD_BH) == BH_FOUND:
                port = packet.get(FIELD_REPORT_PORT)
                verdict.found = True
                verdict.location = (node, port)
                far = network.topology.neighbor(node, port)
                if far is not None:
                    verdict.far_end = (far.node, far.port)
                break  # earliest report wins (see module docstring)
        verdict.out_band_messages = trace.out_band_messages - mark_out
        verdict.in_band_messages = trace.in_band_messages - mark_in
        verdict.probes = 2
        return verdict


class TtlBinarySearchDetector:
    """Runs the TTL binary-search algorithm via an engine.

    The controller-side "compute the hop the reporting node was about to
    take" step uses the template interpreter on a copy of the reported
    packet — legitimate, because the controller installed the rules during
    the offline stage and therefore knows every node's program.
    """

    def __init__(self, engine: "_BaseEngine") -> None:
        self.engine = engine

    def _probe(self, root: int, ttl: int):
        """One traversal with the given TTL budget.

        Returns ("complete", None), ("report", (node, packet)) or
        ("swallowed", None).
        """
        result = self.engine.trigger(root, fields={FIELD_TTL: ttl})
        for node, packet in result.reports:
            if packet.get(FIELD_BH) == BH_DONE:
                return "complete", None
            if packet.get(FIELD_BH) == BH_FOUND:
                return "report", (node, packet)
        return "swallowed", None

    def _next_hop(self, node: int, packet: Packet) -> int:
        """The port the reporting node would have used next (controller-side
        replay of the template)."""
        from repro.core.template import TemplateInterpreter

        replay = TemplateInterpreter(self.engine.network, BlackholeTtlService())
        copy = packet.copy()
        copy.set(FIELD_TTL, 1 << 15)  # disarm the TTL check for the replay
        copy.set(FIELD_BH, 0)
        in_port = packet.get(FIELD_REPORT_IN) or LOCAL_PORT
        outputs = replay.process(node, copy, in_port)
        for out in outputs:
            if is_physical_port(out.port):
                return out.port
        return NO_PORT

    def run(self, root: int) -> BlackholeVerdict:
        network: Network = self.engine.network
        trace = network.trace
        mark_out = trace.out_band_messages
        mark_in = trace.in_band_messages
        probes = 0

        # A TTL beyond any possible traversal length: if this completes,
        # there is no blackhole on the DFS at all.
        high = 4 * network.topology.num_edges + 4
        probes += 1
        outcome, _data = self._probe(root, high)
        if outcome == "complete":
            return BlackholeVerdict(
                found=False,
                probes=probes,
                out_band_messages=trace.out_band_messages - mark_out,
                in_band_messages=trace.in_band_messages - mark_in,
            )

        # Invariant: probe(lo) reports, probe(hi) is swallowed.
        lo, hi = 0, high
        probes += 1
        outcome, data = self._probe(root, lo)
        if outcome != "report":  # pragma: no cover - ttl=0 always reports
            raise RuntimeError("TTL-0 probe must report at the root")
        best = data
        while hi - lo > 1:
            mid = (lo + hi) // 2
            probes += 1
            outcome, data = self._probe(root, mid)
            if outcome == "report":
                lo, best = mid, data
            else:
                hi = mid

        node, packet = best
        port = self._next_hop(node, packet)
        far = network.topology.neighbor(node, port) if port != NO_PORT else None
        return BlackholeVerdict(
            found=True,
            location=(node, port),
            far_end=(far.node, far.port) if far is not None else None,
            probes=probes,
            out_band_messages=trace.out_band_messages - mark_out,
            in_band_messages=trace.in_band_messages - mark_in,
        )


# --------------------------------------------------------------------- #
# Packet-loss monitoring                                                #
# --------------------------------------------------------------------- #

#: Loss-report marker values reuse FIELD_BH.
FIELD_DATA_OUT = "data_out"


class LossCheckService(Service):
    """Traversal that compares per-port data counters across each link.

    Also implements the data-plane side of data traffic itself: packets with
    ``svc = 0`` are counted (``Cout`` at the sender, ``Cin`` at the
    receiver) and consumed, exactly as proactively-installed counting rules
    would do on a real switch.
    """

    name = "losscheck"
    service_id = 8

    def __init__(self, moduli: tuple[int, ...] = (5, 7)) -> None:
        if not moduli or any(m < 2 for m in moduli):
            raise ValueError("counter moduli must all be >= 2")
        self.moduli = tuple(moduli)

    # -- data traffic counting --------------------------------------------

    def pre_dispatch(self, ctx: HookContext) -> int | None:
        packet = ctx.packet
        if packet.get(FIELD_SVC) != 0:
            return None
        if is_physical_port(ctx.in_port):
            # Data packet arriving over a link: count it in and consume it.
            for modulus in self.moduli:
                ctx.counters.fetch_inc(f"Cin{ctx.in_port}.m{modulus}", modulus)
            return LOCAL_PORT
        # Data packet originated here: count it out and transmit.
        port = packet.get(FIELD_DATA_OUT)
        for modulus in self.moduli:
            ctx.counters.fetch_inc(f"Cout{port}.m{modulus}", modulus)
        return port

    # -- check traversal ---------------------------------------------------

    def on_arrival(self, ctx: HookContext) -> int | None:
        if not is_physical_port(ctx.in_port):
            return None
        packet = ctx.packet
        mismatch = False
        for modulus in self.moduli:
            received = ctx.counters.fetch_inc(
                f"Cin{ctx.in_port}.m{modulus}", modulus
            )
            if received != packet.get(f"cmp.m{modulus}"):
                mismatch = True
        if mismatch:
            packet.set(FIELD_BH, BH_FOUND)
            packet.set(FIELD_REPORT_IN, ctx.in_port)
            ctx.emit_copy(CONTROLLER_PORT)
            packet.set(FIELD_BH, 0)
        return None

    def _stamp_send(self, ctx: HookContext, port: int) -> None:
        if not is_physical_port(port):
            return
        for modulus in self.moduli:
            value = ctx.counters.fetch_inc(f"Cout{port}.m{modulus}", modulus)
            ctx.packet.set(f"cmp.m{modulus}", value)

    def visit_not_from_cur(self, ctx: HookContext) -> None:
        self._stamp_send(ctx, ctx.in_port)

    def send_next_neighbor(self, ctx: HookContext) -> None:
        self._stamp_send(ctx, ctx.out)

    def send_parent(self, ctx: HookContext) -> None:
        self._stamp_send(ctx, ctx.out)

    def finish(self, ctx: HookContext) -> None:
        ctx.packet.set(FIELD_BH, BH_DONE)
        ctx.out = CONTROLLER_PORT


@dataclass
class LossReport:
    """Result of a packet-loss check."""

    #: Links flagged lossy, as receiver-side (node, in-port) pairs.
    flagged: set[tuple[int, int]] = field(default_factory=set)
    completed: bool = False
    in_band_messages: int = 0
    out_band_messages: int = 0


class PacketLossMonitor:
    """End-to-end packet-loss monitoring with multi-prime smart counters."""

    def __init__(self, engine: "_BaseEngine", moduli: tuple[int, ...] = (5, 7)) -> None:
        if not isinstance(engine.service, LossCheckService):
            raise TypeError("PacketLossMonitor needs a LossCheckService engine")
        self.engine = engine
        self.moduli = engine.service.moduli

    def send_traffic(self, packets_per_direction: int) -> None:
        """Emit data packets over every link direction (losses apply)."""
        self.engine.install()  # counting rules must be in place first
        network: Network = self.engine.network
        for edge in network.topology.edges():
            for endpoint in (edge.a, edge.b):
                for _ in range(packets_per_direction):
                    packet = Packet(fields={FIELD_DATA_OUT: endpoint.port})
                    network.inject(endpoint.node, packet)
        network.run()

    def check(self, root: int) -> LossReport:
        """Run the check traversal and collect mismatch reports."""
        trace = self.engine.network.trace
        mark_in = trace.in_band_messages
        mark_out = trace.out_band_messages
        result = self.engine.trigger(root)
        report = LossReport()
        for node, packet in result.reports:
            if packet.get(FIELD_BH) == BH_FOUND:
                report.flagged.add((node, packet.get(FIELD_REPORT_IN)))
            elif packet.get(FIELD_BH) == BH_DONE:
                report.completed = True
        report.in_band_messages = trace.in_band_messages - mark_in
        report.out_band_messages = trace.out_band_messages - mark_out
        return report

    def detectable_losses(self) -> set[tuple[int, int]]:
        """Ground truth: receiver-side (node, port) pairs whose loss count
        is not ≡ 0 modulo every configured counter (what the check *can*
        see)."""
        network: Network = self.engine.network
        flagged: set[tuple[int, int]] = set()
        for link in network.links:
            for direction in link.dropped:
                lost = link.dropped[direction]
                if lost and any(lost % m for m in self.moduli):
                    # Receiver side of this direction.
                    if direction.value == "a->b":
                        far = link.edge.b
                    else:
                        far = link.edge.a
                    flagged.add((far.node, far.port))
        return flagged
