"""Anycast and priocast (§3.2), plus the service-chaining extension.

**Anycast** adds one test at the beginning of the template: if the packet's
group id matches a group this node belongs to, the packet is delivered to the
node's *self* port; otherwise the traversal continues, so the packet reaches
every available node until a receiver is found.  No controller interaction is
needed (Table 2: 0 out-of-band messages).

**Priocast** delivers to the *highest-priority* group member using two
traversal phases (``start`` becomes ternary): phase 1 lets every member bid
by updating ``opt_id``/``opt_val`` in the packet; at the root's ``Finish``
the traversal restarts (phase 2, via the recorded ``firstport``) and the
packet walks the same DFS until the winner recognizes its own id and
delivers locally.  Non-root nodes detect the phase switch by seeing the
packet arrive from their parent port again.

``opt_id`` stores ``node + 1`` so that 0 keeps meaning "no receiver found".

**Service chains** (the paper's remark, citing [14]): a sequence of group
ids is resolved leg by leg; each leg is one anycast traversal re-injected at
the previous leg's delivery point (see :class:`ServiceChainRunner` in
:mod:`repro.core.runtime`).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.fields import (
    FIELD_FIRST_PORT,
    FIELD_GID,
    FIELD_OPT_ID,
    FIELD_OPT_VAL,
    FIELD_START,
    OPT_VAL_BITS,
)
from repro.core.services.base import HookContext, Service
from repro.openflow.packet import LOCAL_PORT, NO_PORT


class AnycastService(Service):
    """Deliver to any member of the requested group, if one is reachable."""

    name = "anycast"
    service_id = 3

    def __init__(self, groups: Mapping[int, set[int]] | None = None) -> None:
        #: gid -> set of member node ids.
        self.groups: dict[int, set[int]] = {
            gid: set(members) for gid, members in (groups or {}).items()
        }

    def add_member(self, gid: int, node: int) -> None:
        if gid <= 0:
            raise ValueError("group ids must be positive")
        self.groups.setdefault(gid, set()).add(node)

    def groups_of(self, node: int) -> frozenset[int]:
        return frozenset(g for g, members in self.groups.items() if node in members)

    def pre_dispatch(self, ctx: HookContext) -> int | None:
        gid = ctx.packet.get(FIELD_GID)
        if gid and gid in self.groups_of(ctx.node):
            return LOCAL_PORT
        return None


class PriocastService(Service):
    """Deliver to the highest-priority member of the requested group."""

    name = "priocast"
    service_id = 4

    def __init__(
        self, priorities: Mapping[int, Mapping[int, int]] | None = None
    ) -> None:
        #: gid -> {node: priority}; priorities must fit OPT_VAL_BITS.
        self.priorities: dict[int, dict[int, int]] = {
            gid: dict(prio) for gid, prio in (priorities or {}).items()
        }

    def add_member(self, gid: int, node: int, priority: int) -> None:
        if gid <= 0:
            raise ValueError("group ids must be positive")
        if not 1 <= priority < (1 << OPT_VAL_BITS):
            raise ValueError(
                f"priority must be in [1, {(1 << OPT_VAL_BITS) - 1}]"
            )
        self.priorities.setdefault(gid, {})[node] = priority

    def priority_of(self, node: int, gid: int) -> int | None:
        return self.priorities.get(gid, {}).get(node)

    def groups_of(self, node: int) -> frozenset[int]:
        return frozenset(
            g for g, members in self.priorities.items() if node in members
        )

    # -- phase 1: bidding -------------------------------------------------

    def _bid(self, ctx: HookContext) -> None:
        gid = ctx.packet.get(FIELD_GID)
        priority = self.priority_of(ctx.node, gid) if gid else None
        if priority is None:
            return
        if ctx.packet.get(FIELD_OPT_VAL) < priority:
            ctx.packet.set(FIELD_OPT_VAL, priority)
            ctx.packet.set(FIELD_OPT_ID, ctx.node + 1)

    def on_trigger(self, ctx: HookContext) -> None:
        # The root is a potential receiver too; Algorithm 1's start=0 branch
        # never calls First_visit, so the bid happens here.
        self._bid(ctx)

    def first_visit(self, ctx: HookContext) -> None:
        if ctx.packet.get(FIELD_START) == 1:
            self._bid(ctx)

    # -- phase 2: delivery -------------------------------------------------

    def visit_from_cur(self, ctx: HookContext) -> None:
        packet = ctx.packet
        if packet.get(FIELD_START) != 2:
            return
        if ctx.in_port != ctx.par or ctx.par == NO_PORT:
            return
        # Arrival from the parent port: only possible when a new traversal
        # phase starts (the paper's phase-switch detection).
        if packet.get(FIELD_OPT_ID) == ctx.node + 1:
            ctx.out = LOCAL_PORT
            ctx.skip_sweep = True
        else:
            ctx.out = 1  # restart this node's sweep for phase 2

    def send_next_neighbor(self, ctx: HookContext) -> None:
        if ctx.par == NO_PORT and ctx.cur == NO_PORT:
            ctx.packet.set(FIELD_FIRST_PORT, ctx.out)

    def finish(self, ctx: HookContext) -> None:
        packet = ctx.packet
        if packet.get(FIELD_START) == 1:
            opt_id = packet.get(FIELD_OPT_ID)
            if opt_id == ctx.node + 1:
                # The root itself is the best receiver.
                ctx.out = LOCAL_PORT
            elif opt_id != 0:
                # Begin the second traversal along the recorded first port.
                packet.set(FIELD_START, 2)
                first = packet.get(FIELD_FIRST_PORT)
                ctx.out = first
                ctx.cur = first
            # else: no receiver exists; drop (out stays 0).
        # start == 2 finishing at the root means the winner vanished
        # mid-run; the packet is dropped (out stays 0).
