"""High-level runtime: one facade for all SmartSouth services.

:class:`SmartSouthRuntime` owns a :class:`~repro.net.simulator.Network` and
exposes each case study as a single method call — the API a troubleshooting
application or an in-band controller agent would use.  Engines are created
lazily per service and cached; triggering one service rebinds the network's
handlers, exactly as installing that service's tables would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.engine import TraversalResult, _BaseEngine, make_engine
from repro.core.fields import FIELD_GID
from repro.core.services.anycast import AnycastService, PriocastService
from repro.core.services.base import PlainTraversalService, Service
from repro.core.services.blackhole import (
    BlackholeService,
    BlackholeTtlService,
    BlackholeVerdict,
    LossCheckService,
    PacketLossMonitor,
    SmartCounterBlackholeDetector,
    TtlBinarySearchDetector,
)
from repro.core.services.critical import (
    CRITICAL,
    FIELD_CRITICAL,
    CriticalNodeService,
)
from repro.core.services.snapshot import SnapshotService, decode_snapshot
from repro.net.simulator import Network
from repro.net.topology import Topology


@dataclass
class SnapshotOutcome:
    """A decoded topology snapshot."""

    nodes: set[int]
    links: set[frozenset[tuple[int, int]]]
    result: TraversalResult

    @property
    def ok(self) -> bool:
        return bool(self.result.reports)


@dataclass
class CriticalOutcome:
    """Verdict of a critical-node check."""

    node: int
    critical: bool
    result: TraversalResult


@dataclass
class ChainOutcome:
    """Result of a service-chain resolution (anycast chaining extension)."""

    path: list[int] = field(default_factory=list)  # delivery node per leg
    legs: list[TraversalResult] = field(default_factory=list)
    completed: bool = False

    @property
    def in_band_messages(self) -> int:
        return sum(leg.in_band_messages for leg in self.legs)


class SmartSouthRuntime:
    """All four data-plane functions over one network."""

    def __init__(
        self,
        network: Network | Topology,
        mode: str = "interpreted",
        fast_path: bool | None = None,
        batch: bool | None = None,
    ) -> None:
        if isinstance(network, Topology):
            network = Network(network)
        self.network = network
        self.mode = mode
        #: Compiled-switch engine flag (None: the network's default); see
        #: :mod:`repro.openflow.fastpath` and docs/FASTPATH.md.
        self.fast_path = network.fast_path if fast_path is None else fast_path
        #: Batched drain-mode flag, wired like ``fast_path`` (None: the
        #: network's default); see the batching section of docs/FASTPATH.md.
        self.batch = network.batch if batch is None else batch
        self._engines: dict[str, _BaseEngine] = {}

    # ------------------------------------------------------------------ #
    # Engine management                                                  #
    # ------------------------------------------------------------------ #

    def engine_for(
        self, service: Service, key: str | None = None
    ) -> _BaseEngine:
        """Build (or fetch) an engine running *service*.

        Engines are cached by *key* (default: the service name), so repeated
        calls reuse one rule installation; callers with configurable
        services must fold the full configuration into the key.
        """
        key = key or service.name
        engine = self._engines.get(key)
        if engine is None:
            engine = make_engine(
                self.network,
                service,
                self.mode,
                fast_path=self.fast_path,
                batch=self.batch,
            )
            self._engines[key] = engine
        return engine

    # ------------------------------------------------------------------ #
    # Case study 1: snapshot                                             #
    # ------------------------------------------------------------------ #

    def snapshot(self, root: int) -> SnapshotOutcome:
        """Collect the live topology reachable from *root*."""
        engine = self.engine_for(SnapshotService())
        result = engine.trigger(root)
        if result.reports:
            reporter, packet = result.reports[-1]
            nodes, links = decode_snapshot(packet)
            # An isolated root never sends, hence never records itself; the
            # packet-in's source switch identifies it to the requester.
            nodes.add(reporter)
        else:
            nodes, links = set(), set()
        return SnapshotOutcome(nodes=nodes, links=links, result=result)

    def snapshot_chunked(self, root: int, max_records: int = 16):
        """Snapshot split across packets of at most *max_records* records
        (the paper's §3.1 splitting remark).

        Returns (nodes, links, stats) or None if the traversal died.
        """
        from repro.core.services.snapshot import (
            ChunkedSnapshotCollector,
            ChunkedSnapshotService,
        )

        service = ChunkedSnapshotService(max_records)
        engine = self.engine_for(service, key=f"snapshot_chunked:{max_records}")
        return ChunkedSnapshotCollector(engine).run(root)

    # ------------------------------------------------------------------ #
    # Case study 2: anycast / priocast / service chains                  #
    # ------------------------------------------------------------------ #

    def anycast(
        self, root: int, gid: int, groups: Mapping[int, set[int]]
    ) -> TraversalResult:
        """Deliver a request to any member of group *gid* (host-injected:
        0 out-of-band messages)."""
        service = AnycastService(groups)
        config = sorted((g, tuple(sorted(m))) for g, m in groups.items())
        engine = self.engine_for(service, key=f"anycast:{config}")
        return engine.trigger(root, fields={FIELD_GID: gid}, from_controller=False)

    def priocast(
        self, root: int, gid: int, priorities: Mapping[int, Mapping[int, int]]
    ) -> TraversalResult:
        """Deliver to the highest-priority reachable member of *gid*."""
        service = PriocastService(priorities)
        config = sorted(
            (g, tuple(sorted(p.items()))) for g, p in priorities.items()
        )
        engine = self.engine_for(service, key=f"priocast:{config}")
        return engine.trigger(root, fields={FIELD_GID: gid}, from_controller=False)

    def service_chain(
        self, root: int, chain: list[int], groups: Mapping[int, set[int]]
    ) -> ChainOutcome:
        """Resolve a chain of anycast groups (middlebox chaining, §3.2).

        Each leg is one anycast traversal; the next leg is injected at the
        previous delivery point, as a middlebox forwarding the packet onward
        through its own self port would.
        """
        outcome = ChainOutcome()
        at = root
        for gid in chain:
            result = self.anycast(at, gid, groups)
            outcome.legs.append(result)
            delivered = result.delivered_at
            if delivered is None:
                return outcome  # chain broken: some group unreachable
            outcome.path.append(delivered)
            at = delivered
        outcome.completed = True
        return outcome

    # ------------------------------------------------------------------ #
    # Case study 3: blackhole detection                                  #
    # ------------------------------------------------------------------ #

    def detect_blackhole_smart(self, root: int) -> BlackholeVerdict:
        """Two-phase smart-counter detection (3 out-of-band messages).

        Each call gets a fresh install: smart counters are stateful switch
        groups, and the detection's "fetch = 1" test assumes they start
        from zero (a real controller would reset the groups instead).
        """
        self._blackhole_runs = getattr(self, "_blackhole_runs", 0) + 1
        engine = self.engine_for(
            BlackholeService(), key=f"blackhole:{self._blackhole_runs}"
        )
        return SmartCounterBlackholeDetector(engine).run(root)

    def detect_blackhole_ttl(self, root: int) -> BlackholeVerdict:
        """TTL binary-search detection (O(log E) probes)."""
        engine = self.engine_for(BlackholeTtlService())
        return TtlBinarySearchDetector(engine).run(root)

    def loss_monitor(self, moduli: tuple[int, ...] = (5, 7)) -> PacketLossMonitor:
        """Build a packet-loss monitor (interpreted engines only)."""
        service = LossCheckService(moduli)
        engine = make_engine(self.network, service, "interpreted")
        self._engines[f"losscheck:{moduli}"] = engine
        return PacketLossMonitor(engine)

    def load_monitor(self, moduli: tuple[int, ...] = (5, 7, 11)):
        """Build a per-link load monitor (the §4 smart-counter remark;
        interpreted engines only)."""
        from repro.core.services.load import LoadAuditService, LoadMonitor

        service = LoadAuditService(moduli)
        engine = make_engine(self.network, service, "interpreted")
        self._engines[f"loadaudit:{moduli}"] = engine
        return LoadMonitor(engine)

    # ------------------------------------------------------------------ #
    # Case study 4: critical node                                        #
    # ------------------------------------------------------------------ #

    def critical(self, node: int) -> CriticalOutcome:
        """Is *node* an articulation point of the live topology?"""
        engine = self.engine_for(CriticalNodeService())
        result = engine.trigger(node)
        verdict = False
        for _reporter, packet in result.reports:
            if packet.get(FIELD_CRITICAL) == CRITICAL:
                verdict = True
        return CriticalOutcome(node=node, critical=verdict, result=result)

    # ------------------------------------------------------------------ #
    # Plain traversal (connectivity probe)                               #
    # ------------------------------------------------------------------ #

    def traverse(self, root: int) -> TraversalResult:
        """Run the bare DFS; completes iff the root's component is healthy."""
        engine = self.engine_for(PlainTraversalService())
        return engine.trigger(root)
