"""Supervision epochs: tagged retries with origin-side stale squashing.

The fast-failover groups of the paper only mask links that fail *before* a
traversal starts; a mid-traversal failure, a lossy link, or a silent
blackhole swallows the trigger packet and leaves the service hung.  The
supervisor (:mod:`repro.control.supervisor`) recovers by retrying under a
fresh **epoch**: a small tag carried in reserved header bits
(:data:`~repro.core.fields.FIELD_EPOCH`).  Any packet of an abandoned
attempt that eventually wanders back to the origin is *squashed* there — a
single high-priority match rule on ``epoch != current`` in a real
deployment, the :class:`EpochGate` check in the interpreted template — which
gives at-most-once result delivery without any per-packet controller round
trip.

Epoch 0 means "unsupervised" and is never squashed, so all pre-existing
services and tests are unaffected.  Live epochs take values ``1..2^bits-1``
and wrap around; since only one epoch per origin is active at a time, the
gate's staleness test is plain inequality and the wrap hazard is bounded by
the 63-epoch window (a packet must survive 62 consecutive retries of the
same call to alias — far beyond any configured retry budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fields import EPOCH_BITS
from repro.net.topology import Topology

#: Number of usable (nonzero) epoch values before wrap-around.
EPOCH_SPACE = (1 << EPOCH_BITS) - 1


class EpochClock:
    """Allocates supervision epochs ``1..2^bits-1``, wrapping past zero."""

    def __init__(self, start: int = 0) -> None:
        if not 0 <= start <= EPOCH_SPACE:
            raise ValueError(f"epoch start {start} out of range")
        self._current = start

    @property
    def current(self) -> int:
        """The most recently allocated epoch (0 if none yet)."""
        return self._current

    def advance(self) -> int:
        """Allocate and return a fresh epoch (never 0)."""
        nxt = self._current + 1
        if nxt > EPOCH_SPACE:
            nxt = 1
        self._current = nxt
        return nxt

    def resync(self, margin: int = 2) -> int:
        """Post-crash jump: burn *margin* epochs so anything allocated before
        the controller died — including an attempt that was mid-flight when
        the crash hit — is strictly stale under the new clock.

        The jump is wrap-aware (it reuses :meth:`advance`), and *margin* is
        bounded by the epoch space: jumping a full revolution would alias
        the in-flight epoch instead of retiring it.
        """
        if not 1 <= margin < EPOCH_SPACE:
            raise ValueError(f"resync margin {margin} out of range")
        for _ in range(margin):
            self.advance()
        return self._current


@dataclass
class EpochGate:
    """Origin-side squash filter for stale-epoch packets.

    Installed on a service (``service.epoch_gate``), checked by the template
    interpreter before any hook runs: a packet arriving at *origin* whose
    epoch tag is nonzero and differs from *epoch* is dropped on the floor.
    This is the interpreted-engine analogue of the table-0 rule
    ``match(epoch != current) -> drop`` the compiler would install at the
    origin on every retry.
    """

    origin: int
    epoch: int
    #: Stale packets squashed so far (supervisor telemetry).
    squashed: int = 0
    #: Packet ids squashed, for trace cross-referencing.
    squashed_packets: list[int] = field(default_factory=list)

    def admits(self, tag: int) -> bool:
        """Should a packet tagged *tag* be processed at the origin?"""
        return tag == 0 or tag == self.epoch


def watchdog_deadline(
    service_name: str,
    topology: Topology,
    max_link_delay: float,
    safety_factor: float = 4.0,
) -> float:
    """Origin watchdog deadline for one supervised attempt (time units).

    ``deadline = hop bound × max link delay × safety factor``: the Table 2
    closed forms bound the number of in-band crossings of a complete
    traversal, each crossing takes at most the slowest link's delay, and the
    safety factor absorbs failover reroutes, duplication and reorder jitter.
    A traversal silent past this deadline has provably lost its packet (or
    is so delayed that retrying is cheaper than waiting).
    """
    if max_link_delay <= 0:
        raise ValueError("max link delay must be positive")
    if safety_factor < 1.0:
        raise ValueError("safety factor must be >= 1")
    from repro.analysis.complexity import traversal_hop_bound

    bound = traversal_hop_bound(
        service_name, topology.num_nodes, topology.num_edges
    )
    return bound * max_link_delay * safety_factor
