"""The OpenFlow group table.

Four group types are modelled:

* ``ALL`` — execute every bucket on a clone of the packet (multicast).
* ``INDIRECT`` — execute the single bucket.
* ``FF`` (fast failover) — execute the first *live* bucket.  Liveness of a
  bucket is defined by its ``watch_port``; a bucket with no watch port is
  unconditionally live.  This is the OpenFlow 1.3 mechanism SmartSouth uses
  to skip failed ports without consulting the controller.
* ``SELECT`` with a **round-robin** bucket-selection policy (an optional
  OpenFlow 1.3 feature the paper's NoviKit switches support).  Successive
  packets applied to the group execute successive buckets, wrapping around.
  The paper's *smart counters* are built exactly from this: a group with k
  buckets, bucket j writing j into a scratch field, is a fetch-and-increment
  counter modulo k.

Group chaining (a bucket invoking another group) is permitted as in OF 1.3,
but cycles are rejected at execution time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.openflow.actions import Action, EmitFn, GroupAction
from repro.openflow.errors import GroupError
from repro.openflow.packet import Packet

#: Liveness oracle: maps a physical port number to "is the attached link up".
LivenessFn = Callable[[int], bool]


class GroupType(enum.Enum):
    """OpenFlow 1.3 group types (SELECT uses round-robin selection)."""

    ALL = "all"
    INDIRECT = "indirect"
    FF = "fast_failover"
    SELECT = "select_round_robin"


@dataclass
class Bucket:
    """An action bucket.

    ``watch_port`` is only meaningful for ``FF`` groups: the bucket is live
    iff the watched port's link is up.  ``None`` means always live (used for
    the terminal "send to parent" bucket of SmartSouth's sweep groups).
    ``packet_count`` mirrors OpenFlow's per-bucket statistics, which the
    control plane can read with a group-stats request.
    """

    actions: Sequence[Action]
    watch_port: int | None = None
    packet_count: int = 0

    def __post_init__(self) -> None:
        self.actions = tuple(self.actions)


@dataclass
class Group:
    """A group-table entry."""

    group_id: int
    group_type: GroupType
    buckets: list[Bucket] = field(default_factory=list)
    #: Round-robin cursor (SELECT groups only): index of the next bucket.
    rr_next: int = 0
    #: Number of times the group was executed.
    packet_count: int = 0

    def __post_init__(self) -> None:
        if self.group_type is GroupType.INDIRECT and len(self.buckets) > 1:
            raise GroupError(
                f"INDIRECT group {self.group_id} must have at most one bucket"
            )


class GroupTable:
    """All groups of one switch, plus the execution engine for them."""

    def __init__(self, liveness: LivenessFn) -> None:
        self._groups: dict[int, Group] = {}
        self._liveness = liveness
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter; the fast path invalidates compiled group
        programs when it changes.  Port-liveness flips are *not* mutations
        (failover consults the liveness oracle per packet)."""
        return self._version

    def touch(self) -> None:
        """Record an out-of-band mutation (bucket lists edited in place)."""
        self._version += 1

    def add(self, group: Group) -> Group:
        if group.group_id in self._groups:
            raise GroupError(f"duplicate group id {group.group_id}")
        self._groups[group.group_id] = group
        self._version += 1
        return group

    def get(self, group_id: int) -> Group:
        try:
            return self._groups[group_id]
        except KeyError:
            raise GroupError(f"unknown group id {group_id}") from None

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def groups(self) -> Sequence[Group]:
        return list(self._groups.values())

    # ------------------------------------------------------------------ #
    # Execution                                                          #
    # ------------------------------------------------------------------ #

    def execute(
        self,
        group_id: int,
        packet: Packet,
        emit: EmitFn,
        in_port: int,
        _active: frozenset[int] = frozenset(),
    ) -> None:
        """Run group *group_id* on *packet*.

        ``_active`` tracks the chain of groups currently executing so that
        bucket-to-group chaining cannot loop.
        """
        if group_id in _active:
            raise GroupError(f"group chaining loop through group {group_id}")
        group = self.get(group_id)
        group.packet_count += 1
        active = _active | {group_id}

        if group.group_type is GroupType.ALL:
            for bucket in group.buckets:
                clone = packet.copy()
                self._run_bucket(bucket, clone, emit, in_port, active)
        elif group.group_type is GroupType.INDIRECT:
            if group.buckets:
                self._run_bucket(group.buckets[0], packet, emit, in_port, active)
        elif group.group_type is GroupType.FF:
            bucket = self._first_live_bucket(group)
            if bucket is not None:
                self._run_bucket(bucket, packet, emit, in_port, active)
            # No live bucket: OpenFlow drops the packet silently.
        elif group.group_type is GroupType.SELECT:
            if not group.buckets:
                raise GroupError(f"SELECT group {group_id} has no buckets")
            bucket = group.buckets[group.rr_next]
            group.rr_next = (group.rr_next + 1) % len(group.buckets)
            self._run_bucket(bucket, packet, emit, in_port, active)
        else:  # pragma: no cover - exhaustive enum
            raise GroupError(f"unsupported group type {group.group_type}")

    def _first_live_bucket(self, group: Group) -> Bucket | None:
        for bucket in group.buckets:
            if bucket.watch_port is None:
                return bucket
            if self._liveness(bucket.watch_port):
                return bucket
        return None

    def bucket_live(self, bucket: Bucket) -> bool:
        """Expose bucket liveness (used by the static verifier)."""
        return bucket.watch_port is None or self._liveness(bucket.watch_port)

    def _run_bucket(
        self,
        bucket: Bucket,
        packet: Packet,
        emit: EmitFn,
        in_port: int,
        active: frozenset[int],
    ) -> None:
        bucket.packet_count += 1
        for action in bucket.actions:
            if isinstance(action, GroupAction):
                self.execute(action.group_id, packet, emit, in_port, active)
            else:
                action.apply(packet, emit, in_port)
