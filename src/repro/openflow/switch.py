"""The switch: a multi-table OpenFlow 1.3 pipeline plus a group table."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.openflow.actions import GroupAction, Instructions
from repro.openflow.errors import PipelineError, TableError
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.group import Group, GroupTable, LivenessFn
from repro.openflow.match import Match
from repro.openflow.packet import (
    IN_PORT,
    Packet,
    is_physical_port,
)


@dataclass(frozen=True)
class PacketOut:
    """One packet emitted by the pipeline on a (physical or reserved) port."""

    port: int
    packet: Packet


class Switch:
    """A simulated OpenFlow switch.

    The switch owns numbered ports ``1..num_ports``, an ordered list of flow
    tables and a group table.  ``liveness`` reports whether the link behind a
    physical port is up; it backs both fast-failover bucket selection and the
    (purely informational) port-status view.

    With ``fast_path=True`` the pipeline runs on the compiled indexed-dispatch
    engine of :mod:`repro.openflow.fastpath` instead of the interpreted
    per-entry scan.  The two are observably identical (the differential
    suite proves it); table and group mutations invalidate the compiled
    index transparently, and failover port-liveness is consulted per packet
    on both paths.
    """

    #: Hard cap on pipeline steps per packet, to turn accidental rule loops
    #: into loud errors instead of hangs.
    MAX_PIPELINE_STEPS = 1024

    def __init__(
        self,
        node_id: int,
        num_ports: int,
        liveness: LivenessFn | None = None,
        fast_path: bool = False,
    ) -> None:
        if num_ports < 0:
            raise PipelineError(f"switch {node_id}: negative port count")
        self.node_id = node_id
        self.num_ports = num_ports
        self._liveness: LivenessFn = liveness or (lambda port: True)
        self.tables: dict[int, FlowTable] = {}
        self.groups = GroupTable(self._port_live)
        self.packets_processed = 0
        self.table_misses = 0
        self._fast_path = None
        if fast_path:
            self.enable_fast_path()

    # ------------------------------------------------------------------ #
    # Configuration                                                      #
    # ------------------------------------------------------------------ #

    def table(self, table_id: int) -> FlowTable:
        """Return table *table_id*, creating it if absent."""
        if table_id not in self.tables:
            self.tables[table_id] = FlowTable(table_id)
        return self.tables[table_id]

    def install(
        self,
        table_id: int,
        match: Match,
        instructions: Instructions,
        priority: int = 0,
        cookie: str = "",
    ) -> FlowEntry:
        """Install a flow entry; the main hook used by the compiler."""
        return self.table(table_id).install(match, instructions, priority, cookie)

    def add_group(self, group: Group) -> Group:
        return self.groups.add(group)

    def set_liveness(self, liveness: LivenessFn) -> None:
        """Replace the port-liveness oracle (wired up by the simulator).

        No fast-path invalidation needed: both engines read the oracle
        through :meth:`_port_live` on every failover decision.
        """
        self._liveness = liveness

    def enable_fast_path(self) -> None:
        """Switch packet processing to the compiled indexed engine."""
        if self._fast_path is None:
            from repro.openflow.fastpath import FastPath

            self._fast_path = FastPath(self)

    def disable_fast_path(self) -> None:
        """Return to the interpreted per-entry scan."""
        self._fast_path = None

    @property
    def fast_path_enabled(self) -> bool:
        return self._fast_path is not None

    def warm_fast_path(self) -> None:
        """Pre-compile every table and group program (no-op if disabled).

        Compilation is lazy by default; benches call this so the timed hot
        loop never pays a compile.
        """
        if self._fast_path is not None:
            self._fast_path.warm()

    def invalidate_fast_path(self) -> None:
        """Drop compiled fast-path artifacts (recompiled on next packet).

        Mutations through the :class:`FlowTable` / :class:`GroupTable` APIs
        invalidate automatically via version counters; call this only after
        editing entry or bucket objects in place.
        """
        if self._fast_path is not None:
            self._fast_path.invalidate()

    def _port_live(self, port: int) -> bool:
        return self._liveness(port)

    def port_live(self, port: int) -> bool:
        """True if *port* is a physical port whose link is up."""
        return is_physical_port(port) and port <= self.num_ports and self._liveness(port)

    def live_ports(self) -> list[int]:
        """All physical ports with an up link, in ascending order."""
        return [p for p in range(1, self.num_ports + 1) if self._liveness(p)]

    def rule_count(self) -> int:
        """Total installed flow entries (all tables)."""
        return sum(len(t) for t in self.tables.values())

    def group_count(self) -> int:
        return len(self.groups)

    # ------------------------------------------------------------------ #
    # Pipeline execution                                                 #
    # ------------------------------------------------------------------ #

    def process(self, packet: Packet, in_port: int) -> list[PacketOut]:
        """Run *packet* (arriving on *in_port*) through the pipeline.

        Returns every emitted (port, packet) pair.  Output actions emit a
        snapshot copy of the packet, as OpenFlow does; reserved port
        ``IN_PORT`` is resolved to *in_port* here.  An empty list means the
        packet was dropped (table miss with no entry, or no live FF bucket).
        """
        if self._fast_path is not None:
            return self._fast_path.process(packet, in_port)
        self.packets_processed = self.packets_processed + 1
        outputs: list[PacketOut] = []
        metadata = 0

        def emit(port: int, pkt: Packet) -> None:
            resolved = in_port if port == IN_PORT else port
            outputs.append(PacketOut(resolved, pkt.copy()))

        table_id = 0
        steps = 0
        while True:
            steps += 1
            if steps > self.MAX_PIPELINE_STEPS:
                raise PipelineError(
                    f"switch {self.node_id}: pipeline exceeded "
                    f"{self.MAX_PIPELINE_STEPS} steps (rule loop?)"
                )
            table = self.tables.get(table_id)
            if table is None:
                raise TableError(
                    f"switch {self.node_id}: goto to missing table {table_id}"
                )
            context = self._context(packet, in_port, metadata)
            entry = table.lookup(context)
            if entry is None:
                # Table miss with no miss entry: drop (OF 1.3 default).
                self.table_misses += 1
                return outputs
            instructions = entry.instructions
            if instructions.write_metadata is not None:
                value, mask = instructions.write_metadata
                metadata = (metadata & ~mask) | (value & mask)
            for action in instructions.apply_actions:
                if isinstance(action, GroupAction):
                    self.groups.execute(action.group_id, packet, emit, in_port)
                else:
                    action.apply(packet, emit, in_port)
            if instructions.goto_table is None:
                return outputs
            if instructions.goto_table <= table_id:
                raise PipelineError(
                    f"switch {self.node_id}: goto_table must move forward "
                    f"({table_id} -> {instructions.goto_table})"
                )
            table_id = instructions.goto_table

    def process_batch(self, items: list, deliver) -> None:
        """Run a batch of ``(packet, in_port)`` arrivals through the pipeline.

        ``deliver(index, outputs)`` is called once per item, in item order,
        with outputs as raw ``(port, packet)`` tuples (the batch protocol
        skips PacketOut records; outputs lists must not be retained by the
        callback).  Observably identical to calling :meth:`process` once
        per item: with the fast path enabled the compiled engine amortizes
        lookups across the batch, otherwise this is a plain per-packet
        loop over the interpreter.
        """
        if self._fast_path is not None:
            self._fast_path.process_batch(items, deliver)
            return
        for index, (packet, in_port) in enumerate(items):
            outputs = self.process(packet, in_port)
            deliver(index, [(out.port, out.packet) for out in outputs])

    @staticmethod
    def _context(
        packet: Packet, in_port: int, metadata: int
    ) -> Mapping[str, int]:
        context = dict(packet.fields)
        context["in_port"] = in_port
        context["metadata"] = metadata
        return context

    # ------------------------------------------------------------------ #
    # Introspection (used by the verifier and benchmarks)                #
    # ------------------------------------------------------------------ #

    def iter_entries(self) -> Iterable[tuple[int, FlowEntry]]:
        for table_id in sorted(self.tables):
            for entry in self.tables[table_id].entries():
                yield table_id, entry

    def inventory_digest(self) -> str:
        """Digest of the installed flow/group configuration.

        This is the switch side of the post-crash inventory handshake: a
        restarted controller, having lost its soft state, asks each switch
        for this digest and reprograms only the switches whose digest
        disagrees with the expected program (OF 1.3 would use a multipart
        flow/group-desc reply; one digest message models the same
        information at the paper's message granularity).  The text form is
        deterministic — tables sorted by id, entries in priority/seq order,
        groups in insertion order — so equal configurations hash equally.
        """
        return hashlib.sha256(self.describe().encode()).hexdigest()

    def describe(self) -> str:
        """Multi-line dump of the installed configuration."""
        lines = [f"switch {self.node_id} ({self.num_ports} ports)"]
        for table_id in sorted(self.tables):
            table = self.tables[table_id]
            lines.append(f"  table {table_id} ({len(table)} entries)")
            for entry in table.entries():
                lines.append(f"    {entry.describe()}")
        for group in self.groups.groups():
            lines.append(
                f"  group {group.group_id} {group.group_type.value} "
                f"({len(group.buckets)} buckets)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Switch({self.node_id}, ports={self.num_ports}, "
            f"rules={self.rule_count()}, groups={self.group_count()})"
        )
