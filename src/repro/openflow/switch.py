"""The switch: a multi-table OpenFlow 1.3 pipeline plus a group table."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.determinism import Rng, seeded_rng
from repro.openflow.actions import GroupAction, Instructions
from repro.openflow.errors import InstallError, PipelineError, TableError
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.group import Bucket, Group, GroupTable, LivenessFn
from repro.openflow.match import Match
from repro.openflow.packet import (
    IN_PORT,
    Packet,
    is_physical_port,
)


@dataclass(frozen=True)
class PacketOut:
    """One packet emitted by the pipeline on a (physical or reserved) port."""

    port: int
    packet: Packet


@dataclass(frozen=True)
class SwitchFaultConfig:
    """Seeded switch-local fault model (the data-plane mirror of
    :class:`~repro.net.channel.ChannelFaultConfig`).

    Attach with :meth:`Switch.set_faults`.  The only fault today is the
    *partial install*: each :meth:`Switch.adopt_program` push draws once to
    decide interruption and, if interrupted, once more for the cut position
    — leaving a prefix of the program installed and the inventory digest
    drifted.  ``fail_budget`` bounds the total interruptions per switch so
    a controller with bounded retries always converges.

    An inactive config (the default) draws no RNG and allocates nothing:
    the fault-free path stays bit-identical to a switch with no config.
    """

    #: Probability that one program push is interrupted partway.
    partial_install_prob: float = 0.0
    #: Total interruptions this switch may ever inject.
    fail_budget: int = 2
    #: Seed of the switch-private fault stream.
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.partial_install_prob <= 1.0:
            raise ValueError("partial_install_prob must be in [0, 1]")
        if self.fail_budget < 0:
            raise ValueError("fail_budget must be non-negative")

    @property
    def active(self) -> bool:
        """Whether this config can inject any fault at all."""
        return self.partial_install_prob > 0.0 and self.fail_budget > 0


class Switch:
    """A simulated OpenFlow switch.

    The switch owns numbered ports ``1..num_ports``, an ordered list of flow
    tables and a group table.  ``liveness`` reports whether the link behind a
    physical port is up; it backs both fast-failover bucket selection and the
    (purely informational) port-status view.

    With ``fast_path=True`` the pipeline runs on the compiled indexed-dispatch
    engine of :mod:`repro.openflow.fastpath` instead of the interpreted
    per-entry scan.  The two are observably identical (the differential
    suite proves it); table and group mutations invalidate the compiled
    index transparently, and failover port-liveness is consulted per packet
    on both paths.
    """

    #: Hard cap on pipeline steps per packet, to turn accidental rule loops
    #: into loud errors instead of hangs.
    MAX_PIPELINE_STEPS = 1024

    def __init__(
        self,
        node_id: int,
        num_ports: int,
        liveness: LivenessFn | None = None,
        fast_path: bool = False,
    ) -> None:
        if num_ports < 0:
            raise PipelineError(f"switch {node_id}: negative port count")
        self.node_id = node_id
        self.num_ports = num_ports
        self._liveness: LivenessFn = liveness or (lambda port: True)
        self.tables: dict[int, FlowTable] = {}
        self.groups = GroupTable(self._port_live)
        self.packets_processed = 0
        self.table_misses = 0
        self._fast_path = None
        self._down = False
        self._faults: SwitchFaultConfig | None = None
        self._fault_rng: Rng | None = None
        self._faults_left = 0
        if fast_path:
            self.enable_fast_path()

    # ------------------------------------------------------------------ #
    # Configuration                                                      #
    # ------------------------------------------------------------------ #

    def table(self, table_id: int) -> FlowTable:
        """Return table *table_id*, creating it if absent."""
        if table_id not in self.tables:
            self.tables[table_id] = FlowTable(table_id)
        return self.tables[table_id]

    def install(
        self,
        table_id: int,
        match: Match,
        instructions: Instructions,
        priority: int = 0,
        cookie: str = "",
    ) -> FlowEntry:
        """Install a flow entry; the main hook used by the compiler."""
        return self.table(table_id).install(match, instructions, priority, cookie)

    def add_group(self, group: Group) -> Group:
        return self.groups.add(group)

    def set_liveness(self, liveness: LivenessFn) -> None:
        """Replace the port-liveness oracle (wired up by the simulator).

        No fast-path invalidation needed: both engines read the oracle
        through :meth:`_port_live` on every failover decision.
        """
        self._liveness = liveness

    def enable_fast_path(self) -> None:
        """Switch packet processing to the compiled indexed engine."""
        if self._fast_path is None:
            from repro.openflow.fastpath import FastPath

            self._fast_path = FastPath(self)

    def disable_fast_path(self) -> None:
        """Return to the interpreted per-entry scan."""
        self._fast_path = None

    @property
    def fast_path_enabled(self) -> bool:
        return self._fast_path is not None

    def warm_fast_path(self) -> None:
        """Pre-compile every table and group program (no-op if disabled).

        Compilation is lazy by default; benches call this so the timed hot
        loop never pays a compile.
        """
        if self._fast_path is not None:
            self._fast_path.warm()

    def invalidate_fast_path(self) -> None:
        """Drop compiled fast-path artifacts (recompiled on next packet).

        Mutations through the :class:`FlowTable` / :class:`GroupTable` APIs
        invalidate automatically via version counters; call this only after
        editing entry or bucket objects in place.
        """
        if self._fast_path is not None:
            self._fast_path.invalidate()

    def set_faults(self, config: SwitchFaultConfig | None) -> None:
        """Attach (or clear, with None) the switch-local fault model.

        Only an *active* config allocates the private seeded RNG; attaching
        an inactive config is exactly as cheap as attaching none, so the
        fault model can be compiled in everywhere without perturbing
        fault-free byte-identity.
        """
        if config is not None:
            config.validate()
        if config is not None and config.active:
            self._faults = config
            self._fault_rng = seeded_rng(config.seed)
            self._faults_left = config.fail_budget
        else:
            self._faults = None
            self._fault_rng = None
            self._faults_left = 0

    # ------------------------------------------------------------------ #
    # Crash / reboot                                                     #
    # ------------------------------------------------------------------ #

    @property
    def down(self) -> bool:
        """True while the switch is crashed (dropping every arrival)."""
        return self._down

    def crash(self) -> None:
        """Take the switch down: every packet delivered to it is dropped.

        Idempotent and flag-only — safe to call from a timer or packet-step
        callback (the simulator forbids re-entering the event loop from
        those).  State is lost at :meth:`reboot`, not here, so a crash that
        is never rebooted behaves exactly like a silently dead box.
        """
        self._down = True

    def reboot(self) -> None:
        """Bring a crashed switch back up with factory-fresh state.

        Flow tables, the group table (including SELECT cursors and FF
        bucket counters) and every compiled fast-path artifact are lost;
        the controller must re-adopt the switch before it forwards
        anything again (a bare switch table-misses every packet).  The
        fast-path invalidation bumps the compiled engine's epoch, so the
        batched drain's generation counter can never confuse pre- and
        post-reboot programs.  No-op unless the switch is down.
        """
        if not self._down:
            return
        self.tables = {}
        self.groups = GroupTable(self._port_live)
        self.invalidate_fast_path()
        self._down = False

    def adopt_program(self, expected: "Switch") -> None:
        """Wipe this switch and re-install *expected*'s program.

        This is the controller's re-adoption push after a reboot (or after
        the inventory handshake reports drift): rules are pushed entry by
        entry in deterministic table/priority/seq order, then groups in
        insertion order, so a completed push reproduces *expected*'s
        :meth:`inventory_digest` exactly.  With an active
        :class:`SwitchFaultConfig` the push may be interrupted partway
        (one RNG draw for the decision, one for the cut position), raising
        :class:`~repro.openflow.errors.InstallError` and leaving the
        installed prefix behind — honest drift for the next retry round to
        detect and repair.
        """
        entries = list(expected.iter_entries())
        groups = list(expected.groups.groups())
        total = len(entries) + len(groups)
        cut = total
        if self._fault_rng is not None and self._faults_left > 0 and total:
            assert self._faults is not None
            if self._fault_rng.random() < self._faults.partial_install_prob:
                self._faults_left -= 1
                cut = self._fault_rng.randrange(total)
        self.tables = {}
        self.groups = GroupTable(self._port_live)
        self.invalidate_fast_path()
        done = 0
        for table_id, entry in entries:
            if done == cut:
                raise InstallError(
                    f"switch {self.node_id}: program push interrupted after "
                    f"{done}/{total} operations"
                )
            self.install(
                table_id, entry.match, entry.instructions,
                entry.priority, entry.cookie,
            )
            done += 1
        for group in groups:
            if done == cut:
                raise InstallError(
                    f"switch {self.node_id}: program push interrupted after "
                    f"{done}/{total} operations"
                )
            self.add_group(
                Group(
                    group.group_id,
                    group.group_type,
                    [
                        Bucket(actions=bucket.actions, watch_port=bucket.watch_port)
                        for bucket in group.buckets
                    ],
                )
            )
            done += 1

    def _port_live(self, port: int) -> bool:
        return self._liveness(port)

    def port_live(self, port: int) -> bool:
        """True if *port* is a physical port whose link is up."""
        return is_physical_port(port) and port <= self.num_ports and self._liveness(port)

    def live_ports(self) -> list[int]:
        """All physical ports with an up link, in ascending order."""
        return [p for p in range(1, self.num_ports + 1) if self._liveness(p)]

    def rule_count(self) -> int:
        """Total installed flow entries (all tables)."""
        return sum(len(t) for t in self.tables.values())

    def group_count(self) -> int:
        return len(self.groups)

    # ------------------------------------------------------------------ #
    # Pipeline execution                                                 #
    # ------------------------------------------------------------------ #

    def process(self, packet: Packet, in_port: int) -> list[PacketOut]:
        """Run *packet* (arriving on *in_port*) through the pipeline.

        Returns every emitted (port, packet) pair.  Output actions emit a
        snapshot copy of the packet, as OpenFlow does; reserved port
        ``IN_PORT`` is resolved to *in_port* here.  An empty list means the
        packet was dropped (table miss with no entry, or no live FF bucket).
        """
        if self._down:
            return []  # crashed: every arrival is silently dropped
        if self._fast_path is not None:
            return self._fast_path.process(packet, in_port)
        self.packets_processed = self.packets_processed + 1
        outputs: list[PacketOut] = []
        metadata = 0

        def emit(port: int, pkt: Packet) -> None:
            resolved = in_port if port == IN_PORT else port
            outputs.append(PacketOut(resolved, pkt.copy()))

        table_id = 0
        steps = 0
        while True:
            steps += 1
            if steps > self.MAX_PIPELINE_STEPS:
                raise PipelineError(
                    f"switch {self.node_id}: pipeline exceeded "
                    f"{self.MAX_PIPELINE_STEPS} steps (rule loop?)"
                )
            table = self.tables.get(table_id)
            if table is None:
                if table_id == 0 and not self.tables:
                    # A bare switch (factory-fresh after a reboot) has no
                    # table 0 at all: that is a table miss, not a pipeline
                    # misconfiguration — drop, as OF 1.3 does.
                    self.table_misses += 1
                    return outputs
                raise TableError(
                    f"switch {self.node_id}: goto to missing table {table_id}"
                )
            context = self._context(packet, in_port, metadata)
            entry = table.lookup(context)
            if entry is None:
                # Table miss with no miss entry: drop (OF 1.3 default).
                self.table_misses += 1
                return outputs
            instructions = entry.instructions
            if instructions.write_metadata is not None:
                value, mask = instructions.write_metadata
                metadata = (metadata & ~mask) | (value & mask)
            for action in instructions.apply_actions:
                if isinstance(action, GroupAction):
                    self.groups.execute(action.group_id, packet, emit, in_port)
                else:
                    action.apply(packet, emit, in_port)
            if instructions.goto_table is None:
                return outputs
            if instructions.goto_table <= table_id:
                raise PipelineError(
                    f"switch {self.node_id}: goto_table must move forward "
                    f"({table_id} -> {instructions.goto_table})"
                )
            table_id = instructions.goto_table

    def process_batch(self, items: list, deliver) -> None:
        """Run a batch of ``(packet, in_port)`` arrivals through the pipeline.

        ``deliver(index, outputs)`` is called once per item, in item order,
        with outputs as raw ``(port, packet)`` tuples (the batch protocol
        skips PacketOut records; outputs lists must not be retained by the
        callback).  Observably identical to calling :meth:`process` once
        per item: with the fast path enabled the compiled engine amortizes
        lookups across the batch, otherwise this is a plain per-packet
        loop over the interpreter.
        """
        if self._down:
            for index in range(len(items)):
                deliver(index, [])
            return
        if self._fast_path is not None:
            self._fast_path.process_batch(items, deliver)
            return
        for index, (packet, in_port) in enumerate(items):
            outputs = self.process(packet, in_port)
            deliver(index, [(out.port, out.packet) for out in outputs])

    @staticmethod
    def _context(
        packet: Packet, in_port: int, metadata: int
    ) -> Mapping[str, int]:
        context = dict(packet.fields)
        context["in_port"] = in_port
        context["metadata"] = metadata
        return context

    # ------------------------------------------------------------------ #
    # Introspection (used by the verifier and benchmarks)                #
    # ------------------------------------------------------------------ #

    def iter_entries(self) -> Iterable[tuple[int, FlowEntry]]:
        for table_id in sorted(self.tables):
            for entry in self.tables[table_id].entries():
                yield table_id, entry

    def inventory_digest(self) -> str:
        """Digest of the installed flow/group configuration.

        This is the switch side of the post-crash inventory handshake: a
        restarted controller, having lost its soft state, asks each switch
        for this digest and reprograms only the switches whose digest
        disagrees with the expected program (OF 1.3 would use a multipart
        flow/group-desc reply; one digest message models the same
        information at the paper's message granularity).  The text form is
        deterministic — tables sorted by id, entries in priority/seq order,
        groups in insertion order — so equal configurations hash equally.
        """
        return hashlib.sha256(self.describe().encode()).hexdigest()

    def describe(self) -> str:
        """Multi-line dump of the installed configuration."""
        lines = [f"switch {self.node_id} ({self.num_ports} ports)"]
        for table_id in sorted(self.tables):
            table = self.tables[table_id]
            lines.append(f"  table {table_id} ({len(table)} entries)")
            for entry in table.entries():
                lines.append(f"    {entry.describe()}")
        for group in self.groups.groups():
            lines.append(
                f"  group {group.group_id} {group.group_type.value} "
                f"({len(group.buckets)} buckets)"
            )
            for bucket in group.buckets:
                # Buckets are part of the digest so the resync handshake
                # sees group-table drift (changed actions, rewired FF
                # watch ports), not just flow-entry drift.  Actions are
                # frozen dataclasses, so their reprs are deterministic.
                watch = (
                    "" if bucket.watch_port is None
                    else f" watch={bucket.watch_port}"
                )
                actions = ", ".join(repr(action) for action in bucket.actions)
                lines.append(f"    bucket{watch} [{actions}]")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Switch({self.node_id}, ports={self.num_ports}, "
            f"rules={self.rule_count()}, groups={self.group_count()})"
        )
