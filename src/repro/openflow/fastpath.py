"""Compiled switch fast path: indexed dispatch for the packet hot loop.

The interpreted pipeline (:meth:`repro.openflow.switch.Switch.process`)
resolves every packet with a linear priority scan over each table's entries,
building a full context dict and calling :meth:`Match.hits` per entry.  That
is faithful but slow — the paper's whole point is that match-action lookup is
*cheap*, and our chaos campaigns, model-check replays and scalability benches
should be bottlenecked by the algorithm, not the emulation.

This module compiles each :class:`~repro.openflow.flowtable.FlowTable` into
an indexed dispatch structure and each entry's instructions into a
pre-resolved closure, so the hot loop does dict lookups instead of per-entry
match evaluation.  Semantics are *identical* to the interpreter — including
entry/group/bucket packet counters, SELECT round-robin cursors, fast-failover
liveness (consulted per packet, never cached), error messages, and error
timing — and the differential suite in ``tests/test_fastpath_differential.py``
asserts byte-identical observables between both engines.

Index layout (see docs/FASTPATH.md)
-----------------------------------

Entries are partitioned by *signature*: the sorted tuple of ``(field, mask)``
pairs the entry tests (``mask None`` = exact match on all bits).  Tests with
``mask == 0`` constrain nothing (OXM permits such TLVs) and are dropped from
the signature.  For each signature the compiler builds one hash bucket map::

    key = tuple(context[field] & mask for field, mask in signature)
    buckets[key] -> candidates sorted by (-priority, seq)

Because a signature covers *all* of an entry's tests, a key hit is exactly a
match hit.  Entries with an empty signature (table-miss wildcards, default
gotos) form the always-matching residue list.  A lookup probes each
signature's map once plus the residue head and picks the best candidate by
``(-priority, seq)`` — the same priority-then-insertion-order rule the
interpreter documents.

Invalidation
------------

Compiled tables are cached per ``(table, FlowTable.version)``; compiled group
programs per ``GroupTable.version``.  Any table mutation (add / remove /
modify) or group addition bumps the respective version and the stale compile
is dropped lazily on the next packet.  Fast-failover bucket selection calls
the switch's liveness oracle on every execution, so port-liveness flips take
effect immediately — the same path as the interpreter, with no invalidation
needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.openflow.actions import (
    Action,
    DecTtl,
    GroupAction,
    Instructions,
    Output,
    PopLabel,
    PushLabel,
    SetField,
)
from repro.openflow.errors import GroupError, PipelineError, TableError
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.group import Group, GroupType
from repro.openflow.packet import IN_PORT, Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (switch imports us)
    from repro.openflow.switch import PacketOut, Switch

#: Emission callback, same contract as :data:`repro.openflow.actions.EmitFn`.
EmitFn = Callable[[int, "Packet"], None]
#: A compiled operation: ``op(packet, emit, in_port, active_groups)``.
OpFn = Callable[[Packet, EmitFn, int, frozenset], None]

_EMPTY_ACTIVE: frozenset[int] = frozenset()


class CompiledEntry:
    """One flow entry with its instructions pre-resolved to closures."""

    __slots__ = ("entry", "sort_key", "ops", "goto", "write_metadata")

    def __init__(
        self,
        entry: FlowEntry,
        ops: tuple[OpFn, ...] = (),
    ) -> None:
        self.entry = entry
        # The interpreter's documented rule: highest priority wins, ties
        # break by insertion order (FlowEntry.seq).
        self.sort_key = (-entry.priority, entry.seq)
        self.ops = ops
        self.goto = entry.instructions.goto_table
        self.write_metadata = entry.instructions.write_metadata


# --------------------------------------------------------------------- #
# Key extraction                                                        #
# --------------------------------------------------------------------- #

#: A field getter: ``get(fields, in_port, metadata) -> int``.
_GetFn = Callable[[dict, int, int], int]

#: Compiled key extractors, cached per signature (recompiles are frequent
#: under churny workloads; the extractor only depends on the signature).
_KEY_FN_CACHE: dict[tuple, _GetFn] = {}


def _slot_expr(name: str, mask: int | None) -> str:
    """The Python expression reading one signature slot from the context.

    ``in_port`` and ``metadata`` are pipeline registers, not packet fields
    (mirrors :meth:`Switch._context`); everything else reads the packet's
    field dict with the "absent reads as 0" convention.
    """
    if name == "in_port":
        expr = "ip"
    elif name == "metadata":
        expr = "md"
    else:
        expr = f"f.get({name!r}, 0)"
    if mask is not None:
        expr = f"({expr} & {mask})"
    return expr


def _make_key_fn(signature: tuple[tuple[str, int | None], ...]) -> _GetFn:
    """Compile a signature into a key extractor.

    The extractor is generated as one flat lambda (no per-field closure
    calls — this sits on the hottest path of every lookup).  Single-field
    signatures key on the bare value, avoiding a tuple allocation per
    probe.  Field names and masks are embedded via ``repr``, so arbitrary
    field-name strings are safe to compile.
    """
    key_fn = _KEY_FN_CACHE.get(signature)
    if key_fn is None:
        exprs = [_slot_expr(name, mask) for name, mask in signature]
        body = exprs[0] if len(exprs) == 1 else "(" + ", ".join(exprs) + ")"
        key_fn = eval(f"lambda f, ip, md: {body}", {"__builtins__": {}})
        _KEY_FN_CACHE[signature] = key_fn
    return key_fn


def _entry_signature(entry: FlowEntry) -> tuple[tuple[str, int | None], ...]:
    """The sorted (field, mask) shape of an entry's match.

    ``mask == 0`` tests are dropped: they constrain nothing (and OXM
    validation already forced their value to 0).
    """
    return tuple(
        sorted(
            (test.name, test.mask)
            for test in entry.match.tests.values()
            if test.mask != 0
        )
    )


def _entry_key(
    entry: FlowEntry, signature: tuple[tuple[str, int | None], ...]
):
    """The bucket key this entry occupies under *signature*."""
    values = tuple(entry.match.tests[name].value for name, _mask in signature)
    return values[0] if len(signature) == 1 else values


class FastTable:
    """One flow table compiled to signature-indexed hash dispatch."""

    __slots__ = ("table_id", "groups", "residue")

    def __init__(
        self,
        table_id: int,
        groups: list[tuple[_GetFn, dict]],
        residue: list[CompiledEntry],
    ) -> None:
        self.table_id = table_id
        #: One (key_fn, buckets) pair per distinct match signature.
        self.groups = groups
        #: Always-matching entries (empty signature), best first.
        self.residue = residue

    def lookup(
        self, fields: dict, in_port: int, metadata: int
    ) -> CompiledEntry | None:
        """Best matching compiled entry, or None (table miss).

        Equivalent to :meth:`FlowTable.lookup` minus the counter bump (the
        caller bumps, so a pure lookup stays side-effect free for tests).
        """
        best: CompiledEntry | None = None
        for key_fn, buckets in self.groups:
            candidates = buckets.get(key_fn(fields, in_port, metadata))
            if candidates is not None:
                head = candidates[0]
                if best is None or head.sort_key < best.sort_key:
                    best = head
        if self.residue:
            head = self.residue[0]
            if best is None or head.sort_key < best.sort_key:
                best = head
        return best


def compile_table(
    table: FlowTable,
    entry_factory: Callable[[FlowEntry], CompiledEntry] = CompiledEntry,
) -> FastTable:
    """Compile *table* into a :class:`FastTable`.

    *entry_factory* builds the per-entry record; the default produces
    lookup-only records (no instruction closures), which is what the fuzz
    harness uses.  :class:`FastPath` passes its full instruction compiler.
    """
    by_signature: dict[tuple, dict] = {}
    residue: list[CompiledEntry] = []
    for entry in table.entries():
        compiled = entry_factory(entry)
        signature = _entry_signature(entry)
        if not signature:
            residue.append(compiled)
            continue
        buckets = by_signature.setdefault(signature, {})
        buckets.setdefault(_entry_key(entry, signature), []).append(compiled)

    groups: list[tuple[_GetFn, dict]] = []
    for signature, buckets in by_signature.items():
        for candidates in buckets.values():
            candidates.sort(key=lambda c: c.sort_key)
        groups.append((_make_key_fn(signature), buckets))
    residue.sort(key=lambda c: c.sort_key)
    return FastTable(table.table_id, groups, residue)


# --------------------------------------------------------------------- #
# Group programs                                                        #
# --------------------------------------------------------------------- #


class _GroupProgram:
    """One group compiled to per-bucket closures (type dispatch hoisted)."""

    __slots__ = ("group", "group_type", "buckets")

    def __init__(
        self,
        group: Group,
        buckets: list[tuple[int | None, OpFn]],
    ) -> None:
        self.group = group
        self.group_type = group.group_type
        #: (watch_port, run_bucket) pairs, in bucket order.
        self.buckets = buckets


class FastPath:
    """The compiled engine of one switch.

    Owns the per-table compile cache and the group-program cache; both are
    invalidated lazily by version comparison, so any mutation through the
    :class:`FlowTable` / :class:`GroupTable` APIs is picked up transparently
    on the next packet.
    """

    def __init__(self, switch: "Switch") -> None:
        from repro.openflow.switch import PacketOut  # import cycle guard

        self._switch = switch
        self._packet_out = PacketOut
        #: table_id -> (FlowTable.version at compile time, FastTable)
        self._tables: dict[int, tuple[int, FastTable]] = {}
        #: group_id -> compiled program (valid for _groups_version)
        self._programs: dict[int, _GroupProgram] = {}
        self._groups_version = switch.groups.version

    # -- cache management ------------------------------------------------ #

    def invalidate(self) -> None:
        """Drop every compiled artifact (recompiled lazily on next use).

        Mutations through the table/group APIs invalidate automatically;
        this hook exists for callers that mutate entry or bucket objects
        in place (see :meth:`Switch.invalidate_fast_path`).
        """
        self._tables.clear()
        self._programs.clear()
        self._groups_version = self._switch.groups.version

    def warm(self) -> None:
        """Eagerly compile every table and group program.

        Compilation is otherwise lazy (first packet pays it); benches and
        latency-sensitive starts call this so the hot loop never compiles.
        """
        self._check_groups()
        for table_id in self._switch.tables:
            self._fast_table(table_id)
        for group in self._switch.groups.groups():
            if group.group_id not in self._programs:
                self._compile_group(group.group_id)

    def _check_groups(self) -> None:
        version = self._switch.groups.version
        if version != self._groups_version:
            # Entry closures embed group programs, so a group-table change
            # invalidates the table compiles too.
            self._tables.clear()
            self._programs.clear()
            self._groups_version = version

    def _fast_table(self, table_id: int) -> FastTable | None:
        table = self._switch.tables.get(table_id)
        if table is None:
            return None
        cached = self._tables.get(table_id)
        if cached is not None and cached[0] == table.version:
            return cached[1]
        fast = compile_table(table, self._compile_entry)
        self._tables[table_id] = (table.version, fast)
        return fast

    # -- instruction compilation ----------------------------------------- #

    def _compile_entry(self, entry: FlowEntry) -> CompiledEntry:
        return CompiledEntry(entry, self._compile_actions(entry.instructions))

    def _compile_actions(self, instructions: Instructions) -> tuple[OpFn, ...]:
        ops: list[OpFn] = []
        for action in instructions.apply_actions:
            ops.extend(self._compile_action(action))
        return tuple(ops)

    def _compile_action(self, action: Action) -> list[OpFn]:
        """Compile one action to closures (possibly several, if flattened)."""
        if type(action) is SetField:
            name, value = action.name, action.value
            if value >= 0:

                def set_field(pkt, emit, in_port, active, n=name, v=value):
                    pkt.fields[n] = v

                return [set_field]
            # Negative constants raise at apply time in the interpreter;
            # fall through to the generic path to keep that timing.
        elif type(action) is Output:
            port = action.port

            def output(pkt, emit, in_port, active, p=port):
                emit(p, pkt)

            return [output]
        elif type(action) is GroupAction:
            return self._compile_group_action(action.group_id)
        elif type(action) is PushLabel:
            record = action.record

            def push(pkt, emit, in_port, active, r=record):
                pkt.stack.append(r)

            return [push]
        elif type(action) is PopLabel:
            count = action.count

            def pop(pkt, emit, in_port, active, c=count):
                stack = pkt.stack
                for _ in range(c):
                    if stack:
                        stack.pop()

            return [pop]
        elif type(action) is DecTtl:
            name = action.field_name

            def dec_ttl(pkt, emit, in_port, active, n=name):
                fields = pkt.fields
                value = fields.get(n, 0)
                fields[n] = value - 1 if value > 0 else 0

            return [dec_ttl]

        # Unknown / custom Action subclass: defer to its own apply(), so
        # custom services (docs/TUTORIAL.md) run unchanged on the fast path.
        def generic(pkt, emit, in_port, active, a=action):
            a.apply(pkt, emit, in_port)

        return [generic]

    def _compile_group_action(self, group_id: int) -> list[OpFn]:
        """A ``group`` action: flatten where safe, else an indirect call.

        Safe flattening: the group exists now, is INDIRECT with exactly one
        bucket, and that bucket contains no nested group action.  Such a
        group cannot participate in a chaining loop and has no dynamic
        selection state, so its bucket actions are inlined (counter bumps
        included).  Everything else — FF (liveness is dynamic), SELECT
        (cursor state), ALL (cloning), chains, and ids not yet installed —
        goes through :meth:`_execute_group` at packet time, exactly like the
        interpreter.
        """
        table = self._switch.groups
        if group_id in table:
            group = table.get(group_id)
            if (
                group.group_type is GroupType.INDIRECT
                and len(group.buckets) == 1
                and not any(
                    isinstance(a, GroupAction) for a in group.buckets[0].actions
                )
            ):
                bucket = group.buckets[0]
                inner = []
                for action in bucket.actions:
                    inner.extend(self._compile_action(action))

                def flattened(
                    pkt, emit, in_port, active,
                    g=group, b=bucket, ops=tuple(inner),
                ):
                    g.packet_count += 1
                    b.packet_count += 1
                    for op in ops:
                        op(pkt, emit, in_port, active)

                return [flattened]

        def indirect(pkt, emit, in_port, active, gid=group_id):
            self._execute_group(gid, pkt, emit, in_port, active)

        return [indirect]

    def _compile_group(self, group_id: int) -> _GroupProgram:
        group = self._switch.groups.get(group_id)  # GroupError if unknown
        buckets: list[tuple[int | None, OpFn]] = []
        for bucket in group.buckets:
            ops: list[OpFn] = []
            for action in bucket.actions:
                ops.extend(self._compile_action(action))

            def run_bucket(pkt, emit, in_port, active, b=bucket, os=tuple(ops)):
                b.packet_count += 1
                for op in os:
                    op(pkt, emit, in_port, active)

            buckets.append((bucket.watch_port, run_bucket))
        program = _GroupProgram(group, buckets)
        self._programs[group_id] = program
        return program

    def _execute_group(
        self,
        group_id: int,
        packet: Packet,
        emit: EmitFn,
        in_port: int,
        active: frozenset[int],
    ) -> None:
        """Run a compiled group program (semantics of GroupTable.execute)."""
        if group_id in active:
            raise GroupError(f"group chaining loop through group {group_id}")
        program = self._programs.get(group_id)
        if program is None:
            program = self._compile_group(group_id)
        group = program.group
        group.packet_count += 1
        active = active | {group_id}
        kind = program.group_type
        buckets = program.buckets
        if kind is GroupType.FF:
            # Liveness is consulted per execution — port flips take effect
            # immediately, the same path as the interpreter's failover.
            live = self._switch._port_live
            for watch_port, run in buckets:
                if watch_port is None or live(watch_port):
                    run(packet, emit, in_port, active)
                    return
            return  # no live bucket: drop silently (OF 1.3)
        if kind is GroupType.SELECT:
            if not buckets:
                raise GroupError(f"SELECT group {group_id} has no buckets")
            index = group.rr_next
            group.rr_next = (index + 1) % len(buckets)
            buckets[index][1](packet, emit, in_port, active)
            return
        if kind is GroupType.ALL:
            for _watch, run in buckets:
                run(packet.copy(), emit, in_port, active)
            return
        if kind is GroupType.INDIRECT:
            if buckets:
                buckets[0][1](packet, emit, in_port, active)
            return
        raise GroupError(f"unsupported group type {kind}")  # pragma: no cover

    # -- the hot loop ------------------------------------------------------ #

    def process(self, packet: Packet, in_port: int) -> "list[PacketOut]":
        """Pipeline execution, mirroring :meth:`Switch.process` exactly."""
        switch = self._switch
        self._check_groups()
        switch.packets_processed += 1
        outputs: list[PacketOut] = []
        append = outputs.append
        packet_out = self._packet_out

        def emit(port: int, pkt: Packet) -> None:
            append(packet_out(in_port if port == IN_PORT else port, pkt.copy()))

        fields = packet.fields
        metadata = 0
        table_id = 0
        steps = 0
        max_steps = switch.MAX_PIPELINE_STEPS
        while True:
            steps += 1
            if steps > max_steps:
                raise PipelineError(
                    f"switch {switch.node_id}: pipeline exceeded "
                    f"{max_steps} steps (rule loop?)"
                )
            fast = self._fast_table(table_id)
            if fast is None:
                raise TableError(
                    f"switch {switch.node_id}: goto to missing table {table_id}"
                )
            compiled = fast.lookup(fields, in_port, metadata)
            if compiled is None:
                switch.table_misses += 1
                return outputs
            compiled.entry.packet_count += 1
            write_metadata = compiled.write_metadata
            if write_metadata is not None:
                value, mask = write_metadata
                metadata = (metadata & ~mask) | (value & mask)
            for op in compiled.ops:
                op(packet, emit, in_port, _EMPTY_ACTIVE)
            goto = compiled.goto
            if goto is None:
                return outputs
            if goto <= table_id:
                raise PipelineError(
                    f"switch {switch.node_id}: goto_table must move forward "
                    f"({table_id} -> {goto})"
                )
            table_id = goto
