"""Compiled switch fast path: indexed dispatch for the packet hot loop.

The interpreted pipeline (:meth:`repro.openflow.switch.Switch.process`)
resolves every packet with a linear priority scan over each table's entries,
building a full context dict and calling :meth:`Match.hits` per entry.  That
is faithful but slow — the paper's whole point is that match-action lookup is
*cheap*, and our chaos campaigns, model-check replays and scalability benches
should be bottlenecked by the algorithm, not the emulation.

This module compiles each :class:`~repro.openflow.flowtable.FlowTable` into
an indexed dispatch structure and each entry's instructions into a
pre-resolved closure, so the hot loop does dict lookups instead of per-entry
match evaluation.  Semantics are *identical* to the interpreter — including
entry/group/bucket packet counters, SELECT round-robin cursors, fast-failover
liveness (consulted per packet, never cached), error messages, and error
timing — and the differential suite in ``tests/test_fastpath_differential.py``
asserts byte-identical observables between both engines.

Index layout (see docs/FASTPATH.md)
-----------------------------------

Entries are partitioned by *signature*: the sorted tuple of ``(field, mask)``
pairs the entry tests (``mask None`` = exact match on all bits).  Tests with
``mask == 0`` constrain nothing (OXM permits such TLVs) and are dropped from
the signature.  For each signature the compiler builds one hash bucket map::

    key = tuple(context[field] & mask for field, mask in signature)
    buckets[key] -> candidates sorted by (-priority, seq)

Because a signature covers *all* of an entry's tests, a key hit is exactly a
match hit.  Entries with an empty signature (table-miss wildcards, default
gotos) form the always-matching residue list.  A lookup probes each
signature's map once plus the residue head and picks the best candidate by
``(-priority, seq)`` — the same priority-then-insertion-order rule the
interpreter documents.

Invalidation
------------

Compiled tables are cached per ``(table, FlowTable.version)``; compiled group
programs per ``GroupTable.version``.  Any table mutation (add / remove /
modify) or group addition bumps the respective version and the stale compile
is dropped lazily on the next packet.  Fast-failover bucket selection calls
the switch's liveness oracle on every execution, so port-liveness flips take
effect immediately — the same path as the interpreter, with no invalidation
needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.openflow.actions import (
    Action,
    DecTtl,
    GroupAction,
    Instructions,
    Output,
    PopLabel,
    PushLabel,
    SetField,
)
from repro.core.determinism import next_packet_id
from repro.openflow.errors import GroupError, PipelineError, TableError
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.group import Group, GroupType
from repro.openflow.packet import IN_PORT, Packet, PacketBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (switch imports us)
    from repro.openflow.switch import PacketOut, Switch

#: Emission callback, same contract as :data:`repro.openflow.actions.EmitFn`.
EmitFn = Callable[[int, "Packet"], None]
#: A compiled operation: ``op(packet, emit, in_port, active_groups)``.
OpFn = Callable[[Packet, EmitFn, int, frozenset], None]

_EMPTY_ACTIVE: frozenset[int] = frozenset()

#: Distinguishes "memoized as None (table miss)" from "not memoized yet".
_MISS = object()


def _fast_copy(packet: Packet) -> Packet:
    """:meth:`Packet.copy` minus the dataclass-init overhead.

    The batched emit path clones one packet per output action; going
    through ``__new__`` skips the generated ``__init__`` and its default
    factories.  The packet id is drawn from the same allocator in the same
    order, so ids interleave exactly as on the scalar path.
    """
    clone = Packet.__new__(Packet)
    clone.fields = dict(packet.fields)
    clone.stack = list(packet.stack)
    clone.payload = packet.payload
    clone.packet_id = next_packet_id()
    clone.hops = packet.hops
    return clone


class CompiledEntry:
    """One flow entry with its instructions pre-resolved to closures."""

    __slots__ = (
        "entry",
        "sort_key",
        "ops",
        "goto",
        "write_metadata",
        "lookup_safe",
    )

    def __init__(
        self,
        entry: FlowEntry,
        ops: tuple[OpFn, ...] = (),
    ) -> None:
        self.entry = entry
        # The interpreter's documented rule: highest priority wins, ties
        # break by insertion order (FlowEntry.seq).
        self.sort_key = (-entry.priority, entry.seq)
        self.ops = ops
        self.goto = entry.instructions.goto_table
        self.write_metadata = entry.instructions.write_metadata
        # Whether executing this entry preserves lookup-key equality between
        # any two packets that agreed on every (field, mask) slot beforehand.
        # Constant set-fields write the same value to both, outputs and label
        # pushes/pops never touch fields, and write_metadata is a constant
        # function of the chain — so two key-equal packets stay key-equal at
        # every later table.  DecTtl breaks this under masks (equal *masked*
        # values can decrement to unequal ones), groups select buckets from
        # dynamic state, and custom actions are opaque; any of those makes
        # the entry unsafe as a non-final chain step (see the chain-replay
        # memo in :meth:`FastPath.process_batch`).
        safe = True
        for action in entry.instructions.apply_actions:
            kind = type(action)
            if kind is SetField:
                if action.value < 0:
                    safe = False
                    break
            elif kind is not Output and kind is not PushLabel and (
                kind is not PopLabel
            ):
                safe = False
                break
        self.lookup_safe = safe


# --------------------------------------------------------------------- #
# Key extraction                                                        #
# --------------------------------------------------------------------- #

#: A field getter: ``get(fields, in_port, metadata) -> int``.
_GetFn = Callable[[dict, int, int], int]

#: Compiled key extractors, cached per signature (recompiles are frequent
#: under churny workloads; the extractor only depends on the signature).
_KEY_FN_CACHE: dict[tuple, _GetFn] = {}


def _slot_expr(name: str, mask: int | None) -> str:
    """The Python expression reading one signature slot from the context.

    ``in_port`` and ``metadata`` are pipeline registers, not packet fields
    (mirrors :meth:`Switch._context`); everything else reads the packet's
    field dict with the "absent reads as 0" convention.
    """
    if name == "in_port":
        expr = "ip"
    elif name == "metadata":
        expr = "md"
    else:
        expr = f"f.get({name!r}, 0)"
    if mask is not None:
        expr = f"({expr} & {mask})"
    return expr


def _make_key_fn(signature: tuple[tuple[str, int | None], ...]) -> _GetFn:
    """Compile a signature into a key extractor.

    The extractor is generated as one flat lambda (no per-field closure
    calls — this sits on the hottest path of every lookup).  Single-field
    signatures key on the bare value, avoiding a tuple allocation per
    probe.  Field names and masks are embedded via ``repr``, so arbitrary
    field-name strings are safe to compile.
    """
    key_fn = _KEY_FN_CACHE.get(signature)
    if key_fn is None:
        exprs = [_slot_expr(name, mask) for name, mask in signature]
        body = exprs[0] if len(exprs) == 1 else "(" + ", ".join(exprs) + ")"
        key_fn = eval(f"lambda f, ip, md: {body}", {"__builtins__": {}})
        _KEY_FN_CACHE[signature] = key_fn
    return key_fn


def _const_key(f, ip, md):  # noqa: ARG001 - fixed extractor arity
    """Chain key when no table consults any field: all packets share it."""
    return 0


def _entry_signature(entry: FlowEntry) -> tuple[tuple[str, int | None], ...]:
    """The sorted (field, mask) shape of an entry's match.

    ``mask == 0`` tests are dropped: they constrain nothing (and OXM
    validation already forced their value to 0).
    """
    return tuple(
        sorted(
            (test.name, test.mask)
            for test in entry.match.tests.values()
            if test.mask != 0
        )
    )


def _entry_key(
    entry: FlowEntry, signature: tuple[tuple[str, int | None], ...]
):
    """The bucket key this entry occupies under *signature*."""
    values = tuple(entry.match.tests[name].value for name, _mask in signature)
    return values[0] if len(signature) == 1 else values


class FastTable:
    """One flow table compiled to signature-indexed hash dispatch."""

    __slots__ = ("table_id", "groups", "residue")

    def __init__(
        self,
        table_id: int,
        groups: list[tuple[_GetFn, dict, tuple]],
        residue: list[CompiledEntry],
    ) -> None:
        self.table_id = table_id
        #: One (key_fn, buckets, signature) triple per distinct match
        #: signature; the signature is kept for columnar key extraction.
        self.groups = groups
        #: Always-matching entries (empty signature), best first.
        self.residue = residue

    def lookup(
        self, fields: dict, in_port: int, metadata: int
    ) -> CompiledEntry | None:
        """Best matching compiled entry, or None (table miss).

        Equivalent to :meth:`FlowTable.lookup` minus the counter bump (the
        caller bumps, so a pure lookup stays side-effect free for tests).
        """
        best: CompiledEntry | None = None
        for key_fn, buckets, _signature in self.groups:
            candidates = buckets.get(key_fn(fields, in_port, metadata))
            if candidates is not None:
                head = candidates[0]
                if best is None or head.sort_key < best.sort_key:
                    best = head
        if self.residue:
            head = self.residue[0]
            if best is None or head.sort_key < best.sort_key:
                best = head
        return best

    def _resolve(self, combined_key) -> CompiledEntry | None:
        """Probe with pre-extracted keys (one per signature group)."""
        groups = self.groups
        best: CompiledEntry | None = None
        if len(groups) == 1:
            candidates = groups[0][1].get(combined_key)
            if candidates is not None:
                best = candidates[0]
        else:
            for (_key_fn, buckets, _signature), key in zip(groups, combined_key):
                candidates = buckets.get(key)
                if candidates is not None:
                    head = candidates[0]
                    if best is None or head.sort_key < best.sort_key:
                        best = head
        if self.residue:
            head = self.residue[0]
            if best is None or head.sort_key < best.sort_key:
                best = head
        return best

    def lookup_memo(
        self, fields: dict, in_port: int, metadata: int, memo: dict
    ) -> CompiledEntry | None:
        """:meth:`lookup` through a per-batch memo of resolved keys.

        Packets in a batch overwhelmingly share a handful of distinct keys
        (the signature partition), so resolution runs once per distinct key
        and every repeat is a dict hit.  Memo entries are keyed by this
        FastTable *object*: any table mutation recompiles into a fresh
        object, so stale hits are structurally impossible.
        """
        groups = self.groups
        if not groups:
            return self.residue[0] if self.residue else None
        if len(groups) == 1:
            combined = groups[0][0](fields, in_port, metadata)
        else:
            combined = tuple(
                key_fn(fields, in_port, metadata)
                for key_fn, _buckets, _signature in groups
            )
        key = (self, combined)
        hit = memo.get(key, _MISS)
        if hit is _MISS:
            hit = self._resolve(combined)
            memo[key] = hit
        return hit

    def lookup_batch(self, batch: PacketBatch, memo: dict) -> list:
        """Resolve a whole batch at pipeline entry in one columnar pass.

        One key-extraction sweep per signature group over the batch's field
        columns, then one resolution per *distinct* combined key (shared
        through *memo*, same keying as :meth:`lookup_memo`).  Only valid at
        pipeline entry — metadata is 0 and the field columns snapshot
        pre-action state — which is why goto-chain tables go through
        :meth:`lookup_memo` instead.
        """
        groups = self.groups
        n = len(batch.packets)
        if not groups:
            head = self.residue[0] if self.residue else None
            return [head] * n
        per_group: list[list] = []
        for _key_fn, _buckets, signature in groups:
            columns = []
            for name, mask in signature:
                column = batch.column(name)
                if mask is not None:
                    column = [value & mask for value in column]
                columns.append(column)
            if len(columns) == 1:
                per_group.append(columns[0])
            else:
                per_group.append(list(zip(*columns)))
        if len(per_group) == 1:
            combined = per_group[0]
        else:
            combined = list(zip(*per_group))
        resolved = []
        append = resolved.append
        get = memo.get
        for key_values in combined:
            key = (self, key_values)
            hit = get(key, _MISS)
            if hit is _MISS:
                hit = self._resolve(key_values)
                memo[key] = hit
            append(hit)
        return resolved


def compile_table(
    table: FlowTable,
    entry_factory: Callable[[FlowEntry], CompiledEntry] = CompiledEntry,
) -> FastTable:
    """Compile *table* into a :class:`FastTable`.

    *entry_factory* builds the per-entry record; the default produces
    lookup-only records (no instruction closures), which is what the fuzz
    harness uses.  :class:`FastPath` passes its full instruction compiler.
    """
    by_signature: dict[tuple, dict] = {}
    residue: list[CompiledEntry] = []
    for entry in table.entries():
        compiled = entry_factory(entry)
        signature = _entry_signature(entry)
        if not signature:
            residue.append(compiled)
            continue
        buckets = by_signature.setdefault(signature, {})
        buckets.setdefault(_entry_key(entry, signature), []).append(compiled)

    groups: list[tuple[_GetFn, dict, tuple]] = []
    for signature, buckets in by_signature.items():
        for candidates in buckets.values():
            candidates.sort(key=lambda c: c.sort_key)
        groups.append((_make_key_fn(signature), buckets, signature))
    residue.sort(key=lambda c: c.sort_key)
    return FastTable(table.table_id, groups, residue)


# --------------------------------------------------------------------- #
# Group programs                                                        #
# --------------------------------------------------------------------- #


class _GroupProgram:
    """One group compiled to per-bucket closures (type dispatch hoisted)."""

    __slots__ = ("group", "group_type", "buckets", "has_nested")

    def __init__(
        self,
        group: Group,
        buckets: list[tuple[int | None, OpFn]],
    ) -> None:
        self.group = group
        self.group_type = group.group_type
        #: (watch_port, run_bucket) pairs, in bucket order.
        self.buckets = buckets
        #: Whether any bucket chains into another group.  Only chained
        #: executions consult the active set, so a chain-free program skips
        #: the per-execution frozenset union.
        self.has_nested = any(
            type(action) is GroupAction
            for bucket in group.buckets
            for action in bucket.actions
        )


class FastPath:
    """The compiled engine of one switch.

    Owns the per-table compile cache and the group-program cache; both are
    invalidated lazily by version comparison, so any mutation through the
    :class:`FlowTable` / :class:`GroupTable` APIs is picked up transparently
    on the next packet.
    """

    def __init__(self, switch: "Switch") -> None:
        from repro.openflow.switch import PacketOut  # import cycle guard

        self._switch = switch
        self._packet_out = PacketOut
        #: table_id -> (FlowTable.version at compile time, FastTable)
        self._tables: dict[int, tuple[int, FastTable]] = {}
        #: group_id -> compiled program (valid for _groups_version)
        self._programs: dict[int, _GroupProgram] = {}
        self._groups_version = switch.groups.version
        #: (generation, key_fn) for the batch chain-replay memo (see
        #: :meth:`_chain_key_fn`); recomputed whenever the generation moves.
        self._chain_key_cache: tuple[int, _GetFn] | None = None
        #: Bumped by :meth:`invalidate` so in-place edits (which bump no
        #: table/group version) still advance the batch generation counter.
        self._epoch = 0

    # -- cache management ------------------------------------------------ #

    def invalidate(self) -> None:
        """Drop every compiled artifact (recompiled lazily on next use).

        Mutations through the table/group APIs invalidate automatically;
        this hook exists for callers that mutate entry or bucket objects
        in place (see :meth:`Switch.invalidate_fast_path`).
        """
        self._tables.clear()
        self._programs.clear()
        self._groups_version = self._switch.groups.version
        self._chain_key_cache = None
        self._epoch += 1

    def warm(self) -> None:
        """Eagerly compile every table and group program.

        Compilation is otherwise lazy (first packet pays it); benches and
        latency-sensitive starts call this so the hot loop never compiles.
        """
        self._check_groups()
        for table_id in self._switch.tables:
            self._fast_table(table_id)
        for group in self._switch.groups.groups():
            if group.group_id not in self._programs:
                self._compile_group(group.group_id)

    def _check_groups(self) -> None:
        version = self._switch.groups.version
        if version != self._groups_version:
            # Entry closures embed group programs, so a group-table change
            # invalidates the table compiles too.
            self._tables.clear()
            self._programs.clear()
            self._groups_version = version

    def _fast_table(self, table_id: int) -> FastTable | None:
        table = self._switch.tables.get(table_id)
        if table is None:
            return None
        cached = self._tables.get(table_id)
        if cached is not None and cached[0] == table.version:
            return cached[1]
        fast = compile_table(table, self._compile_entry)
        self._tables[table_id] = (table.version, fast)
        return fast

    # -- instruction compilation ----------------------------------------- #

    def _compile_entry(self, entry: FlowEntry) -> CompiledEntry:
        return CompiledEntry(entry, self._compile_actions(entry.instructions))

    def _compile_actions(self, instructions: Instructions) -> tuple[OpFn, ...]:
        ops: list[OpFn] = []
        for action in instructions.apply_actions:
            ops.extend(self._compile_action(action))
        return tuple(ops)

    def _compile_action(self, action: Action) -> list[OpFn]:
        """Compile one action to closures (possibly several, if flattened)."""
        if type(action) is SetField:
            name, value = action.name, action.value
            if value >= 0:

                def set_field(pkt, emit, in_port, active, n=name, v=value):
                    pkt.fields[n] = v

                return [set_field]
            # Negative constants raise at apply time in the interpreter;
            # fall through to the generic path to keep that timing.
        elif type(action) is Output:
            port = action.port

            def output(pkt, emit, in_port, active, p=port):
                emit(p, pkt)

            return [output]
        elif type(action) is GroupAction:
            return self._compile_group_action(action.group_id)
        elif type(action) is PushLabel:
            record = action.record

            def push(pkt, emit, in_port, active, r=record):
                pkt.stack.append(r)

            return [push]
        elif type(action) is PopLabel:
            count = action.count

            def pop(pkt, emit, in_port, active, c=count):
                stack = pkt.stack
                for _ in range(c):
                    if stack:
                        stack.pop()

            return [pop]
        elif type(action) is DecTtl:
            name = action.field_name

            def dec_ttl(pkt, emit, in_port, active, n=name):
                fields = pkt.fields
                value = fields.get(n, 0)
                fields[n] = value - 1 if value > 0 else 0

            return [dec_ttl]

        # Unknown / custom Action subclass: defer to its own apply(), so
        # custom services (docs/TUTORIAL.md) run unchanged on the fast path.
        def generic(pkt, emit, in_port, active, a=action):
            a.apply(pkt, emit, in_port)

        return [generic]

    def _compile_group_action(self, group_id: int) -> list[OpFn]:
        """A ``group`` action: flatten where safe, else an indirect call.

        Safe flattening: the group exists now, is INDIRECT with exactly one
        bucket, and that bucket contains no nested group action.  Such a
        group cannot participate in a chaining loop and has no dynamic
        selection state, so its bucket actions are inlined (counter bumps
        included).  Everything else — FF (liveness is dynamic), SELECT
        (cursor state), ALL (cloning), chains, and ids not yet installed —
        goes through :meth:`_execute_group` at packet time, exactly like the
        interpreter.
        """
        table = self._switch.groups
        if group_id in table:
            group = table.get(group_id)
            if (
                group.group_type is GroupType.INDIRECT
                and len(group.buckets) == 1
                and not any(
                    isinstance(a, GroupAction) for a in group.buckets[0].actions
                )
            ):
                bucket = group.buckets[0]
                inner = []
                for action in bucket.actions:
                    inner.extend(self._compile_action(action))

                def flattened(
                    pkt, emit, in_port, active,
                    g=group, b=bucket, ops=tuple(inner),
                ):
                    g.packet_count += 1
                    b.packet_count += 1
                    for op in ops:
                        op(pkt, emit, in_port, active)

                return [flattened]

        def indirect(pkt, emit, in_port, active, gid=group_id):
            self._execute_group(gid, pkt, emit, in_port, active)

        return [indirect]

    def _compile_group(self, group_id: int) -> _GroupProgram:
        group = self._switch.groups.get(group_id)  # GroupError if unknown
        buckets: list[tuple[int | None, OpFn]] = []
        for bucket in group.buckets:
            ops: list[OpFn] = []
            for action in bucket.actions:
                ops.extend(self._compile_action(action))

            def run_bucket(pkt, emit, in_port, active, b=bucket, os=tuple(ops)):
                b.packet_count += 1
                for op in os:
                    op(pkt, emit, in_port, active)

            buckets.append((bucket.watch_port, run_bucket))
        program = _GroupProgram(group, buckets)
        self._programs[group_id] = program
        return program

    def _execute_group(
        self,
        group_id: int,
        packet: Packet,
        emit: EmitFn,
        in_port: int,
        active: frozenset[int],
    ) -> None:
        """Run a compiled group program (semantics of GroupTable.execute)."""
        if group_id in active:
            raise GroupError(f"group chaining loop through group {group_id}")
        program = self._programs.get(group_id)
        if program is None:
            program = self._compile_group(group_id)
        group = program.group
        group.packet_count += 1
        if program.has_nested:
            active = active | {group_id}
        kind = program.group_type
        buckets = program.buckets
        if kind is GroupType.FF:
            # Liveness is consulted per execution — port flips take effect
            # immediately, the same path as the interpreter's failover.
            live = self._switch._port_live
            for watch_port, run in buckets:
                if watch_port is None or live(watch_port):
                    run(packet, emit, in_port, active)
                    return
            return  # no live bucket: drop silently (OF 1.3)
        if kind is GroupType.SELECT:
            if not buckets:
                raise GroupError(f"SELECT group {group_id} has no buckets")
            index = group.rr_next
            group.rr_next = (index + 1) % len(buckets)
            buckets[index][1](packet, emit, in_port, active)
            return
        if kind is GroupType.ALL:
            for _watch, run in buckets:
                run(packet.copy(), emit, in_port, active)
            return
        if kind is GroupType.INDIRECT:
            if buckets:
                buckets[0][1](packet, emit, in_port, active)
            return
        raise GroupError(f"unsupported group type {kind}")  # pragma: no cover

    # -- batch chain replay ------------------------------------------------ #

    def _chain_key_fn(self, generation: int) -> _GetFn:
        """The union key extractor for the batch chain-replay memo.

        Covers every ``(field, mask)`` slot any table of this switch
        consults (``metadata`` excluded — it starts at 0 and evolves as a
        constant function of the chain, so key-equal packets always agree
        on it).  Two packets with equal union keys and equal in-ports read
        identical values at *every* lookup a chain can perform, so — as
        long as every non-final step is :attr:`CompiledEntry.lookup_safe` —
        they traverse identical entry chains.  Cached per generation.
        """
        cached = self._chain_key_cache
        if cached is not None and cached[0] == generation:
            return cached[1]
        slots: set[tuple[str, int | None]] = set()
        for table_id in list(self._switch.tables):
            fast = self._fast_table(table_id)
            for _key_fn, _buckets, signature in fast.groups:
                for name, mask in signature:
                    if name != "metadata":
                        slots.add((name, mask))
        if slots:
            union = tuple(
                sorted(slots, key=lambda s: (s[0], -1 if s[1] is None else s[1]))
            )
            key_fn = _make_key_fn(union)
        else:
            key_fn = _const_key
        self._chain_key_cache = (generation, key_fn)
        return key_fn

    def _group_single_emit(self, group_id: int) -> bool:
        """Whether executing *group_id* emits at most once, as its last act.

        True for INDIRECT / FF / SELECT groups where every bucket either
        emits nothing (an empty drop bucket — FF terminals use these) or
        ends in exactly one ``Output`` preceded only by field/stack edits —
        the shapes every paper service compiles to.  ALL groups clone per
        bucket and custom actions may emit arbitrarily, so both disqualify;
        so does anything *after* an ``Output``, since the scalar path
        snapshots the packet at emission and an owned emission would not.
        """
        table = self._switch.groups
        if group_id not in table:
            return False
        group = table.get(group_id)
        if group.group_type is GroupType.ALL:
            return False
        for bucket in group.buckets:
            actions = bucket.actions
            final = len(actions) - 1
            for position, action in enumerate(actions):
                kind = type(action)
                if kind is Output:
                    if position != final:
                        return False
                elif kind is SetField:
                    if action.value < 0:
                        return False
                elif kind is not PushLabel and kind is not PopLabel and (
                    kind is not DecTtl
                ):
                    return False
        return True

    def _chain_elidable(self, steps: list[CompiledEntry]) -> bool:
        """Whether a recorded chain's only emission is its very last op.

        When true, replay may hand the *input* packet to that op instead of
        cloning it (`emit_owned`): the packet dies after its pipeline run,
        every observer snapshots state by value, and the fresh packet id is
        drawn at the same allocator position the clone would have drawn —
        so the elision is invisible to every observable.
        """
        emitter: tuple[int, int, int | None] | None = None
        for step_index, compiled in enumerate(steps):
            for action_index, action in enumerate(
                compiled.entry.instructions.apply_actions
            ):
                kind = type(action)
                if kind is SetField:
                    if action.value < 0:
                        return False
                elif kind is PushLabel or kind is PopLabel or kind is DecTtl:
                    continue
                elif kind is Output:
                    if emitter is not None:
                        return False
                    emitter = (step_index, action_index, None)
                elif kind is GroupAction:
                    if emitter is not None:
                        return False
                    emitter = (step_index, action_index, action.group_id)
                else:
                    return False
        if emitter is None:
            return False
        step_index, action_index, group_id = emitter
        last = len(steps) - 1
        actions = steps[last].entry.instructions.apply_actions
        if step_index != last or action_index != len(actions) - 1:
            return False
        if group_id is None:
            return True
        return self._group_single_emit(group_id)

    # -- the hot loop ------------------------------------------------------ #

    def process(self, packet: Packet, in_port: int) -> "list[PacketOut]":
        """Pipeline execution, mirroring :meth:`Switch.process` exactly."""
        switch = self._switch
        self._check_groups()
        switch.packets_processed += 1
        outputs: list[PacketOut] = []
        append = outputs.append
        packet_out = self._packet_out

        def emit(port: int, pkt: Packet) -> None:
            append(packet_out(in_port if port == IN_PORT else port, pkt.copy()))

        fields = packet.fields
        metadata = 0
        table_id = 0
        steps = 0
        max_steps = switch.MAX_PIPELINE_STEPS
        while True:
            steps += 1
            if steps > max_steps:
                raise PipelineError(
                    f"switch {switch.node_id}: pipeline exceeded "
                    f"{max_steps} steps (rule loop?)"
                )
            fast = self._fast_table(table_id)
            if fast is None:
                if table_id == 0 and not switch.tables:
                    # Bare switch (factory-fresh after a reboot): table
                    # miss, not a misconfiguration — mirror Switch.process.
                    switch.table_misses += 1
                    return outputs
                raise TableError(
                    f"switch {switch.node_id}: goto to missing table {table_id}"
                )
            compiled = fast.lookup(fields, in_port, metadata)
            if compiled is None:
                switch.table_misses += 1
                return outputs
            compiled.entry.packet_count += 1
            write_metadata = compiled.write_metadata
            if write_metadata is not None:
                value, mask = write_metadata
                metadata = (metadata & ~mask) | (value & mask)
            for op in compiled.ops:
                op(packet, emit, in_port, _EMPTY_ACTIVE)
            goto = compiled.goto
            if goto is None:
                return outputs
            if goto <= table_id:
                raise PipelineError(
                    f"switch {switch.node_id}: goto_table must move forward "
                    f"({table_id} -> {goto})"
                )
            table_id = goto

    def process_batch(self, items: list, deliver) -> None:
        """Run a batch of ``(packet, in_port)`` arrivals through the pipeline.

        Calls ``deliver(index, outputs)`` once per item, in item order, with
        outputs as raw ``(port, packet)`` tuples.  Execution is strictly
        *packet-major*: item *i*'s whole pipeline runs — and is delivered —
        before item *i+1* starts, so counter bumps, SELECT cursor advances,
        FF liveness reads, packet-id allocation and error timing all happen
        in the exact scalar sequence.  What the batch amortizes:

        * **chain replay** — the first packet of each distinct *union key*
          (every (field, mask) slot any table consults, extracted once per
          packet) records its full entry chain; every later key-equal
          packet replays the recorded ops with zero table lookups.  A chain
          records only while every non-final step is
          :attr:`CompiledEntry.lookup_safe`; otherwise that key is pinned
          to the per-lookup path.
        * **copy elision** — when a recorded chain's only emission is its
          final op (:meth:`_chain_elidable`), replay hands the input packet
          itself to that op: the packet dies after its run, and the fresh
          id is drawn at the same allocator position the clone's would be.
        * goto-chain lookups of non-replayed packets share a per-batch memo
          of resolved keys, and the first chain rejection triggers one
          columnar entry-table pass (:meth:`FastTable.lookup_batch`) for
          the rest of the batch.

        Divergence safety: a *generation* counter — table count plus every
        table/group version plus the invalidation epoch — is checked per
        packet.  Any mutation (a step hook between deliveries, a custom
        action, a non-passive sink) moves it, which drops every recorded
        chain and pre-resolved entry; the memo itself is keyed by
        compiled-table object, so recompiles strand stale keys.  From that
        point the batch re-looks-up per packet, never served stale.
        """
        switch = self._switch
        node_id = switch.node_id
        max_steps = switch.MAX_PIPELINE_STEPS
        fast_table = self._fast_table
        self._check_groups()
        memo: dict = {}
        chain_memo: dict = {}
        tables = switch.tables
        table_views = tables.values()
        groups = switch.groups
        outputs: list = []
        append = outputs.append
        in_port = 0

        def generation() -> int:
            # Strictly monotonic under mutation: versions and the epoch
            # only grow, and tables are never deleted.
            total = self._epoch + len(tables) + groups._version
            for table in table_views:
                total += table._version
            return total

        def emit(port: int, pkt: Packet, _copy=_fast_copy) -> None:
            append((in_port if port == IN_PORT else port, _copy(pkt)))

        def emit_owned(port: int, pkt: Packet, _next=next_packet_id) -> None:
            # Final-emission copy elision: the input packet is emitted
            # directly, drawing its fresh id exactly where the clone's
            # would have been drawn.
            pkt.packet_id = _next()
            append((in_port if port == IN_PORT else port, pkt))

        gen = generation()
        chain_key = self._chain_key_fn(gen)
        fast0 = fast_table(0)
        entries0: list | None = None
        empty_active = _EMPTY_ACTIVE
        for index, (packet, arrival_port) in enumerate(items):
            in_port = arrival_port
            fields = packet.fields
            gen_now = self._epoch + len(tables) + groups._version
            for table in table_views:
                gen_now += table._version
            if gen_now == gen:
                ckey = chain_key(fields, arrival_port, 0)
                chain = chain_memo.get(ckey, _MISS)
                if chain is not None and chain is not _MISS:
                    # Replay: (head steps, elided tail or None, missed).
                    head_steps, tail, missed = chain
                    switch.packets_processed += 1
                    for compiled in head_steps:
                        compiled.entry.packet_count += 1
                        for op in compiled.ops:
                            op(packet, emit, in_port, empty_active)
                    if tail is not None:
                        entry, tail_ops, final_op = tail
                        entry.packet_count += 1
                        for op in tail_ops:
                            op(packet, emit, in_port, empty_active)
                        final_op(packet, emit_owned, in_port, empty_active)
                    if missed:
                        switch.table_misses += 1
                    deliver(index, outputs)
                    outputs.clear()
                    continue
                record: list | None = [] if chain is _MISS else None
            else:
                # Mid-batch mutation: recompile the world, drop every
                # recorded chain and pre-resolved entry, rebase the
                # generation, and record afresh under the new key fn.
                self._check_groups()
                chain_memo.clear()
                gen = generation()
                chain_key = self._chain_key_fn(gen)
                fast0 = fast_table(0)
                entries0 = None
                ckey = chain_key(fields, arrival_port, 0)
                record = []
            switch.packets_processed += 1
            metadata = 0
            table_id = 0
            steps = 0
            missed = False
            if entries0 is not None:
                compiled = entries0[index]
                resolved = True
            else:
                compiled = None
                resolved = False
            while True:
                steps += 1
                if steps > max_steps:
                    raise PipelineError(
                        f"switch {node_id}: pipeline exceeded "
                        f"{max_steps} steps (rule loop?)"
                    )
                if not resolved:
                    fast = fast_table(table_id)
                    if fast is None:
                        if table_id == 0 and not tables:
                            # Bare switch: table miss (see Switch.process).
                            switch.table_misses += 1
                            missed = True
                            break
                        raise TableError(
                            f"switch {node_id}: goto to missing table {table_id}"
                        )
                    compiled = fast.lookup_memo(fields, in_port, metadata, memo)
                resolved = False
                if compiled is None:
                    switch.table_misses += 1
                    missed = True
                    break
                compiled.entry.packet_count += 1
                write_metadata = compiled.write_metadata
                if write_metadata is not None:
                    value, mask = write_metadata
                    metadata = (metadata & ~mask) | (value & mask)
                for op in compiled.ops:
                    op(packet, emit, in_port, empty_active)
                if record is not None:
                    record.append(compiled)
                goto = compiled.goto
                if goto is None:
                    break
                if goto <= table_id:
                    raise PipelineError(
                        f"switch {node_id}: goto_table must move forward "
                        f"({table_id} -> {goto})"
                    )
                if record is not None and not compiled.lookup_safe:
                    # This step may desynchronize later lookups between
                    # key-equal packets — pin the key to the lookup path,
                    # and amortize it with one columnar entry-table pass.
                    record = None
                    chain_memo[ckey] = None
                    if entries0 is None and fast0 is not None:
                        entries0 = fast0.lookup_batch(
                            PacketBatch.pack(items), memo
                        )
                table_id = goto
            if record is not None:
                # Pre-split at record time so replay never slices: the tail
                # triple carries the elided final step (entry, leading ops,
                # final op to run with emit_owned), or None when the chain
                # is not elidable and the head holds every step.
                if self._chain_elidable(record):
                    last = record[-1]
                    chain_memo[ckey] = (
                        tuple(record[:-1]),
                        (last.entry, last.ops[:-1], last.ops[-1]),
                        missed,
                    )
                else:
                    chain_memo[ckey] = (tuple(record), None, missed)
            deliver(index, outputs)
            outputs.clear()
