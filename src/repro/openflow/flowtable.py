"""Flow tables: priority-ordered sets of match → instructions entries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.openflow.actions import Instructions
from repro.openflow.errors import TableError, TableFullError
from repro.openflow.match import Match


@dataclass
class FlowEntry:
    """One flow-table entry.

    ``cookie`` is an opaque label the compiler uses to tag which template
    state an entry implements (useful for verification and debugging);
    ``packet_count`` mirrors OpenFlow's per-entry counters.  ``seq`` is the
    table-assigned insertion sequence number: it is the documented tie-break
    among equal-priority overlapping entries (earliest installed wins) and
    the identity the fast path sorts on.
    """

    match: Match
    instructions: Instructions
    priority: int = 0
    cookie: str = ""
    packet_count: int = 0
    seq: int = -1

    def describe(self) -> str:
        return (
            f"[prio={self.priority}] {self.match!r} -> "
            f"{self.instructions.describe()}"
            + (f"  # {self.cookie}" if self.cookie else "")
        )

    def behaviour(self) -> tuple:
        """Hashable key identifying what this entry *does* (not what it
        matches).  Two same-priority overlapping entries are only a problem
        when their behaviours differ; the verifier and the lint overlap rule
        both compare on this key."""
        return (
            self.instructions.apply_actions,
            self.instructions.goto_table,
            self.instructions.write_metadata,
        )


class FlowTable:
    """A single flow table.

    Lookup returns the highest-priority matching entry; ties are broken by
    insertion order — explicitly, via the per-entry ``seq`` counter, so the
    rule survives removals, in-place priority edits, and re-sorting, and the
    compiled fast path can reproduce it exactly.  (OpenFlow leaves
    overlapping same-priority behaviour undefined — the compiler never emits
    such overlaps, and the verifier in :mod:`repro.analysis.verify` checks
    that.)  ``modify`` keeps an entry's seq (it stays in place in the
    tie-break order); removing and re-adding assigns a fresh seq (it moves
    to the back).

    ``version`` increments on every mutation; the fast path
    (:mod:`repro.openflow.fastpath`) uses it to invalidate compiled indexes
    transparently.

    ``capacity`` (via :meth:`set_capacity`) bounds the entry count, modelling
    TCAM pressure: installs into a full table either evict the
    lowest-priority entry (``evict=True`` — deterministic: smallest
    ``(priority, seq)``, and only entries *strictly* below the incoming
    priority are candidates) or fail with
    :class:`~repro.openflow.errors.TableFullError` (OpenFlow's
    ``OFPFMFC_TABLE_FULL``).  Unbounded tables (the default) never pay for
    the feature beyond one attribute check per install.
    """

    def __init__(self, table_id: int, name: str = "") -> None:
        if table_id < 0:
            raise TableError(f"negative table id {table_id}")
        self.table_id = table_id
        self.name = name or f"table{table_id}"
        self._entries: list[FlowEntry] = []
        self._sorted = True
        self._version = 0
        self._next_seq = 0
        self._capacity: int | None = None
        self._evict = False
        self.evictions = 0

    @property
    def version(self) -> int:
        """Mutation counter (bumped by add/remove/modify/touch)."""
        return self._version

    @property
    def capacity(self) -> int | None:
        """Entry limit, or None for unbounded (the default)."""
        return self._capacity

    def set_capacity(self, capacity: int | None, evict: bool = False) -> None:
        """Bound the table to *capacity* entries (None removes the bound).

        ``evict=True`` selects the make-room policy: a full table evicts its
        lowest-``(priority, seq)`` entry, but only when that victim's
        priority is strictly below the incoming entry's — an install can
        never displace an equal-or-higher-priority rule, so the behaviour
        of the surviving rule set is a monotone under-approximation of the
        unbounded table.  Shrinking below the current occupancy is allowed;
        existing entries stay until the next install applies the policy.
        """
        if capacity is not None and capacity < 1:
            raise TableError(
                f"table {self.table_id}: capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._evict = evict

    def _mutated(self) -> None:
        self._sorted = False
        self._version += 1

    def touch(self) -> None:
        """Record an out-of-band mutation (an entry edited in place)."""
        self._mutated()

    def add(self, entry: FlowEntry) -> FlowEntry:
        """Install *entry* and return it (assigns its insertion seq).

        On a capacity-bounded full table this applies the eviction policy
        (see :meth:`set_capacity`) and raises
        :class:`~repro.openflow.errors.TableFullError` when no room can be
        made.
        """
        if self._capacity is not None and len(self._entries) >= self._capacity:
            self._make_room(entry)
        entry.seq = self._next_seq
        self._next_seq += 1
        self._entries.append(entry)
        self._mutated()
        return entry

    def _make_room(self, incoming: FlowEntry) -> None:
        """Evict one entry for *incoming*, or raise :class:`TableFullError`.

        The victim is the smallest ``(priority, seq)`` — the lowest-priority
        entry, oldest first — and must sit strictly below the incoming
        priority.  Both the scan order and the tie-break are deterministic,
        so identical install sequences produce identical tables bit for bit
        (the Hypothesis suite pins this across fast-path/batch modes).
        """
        assert self._capacity is not None
        victim: FlowEntry | None = None
        for entry in self._entries:
            if entry.priority >= incoming.priority:
                continue
            if victim is None or (entry.priority, entry.seq) < (
                victim.priority,
                victim.seq,
            ):
                victim = entry
        if victim is None or not self._evict:
            raise TableFullError(self.table_id, self._capacity)
        self._entries.remove(victim)
        self.evictions += 1
        self._mutated()

    def install(
        self,
        match: Match,
        instructions: Instructions,
        priority: int = 0,
        cookie: str = "",
    ) -> FlowEntry:
        """Convenience wrapper building and adding a :class:`FlowEntry`."""
        return self.add(FlowEntry(match, instructions, priority, cookie))

    def remove(
        self,
        match: Match | None = None,
        priority: int | None = None,
        predicate: Callable[[FlowEntry], bool] | None = None,
    ) -> list[FlowEntry]:
        """Remove and return entries selected by the given filters.

        Filters compose conjunctively: an entry is removed when its match
        equals *match* (if given), its priority equals *priority* (if
        given), and *predicate* accepts it (if given).  With no filters,
        every entry is removed (OpenFlow's delete-all).
        """
        removed: list[FlowEntry] = []
        kept: list[FlowEntry] = []
        for entry in self._entries:
            if (
                (match is None or entry.match == match)
                and (priority is None or entry.priority == priority)
                and (predicate is None or predicate(entry))
            ):
                removed.append(entry)
            else:
                kept.append(entry)
        if removed:
            self._entries = kept
            self._mutated()
        return removed

    def modify(
        self,
        match: Match,
        instructions: Instructions,
        priority: int | None = None,
    ) -> list[FlowEntry]:
        """Replace the instructions of entries whose match equals *match*
        (and priority, if given).  Modified entries keep their ``seq``, so
        their position in the same-priority tie-break order is preserved.
        Returns the modified entries.
        """
        modified: list[FlowEntry] = []
        for entry in self._entries:
            if entry.match == match and (
                priority is None or entry.priority == priority
            ):
                entry.instructions = instructions
                modified.append(entry)
        if modified:
            self._mutated()
        return modified

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            # Priority descending, then insertion order: the documented
            # same-priority tie-break, made explicit via seq rather than
            # relying on incidental list order + sort stability.
            self._entries.sort(key=lambda e: (-e.priority, e.seq))
            self._sorted = True

    def lookup(self, context: Mapping[str, int]) -> FlowEntry | None:
        """Return the highest-priority entry matching *context*, or None."""
        self._ensure_sorted()
        for entry in self._entries:
            if entry.match.hits(context):
                entry.packet_count += 1
                return entry
        return None

    def entries(self) -> Iterator[FlowEntry]:
        """Iterate entries in match order (highest priority first)."""
        self._ensure_sorted()
        return iter(self._entries)

    def indexed_entries(self) -> list[tuple[int, FlowEntry]]:
        """Entries in match order with their stable match-order index.

        The index is the analyzer's per-table entry identity: it is stable
        across calls as long as the table is not mutated, which lets the
        symbolic engine key reachability facts without requiring
        :class:`FlowEntry` to be hashable.
        """
        self._ensure_sorted()
        return list(enumerate(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowTable({self.name}, {len(self._entries)} entries)"
