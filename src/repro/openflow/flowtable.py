"""Flow tables: priority-ordered sets of match → instructions entries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.openflow.actions import Instructions
from repro.openflow.errors import TableError
from repro.openflow.match import Match


@dataclass
class FlowEntry:
    """One flow-table entry.

    ``cookie`` is an opaque label the compiler uses to tag which template
    state an entry implements (useful for verification and debugging);
    ``packet_count`` mirrors OpenFlow's per-entry counters.
    """

    match: Match
    instructions: Instructions
    priority: int = 0
    cookie: str = ""
    packet_count: int = 0

    def describe(self) -> str:
        return (
            f"[prio={self.priority}] {self.match!r} -> "
            f"{self.instructions.describe()}"
            + (f"  # {self.cookie}" if self.cookie else "")
        )

    def behaviour(self) -> tuple:
        """Hashable key identifying what this entry *does* (not what it
        matches).  Two same-priority overlapping entries are only a problem
        when their behaviours differ; the verifier and the lint overlap rule
        both compare on this key."""
        return (
            self.instructions.apply_actions,
            self.instructions.goto_table,
            self.instructions.write_metadata,
        )


class FlowTable:
    """A single flow table.

    Lookup returns the highest-priority matching entry; ties are broken by
    insertion order (OpenFlow leaves overlapping same-priority behaviour
    undefined — the compiler never emits such overlaps, and the verifier in
    :mod:`repro.analysis.verify` checks that).
    """

    def __init__(self, table_id: int, name: str = "") -> None:
        if table_id < 0:
            raise TableError(f"negative table id {table_id}")
        self.table_id = table_id
        self.name = name or f"table{table_id}"
        self._entries: list[FlowEntry] = []
        self._sorted = True

    def add(self, entry: FlowEntry) -> FlowEntry:
        """Install *entry* and return it."""
        self._entries.append(entry)
        self._sorted = False
        return entry

    def install(
        self,
        match: Match,
        instructions: Instructions,
        priority: int = 0,
        cookie: str = "",
    ) -> FlowEntry:
        """Convenience wrapper building and adding a :class:`FlowEntry`."""
        return self.add(FlowEntry(match, instructions, priority, cookie))

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            # Stable sort keeps insertion order among equal priorities.
            self._entries.sort(key=lambda e: -e.priority)
            self._sorted = True

    def lookup(self, context: Mapping[str, int]) -> FlowEntry | None:
        """Return the highest-priority entry matching *context*, or None."""
        self._ensure_sorted()
        for entry in self._entries:
            if entry.match.hits(context):
                entry.packet_count += 1
                return entry
        return None

    def entries(self) -> Iterator[FlowEntry]:
        """Iterate entries in match order (highest priority first)."""
        self._ensure_sorted()
        return iter(self._entries)

    def indexed_entries(self) -> list[tuple[int, FlowEntry]]:
        """Entries in match order with their stable match-order index.

        The index is the analyzer's per-table entry identity: it is stable
        across calls as long as the table is not mutated, which lets the
        symbolic engine key reachability facts without requiring
        :class:`FlowEntry` to be hashable.
        """
        self._ensure_sorted()
        return list(enumerate(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowTable({self.name}, {len(self._entries)} entries)"
