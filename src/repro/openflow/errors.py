"""Error taxonomy for the OpenFlow substrate."""


class OpenFlowError(Exception):
    """Base class for all errors raised by the OpenFlow substrate."""


class TableError(OpenFlowError):
    """A flow-table operation failed (bad table id, duplicate entry, ...)."""


class TableFullError(TableError):
    """An install hit a table's capacity and no entry could be evicted.

    Models OpenFlow's ``OFPFMFC_TABLE_FULL`` flow-mod failure.  Carries the
    table id and capacity so callers (and the chaos oracle) can report the
    pressure point precisely.
    """

    def __init__(self, table_id: int, capacity: int) -> None:
        super().__init__(
            f"table {table_id} full ({capacity} entries) and no lower-priority "
            f"entry to evict"
        )
        self.table_id = table_id
        self.capacity = capacity


class InstallError(TableError):
    """A program push onto a switch was interrupted partway.

    Raised by :meth:`repro.openflow.switch.Switch.adopt_program` when an
    active :class:`~repro.openflow.switch.SwitchFaultConfig` interrupts the
    install; the already-installed prefix stays behind, so the switch's
    inventory digest drifts from the expected program until the controller
    retries.
    """


class GroupError(OpenFlowError):
    """A group-table operation failed (unknown group, bad bucket, loop, ...)."""


class PipelineError(OpenFlowError):
    """Pipeline execution failed (goto backwards, missing table, ...)."""


class MatchError(OpenFlowError):
    """A match expression is malformed (bad mask, negative value, ...)."""


class ActionError(OpenFlowError):
    """An action is malformed or cannot be applied to the packet."""
