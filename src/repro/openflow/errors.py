"""Error taxonomy for the OpenFlow substrate."""


class OpenFlowError(Exception):
    """Base class for all errors raised by the OpenFlow substrate."""


class TableError(OpenFlowError):
    """A flow-table operation failed (bad table id, duplicate entry, ...)."""


class GroupError(OpenFlowError):
    """A group-table operation failed (unknown group, bad bucket, loop, ...)."""


class PipelineError(OpenFlowError):
    """Pipeline execution failed (goto backwards, missing table, ...)."""


class MatchError(OpenFlowError):
    """A match expression is malformed (bad mask, negative value, ...)."""


class ActionError(OpenFlowError):
    """An action is malformed or cannot be applied to the packet."""
