"""Actions and instructions of the simulated OpenFlow pipeline.

Only actions that exist in OpenFlow 1.3 are modelled; in particular there is
deliberately *no* "copy in_port into a header field" and no "compare two
fields" action — the SmartSouth compiler must (and does) work around both by
enumerating per-port and per-value-pair rules, exactly as a real deployment
would (see the paper's reference [2]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.openflow.errors import ActionError
from repro.openflow.packet import Packet

#: Callback used by actions that emit the packet somewhere: called with
#: (out_port, packet).  Reserved ports from :mod:`repro.openflow.packet` are
#: resolved by the switch, not here.
EmitFn = Callable[[int, Packet], None]


class Action:
    """Base class for all actions."""

    def apply(self, packet: Packet, emit: EmitFn, in_port: int) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class SetField(Action):
    """``set_field``: write a constant into a header field."""

    name: str
    value: int

    def apply(self, packet: Packet, emit: EmitFn, in_port: int) -> None:
        packet.set(self.name, self.value)


@dataclass(frozen=True)
class Output(Action):
    """``output``: emit the packet on a port (physical or reserved)."""

    port: int

    def apply(self, packet: Packet, emit: EmitFn, in_port: int) -> None:
        emit(self.port, packet)


@dataclass(frozen=True)
class GroupAction(Action):
    """``group``: hand the packet to a group-table entry."""

    group_id: int

    def apply(self, packet: Packet, emit: EmitFn, in_port: int) -> None:
        # Resolved by the switch, which owns the group table; reaching this
        # method means the action was applied outside a switch pipeline.
        raise ActionError("GroupAction must be executed by a switch pipeline")


@dataclass(frozen=True)
class PushLabel(Action):
    """``push``: push a constant record onto the packet's label stack.

    The snapshot service uses this to accumulate topology records; a real
    switch would push an MPLS label or a VLAN tag per record.
    """

    record: tuple[Any, ...]

    def apply(self, packet: Packet, emit: EmitFn, in_port: int) -> None:
        packet.push(self.record)


@dataclass(frozen=True)
class PopLabel(Action):
    """``pop``: discard the top label-stack record."""

    count: int = 1

    def apply(self, packet: Packet, emit: EmitFn, in_port: int) -> None:
        for _ in range(self.count):
            if packet.stack:
                packet.pop()


@dataclass(frozen=True)
class DecTtl(Action):
    """``dec_ttl``: decrement a TTL-like header field (floor at 0)."""

    field_name: str = "ttl"

    def apply(self, packet: Packet, emit: EmitFn, in_port: int) -> None:
        value = packet.get(self.field_name)
        packet.set(self.field_name, max(0, value - 1))


@dataclass(frozen=True)
class Instructions:
    """The instruction set attached to a flow entry.

    ``apply_actions`` run immediately in order; ``write_metadata`` updates the
    pipeline metadata register (masked); ``goto_table`` continues matching in
    a strictly later table (enforced by the switch).
    """

    apply_actions: Sequence[Action] = field(default_factory=tuple)
    goto_table: int | None = None
    write_metadata: tuple[int, int] | None = None  # (value, mask)

    def __post_init__(self) -> None:
        object.__setattr__(self, "apply_actions", tuple(self.apply_actions))
        if self.write_metadata is not None:
            value, mask = self.write_metadata
            if value & ~mask:
                raise ActionError(
                    f"metadata value {value:#x} has bits outside mask {mask:#x}"
                )

    def describe(self) -> str:
        """Short human-readable rendering, used by the verifier and traces."""
        parts = [type(action).__name__ for action in self.apply_actions]
        if self.write_metadata is not None:
            parts.append(f"meta={self.write_metadata[0]:#x}")
        if self.goto_table is not None:
            parts.append(f"goto:{self.goto_table}")
        return ",".join(parts) if parts else "(none)"
