"""Packets processed by the simulated OpenFlow pipeline.

A packet carries

* *header fields* — a mapping from field name to a non-negative integer.
  SmartSouth stores its whole traversal state here (``start``, per-node
  ``v<i>.par`` / ``v<i>.cur`` tags, service fields such as ``gid`` or
  ``repeat``).  Real switches would carve these out of unused header bits or
  pushed labels; :mod:`repro.core.fields` provides the exact bit-packing so
  header sizes can be measured.
* a *label stack* — an MPLS-like stack of small tuples, used by the snapshot
  service to accumulate topology records with push/pop actions.
* an opaque *payload* plus bookkeeping (a unique id and a hop counter used by
  traces only, never matched on).

Reserved port numbers follow the OpenFlow convention but use negative values
so they can never collide with physical port numbers (which are 1-based;
``0`` means "no port" and doubles as "parent of the DFS root").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.determinism import next_packet_id, reset_packet_ids

#: Reserved port: send the packet to the controller (out-of-band upcall).
CONTROLLER_PORT = -1
#: Reserved port: send the packet back through the port it arrived on.
IN_PORT = -2
#: Reserved port: deliver the packet to the switch itself (the paper's
#: "self" port used by anycast receivers).
LOCAL_PORT = -3
#: Pseudo port number meaning "no port"; also the parent port of the DFS root.
NO_PORT = 0

_RESERVED_PORT_NAMES = {
    CONTROLLER_PORT: "CONTROLLER",
    IN_PORT: "IN_PORT",
    LOCAL_PORT: "LOCAL",
    NO_PORT: "NONE",
}

# Packet-id allocation lives in the determinism provider (an owned
# allocator object, shard-ready); ``reset_packet_ids`` is re-exported here
# because tests and benches historically import it from this module.
__all__ = [
    "CONTROLLER_PORT",
    "IN_PORT",
    "LOCAL_PORT",
    "NO_PORT",
    "Packet",
    "PacketBatch",
    "is_physical_port",
    "port_name",
    "reset_packet_ids",
]


def port_name(port: int) -> str:
    """Return a human-readable name for *port* (physical or reserved)."""
    return _RESERVED_PORT_NAMES.get(port, str(port))


def is_physical_port(port: int) -> bool:
    """True if *port* denotes a real switch port (1-based numbering)."""
    return port >= 1


@dataclass
class Packet:
    """A mutable packet instance flowing through the data plane.

    Field values must be non-negative integers.  Reading an absent field
    yields ``0`` — this mirrors the paper's assumption that "all the tag
    fields are initialized to 0" without having to materialize every
    per-node tag in every packet.
    """

    fields: dict[str, int] = field(default_factory=dict)
    stack: list[tuple[Any, ...]] = field(default_factory=list)
    payload: Any = None
    packet_id: int = field(default_factory=next_packet_id)
    hops: int = 0

    def get(self, name: str) -> int:
        """Return the value of header field *name* (0 if unset)."""
        return self.fields.get(name, 0)

    def set(self, name: str, value: int) -> None:
        """Set header field *name* to *value* (must be a non-negative int)."""
        if value < 0:
            raise ValueError(f"field {name!r} set to negative value {value}")
        self.fields[name] = value

    def push(self, record: tuple[Any, ...]) -> None:
        """Push *record* onto the label stack."""
        self.stack.append(record)

    def pop(self) -> tuple[Any, ...]:
        """Pop and return the top label-stack record."""
        if not self.stack:
            raise IndexError("pop from empty packet label stack")
        return self.stack.pop()

    def copy(self) -> "Packet":
        """Return an independent copy with a fresh packet id.

        Used by ``ALL`` groups and by the simulator when a packet is cloned
        to the controller.
        """
        return Packet(
            fields=dict(self.fields),
            stack=list(self.stack),
            payload=self.payload,
            hops=self.hops,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = {k: v for k, v in sorted(self.fields.items()) if v}
        return f"Packet(#{self.packet_id}, hops={self.hops}, {shown})"


class PacketBatch:
    """A struct-of-arrays view over packets arriving together.

    The batched fast path does one key-extraction pass per table signature
    instead of one context build per packet; for that it wants the *i*-th
    value of each matched field as a column.  Packets carry their state in
    per-packet dicts (dozens of DFS tags, most never matched on), so the
    columns are materialized lazily — only the handful of fields some table
    signature actually reads is ever pulled out, and each column is built
    once per batch no matter how many signatures share the field.

    Packing is a cheap view (the batch aliases the live packet objects, it
    never copies them); "unpacking" is the identity — the per-packet dicts
    were authoritative all along, which is what keeps the batch boundary
    free and the scalar path the reference semantics.

    A batch snapshots arrival-time state: columns reflect the fields as
    they were when first read.  The batched pipeline therefore only uses
    the columns for the entry-table lookup, *before* any action has run;
    every later table in a goto chain re-reads the live packet.
    """

    __slots__ = ("packets", "in_ports", "_columns")

    def __init__(self, packets: list["Packet"], in_ports: list[int]) -> None:
        self.packets = packets
        self.in_ports = in_ports
        self._columns: dict[str, list[int]] = {}

    @classmethod
    def pack(cls, items: list[tuple["Packet", int]]) -> "PacketBatch":
        """Build a batch from ``(packet, in_port)`` arrival pairs."""
        return cls([it[0] for it in items], [it[1] for it in items])

    @property
    def size(self) -> int:
        return len(self.packets)

    def column(self, name: str) -> list[int]:
        """The per-packet values of header field *name* (absent reads 0).

        ``in_port`` and ``metadata`` are pipeline registers, not packet
        fields, mirroring ``Switch._context``: the in-port column is the
        arrival ports, and metadata is always 0 at pipeline entry.
        """
        column = self._columns.get(name)
        if column is None:
            if name == "in_port":
                column = self.in_ports
            elif name == "metadata":
                column = [0] * len(self.packets)
            else:
                column = [p.fields.get(name, 0) for p in self.packets]
            self._columns[name] = column
        return column

    def unpack(self) -> list[tuple["Packet", int]]:
        """The ``(packet, in_port)`` pairs (the live objects, not copies)."""
        return list(zip(self.packets, self.in_ports))

    def __len__(self) -> int:
        return len(self.packets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PacketBatch({len(self.packets)} packets)"
