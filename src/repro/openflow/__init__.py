"""OpenFlow 1.3 data-plane substrate.

This package models the parts of the OpenFlow 1.3 switch abstraction that the
SmartSouth mechanism relies on:

* multi-table match-action pipelines with priorities and masked matches
  (:mod:`repro.openflow.match`, :mod:`repro.openflow.flowtable`),
* instructions and actions, including set-field, push/pop label, output to
  physical and reserved ports, group invocation and TTL decrement
  (:mod:`repro.openflow.actions`),
* the group table with ``ALL``, ``INDIRECT``, fast-failover (``FF``) and
  round-robin ``SELECT`` groups (:mod:`repro.openflow.group`) — fast failover
  gives SmartSouth its robustness, round-robin selection is the basis of the
  paper's *smart counters*,
* a switch that executes the pipeline on packets (:mod:`repro.openflow.switch`).

The model is behavioural: it executes forwarding decisions exactly as an
OpenFlow 1.3 switch would, but does not serialize protocol messages.
"""

from repro.openflow.actions import (
    Action,
    DecTtl,
    GroupAction,
    Instructions,
    Output,
    PopLabel,
    PushLabel,
    SetField,
)
from repro.openflow.errors import (
    GroupError,
    OpenFlowError,
    PipelineError,
    TableError,
)
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.group import Bucket, Group, GroupTable, GroupType
from repro.openflow.match import Match, encode_range
from repro.openflow.packet import (
    CONTROLLER_PORT,
    IN_PORT,
    LOCAL_PORT,
    Packet,
)
from repro.openflow.switch import PacketOut, Switch

__all__ = [
    "Action",
    "Bucket",
    "CONTROLLER_PORT",
    "DecTtl",
    "FlowEntry",
    "FlowTable",
    "Group",
    "GroupAction",
    "GroupError",
    "GroupTable",
    "GroupType",
    "IN_PORT",
    "Instructions",
    "LOCAL_PORT",
    "Match",
    "OpenFlowError",
    "Output",
    "Packet",
    "PacketOut",
    "PipelineError",
    "PopLabel",
    "PushLabel",
    "SetField",
    "Switch",
    "TableError",
    "encode_range",
]
