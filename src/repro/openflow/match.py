"""OXM-style match expressions.

A :class:`Match` is a conjunction of per-field tests.  Each test is either an
exact value or a (value, mask) pair, as in OpenFlow's OXM TLVs.  Matching is
evaluated against a *context* mapping: the packet's header fields overlaid
with the pipeline registers ``in_port`` and ``metadata`` (absent fields read
as 0, mirroring zero-initialized tags).

OpenFlow has no native range or field-to-field comparison; the SmartSouth
compiler uses

* :func:`encode_range` — the classic range-to-prefix decomposition, turning an
  integer interval into O(2·width) masked matches (used for the priocast
  ``opt_val < priority`` test, cf. the paper's reference [2]), and
* per-(value, value) rule enumeration for field comparisons such as the
  snapshot service's ``in < cur`` (emitted by the compiler itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.openflow.errors import MatchError


@dataclass(frozen=True)
class FieldTest:
    """A single masked test: ``context[name] & mask == value``."""

    name: str
    value: int
    mask: int | None = None  # None means exact match on all bits

    def __post_init__(self) -> None:
        if self.value < 0:
            raise MatchError(f"negative match value for {self.name!r}")
        if self.mask is not None:
            if self.mask < 0:
                raise MatchError(f"negative mask for {self.name!r}")
            if self.value & ~self.mask:
                raise MatchError(
                    f"match value {self.value:#x} has bits outside mask "
                    f"{self.mask:#x} for field {self.name!r}"
                )

    def hits(self, context: Mapping[str, int]) -> bool:
        """Evaluate this test against *context* (missing fields read as 0)."""
        observed = context.get(self.name, 0)
        if self.mask is None:
            return observed == self.value
        return (observed & self.mask) == self.value

    @property
    def is_wildcard(self) -> bool:
        """True if this test constrains nothing (``mask == 0`` matches every
        value; OXM allows such TLVs and they must not affect semantics)."""
        return self.mask == 0


class Match:
    """A conjunction of :class:`FieldTest` objects.

    The empty match (``Match()``) matches every packet — it is the
    table-miss wildcard.
    """

    __slots__ = ("_tests",)

    def __init__(self, tests: Iterable[FieldTest] = (), **exact: int) -> None:
        by_name: dict[str, FieldTest] = {}
        for test in tests:
            if test.name in by_name:
                raise MatchError(f"duplicate test on field {test.name!r}")
            by_name[test.name] = test
        for name, value in exact.items():
            if name in by_name:
                raise MatchError(f"duplicate test on field {name!r}")
            by_name[name] = FieldTest(name, value)
        self._tests: dict[str, FieldTest] = by_name

    @property
    def tests(self) -> Mapping[str, FieldTest]:
        """The per-field tests, keyed by field name."""
        return self._tests

    def hits(self, context: Mapping[str, int]) -> bool:
        """True if every field test is satisfied by *context*."""
        return all(test.hits(context) for test in self._tests.values())

    def extended(self, *tests: FieldTest, **exact: int) -> "Match":
        """Return a new match with additional tests added."""
        combined = list(self._tests.values()) + list(tests)
        new = Match(combined)
        for name, value in exact.items():
            if name in new._tests:
                raise MatchError(f"duplicate test on field {name!r}")
            new._tests[name] = FieldTest(name, value)
        return new

    def field_names(self) -> frozenset[str]:
        """The set of field names this match constrains."""
        return frozenset(self._tests)

    def __len__(self) -> int:
        return len(self._tests)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._tests == other._tests

    def __hash__(self) -> int:
        return hash(frozenset(self._tests.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._tests:
            return "Match(*)"
        parts = []
        for test in self._tests.values():
            if test.mask is None:
                parts.append(f"{test.name}={test.value}")
            else:
                parts.append(f"{test.name}={test.value:#x}/{test.mask:#x}")
        return "Match(" + ", ".join(parts) + ")"


# --------------------------------------------------------------------- #
# (value, mask) cube algebra                                            #
# --------------------------------------------------------------------- #
#
# A masked pair ``(value, mask)`` denotes the set ``{x : x & mask == value}``
# — a *cube* over one field.  ``mask = None`` denotes an exact match (all
# bits), ``mask = 0`` denotes the full domain (a wildcard: OXM permits such
# TLVs and they must constrain nothing).  These primitives back both the
# pairwise-overlap verifier and the header-space symbolic engine in
# :mod:`repro.analysis.symbolic`.


def pairs_intersect(
    value_a: int,
    mask_a: int | None,
    value_b: int,
    mask_b: int | None,
) -> tuple[int, int | None] | None:
    """Intersection of two single-field cubes, or ``None`` if empty.

    Returns a (value, mask) pair describing exactly the values satisfying
    both inputs; the result mask is ``None`` when either input was exact.
    """
    if mask_a is None and mask_b is None:
        return (value_a, None) if value_a == value_b else None
    if mask_a is None:
        return (value_a, None) if (value_a & mask_b) == value_b else None
    if mask_b is None:
        return (value_b, None) if (value_b & mask_a) == value_a else None
    common = mask_a & mask_b
    if (value_a & common) != (value_b & common):
        return None
    return (value_a | value_b, mask_a | mask_b)


def full_mask(width: int, value: int = 0) -> int:
    """All-ones mask wide enough for *width* bits and for *value*."""
    return (1 << max(width, value.bit_length())) - 1


def pair_subtract(
    value_a: int,
    mask_a: int,
    value_b: int,
    mask_b: int,
    width: int,
) -> list[tuple[int, int]]:
    """Set difference A \\ B of two single-field cubes, as a list of cubes.

    Both masks must be finite here (callers widen exact tests to
    ``full_mask(width, value)`` first).  The classic header-space expansion:
    if A and B disagree on a commonly-constrained bit they are disjoint and
    the result is A itself; otherwise, for every bit B constrains but A does
    not, emit a copy of A with that bit flipped relative to B (each such
    cube misses B, and together they cover A \\ B).  The result cubes are
    pairwise disjoint.
    """
    common = mask_a & mask_b
    if (value_a & common) != (value_b & common):
        return [(value_a, mask_a)]
    result: list[tuple[int, int]] = []
    accum_value, accum_mask = value_a, mask_a
    extra = mask_b & ~mask_a & full_mask(width, value_b)
    while extra:
        bit = extra & -extra
        extra ^= bit
        flipped = (value_b & bit) ^ bit
        result.append((accum_value | flipped, accum_mask | bit))
        # Later cubes pin this bit to B's value so the pieces stay disjoint.
        accum_value |= value_b & bit
        accum_mask |= bit
    return result


def encode_range(lo: int, hi: int, width: int) -> list[tuple[int, int]]:
    """Decompose the interval [*lo*, *hi*] into masked (value, mask) pairs.

    The decomposition is the standard prefix expansion used by classifier
    compilers: it emits at most ``2*width - 2`` pairs, each describing the
    set ``{x : x & mask == value}`` over *width*-bit integers.  Matching any
    pair is equivalent to ``lo <= x <= hi``.

    Raises :class:`MatchError` if the interval is empty or out of range.
    """
    top = (1 << width) - 1
    if not 0 <= lo <= hi <= top:
        raise MatchError(f"bad range [{lo}, {hi}] for width {width}")
    pairs: list[tuple[int, int]] = []
    full = (1 << width) - 1

    def emit(prefix_value: int, prefix_len: int) -> None:
        host_bits = width - prefix_len
        mask = (full >> host_bits) << host_bits
        pairs.append((prefix_value & mask, mask))

    # Greedily cover [lo, hi] with maximal aligned power-of-two blocks.
    cursor = lo
    while cursor <= hi:
        # Largest block size aligned at `cursor` that fits in the interval.
        size = 1
        while True:
            next_size = size << 1
            if cursor & (next_size - 1):
                break
            if cursor + next_size - 1 > hi:
                break
            size = next_size
        prefix_len = width - size.bit_length() + 1
        emit(cursor, prefix_len)
        cursor += size
    return pairs
