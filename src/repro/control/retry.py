"""Retry with timeout and exponential backoff for controller-app requests.

:class:`~repro.control.supervisor.TraversalSupervisor` already retries the
*in-band* services; this module gives the controller-driven baselines
(:mod:`repro.control.apps`) the same discipline on the management plane.
Every app request (a discovery round, a probe sweep, a stats poll, a path
send) becomes a bounded **round loop**: run one round, measure what is
still pending, and retry only the pending remainder after an exponential
backoff with seeded jitter — stopping early at a *fixed point* (a round
that made no progress), because on a fault-free channel the pending
remainder is then genuinely unreachable (a dead link or a disconnected
switch), not a lost message.

On a fault-free channel where the first round fully succeeds, the loop
runs exactly one round, draws no RNG, and advances no simulated time —
bit-identical to the unsupervised behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.determinism import Rng
from repro.net.simulator import Network


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff policy of one controller-app request."""

    #: Total request rounds (first try + retries).
    max_attempts: int = 3
    #: First backoff (simulated time units).
    base_backoff: float = 8.0
    #: Backoff growth per retry.
    backoff_factor: float = 2.0
    #: Backoff ceiling.
    max_backoff: float = 256.0
    #: Max jitter, as a fraction of the backoff (uniform, seeded).
    jitter: float = 0.5

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoffs must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, retry_index: int, rng: Rng) -> float:
        """Backoff before retry *retry_index* (0-based), jittered."""
        delay = min(
            self.max_backoff, self.base_backoff * self.backoff_factor**retry_index
        )
        return delay * (1.0 + self.jitter * rng.random())


#: The apps' default: three rounds is enough to see a fixed point through
#: moderate channel loss without distorting fault-free message counts.
DEFAULT_POLICY = RetryPolicy()


def sim_sleep(network: Network, duration: float) -> None:
    """Advance simulated time by *duration* (in-flight events keep moving)."""
    sim = network.sim
    target = sim.now + duration
    sim.at(target, lambda: None)
    sim.run(until=target)


def retry_rounds(
    network: Network,
    policy: RetryPolicy,
    round_fn: Callable[[int], None],
    pending_fn: Callable[[], int],
    stop_on_no_progress: bool = True,
) -> int:
    """Drive request rounds under *policy*; returns the rounds used.

    ``round_fn(index)`` performs one request round (index 0 is the base
    round, later indices should re-request only the pending remainder) and
    must drain the network before returning.  ``pending_fn()`` counts the
    requests still unanswered.  The loop stops when nothing is pending,
    when a round makes no progress (fixed point — the remainder is
    unreachable, not lost), or when attempts exhaust.

    ``stop_on_no_progress=False`` disables the fixed-point early stop:
    switch re-adoption uses it because a transiently faulting install can
    leave pending unchanged for a round and still succeed on the next —
    there, only the attempt budget bounds the loop.
    """
    policy.validate()
    rounds = 0
    previous_pending: int | None = None
    for index in range(policy.max_attempts):
        round_fn(index)
        rounds += 1
        pending = pending_fn()
        if pending <= 0:
            break
        if (
            stop_on_no_progress
            and previous_pending is not None
            and pending >= previous_pending
        ):
            break
        previous_pending = pending
        if index < policy.max_attempts - 1:
            sim_sleep(network, policy.backoff(index, network.rng))
    return rounds
