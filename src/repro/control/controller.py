"""A minimal SDN controller and app model (Ryu/Floodlight-flavoured).

The controller multiplexes packet-ins to its registered apps and lets apps
send packet-outs and install per-switch handlers.  It exists to host the
*baseline* applications the paper compares against (controller-driven
topology discovery, probing, reactive routing); SmartSouth itself needs the
controller only to trigger services and receive verdicts.

The controller process can also **crash**: :meth:`Controller.crash` takes
the whole management plane down and makes every app drop its soft state —
the failure mode distributed-controller work (Yazıcı et al., PAPERS.md)
treats as a first-class event.  :meth:`Controller.restart` brings the
channel back up, but deliberately restores *nothing*: a restarted
controller knows only its static configuration and must re-learn the
network (see :meth:`~repro.control.supervisor.SupervisedRuntime.resynchronize`
and each app's retry loop).
"""

from __future__ import annotations

from typing import Callable

from repro.control.channel import ChannelFaultConfig, ControlChannel
from repro.net.simulator import Network
from repro.openflow.packet import Packet
from repro.openflow.switch import Switch


class ControllerApp:
    """Base class for controller applications."""

    name = "app"

    def __init__(self) -> None:
        self.controller: Controller | None = None

    def attached(self, controller: "Controller") -> None:
        """Called once when registered."""
        self.controller = controller

    def packet_in(self, node: int, packet: Packet) -> None:
        """Override to receive packet-ins."""

    def crashed(self) -> None:
        """The controller process died: drop all soft state.

        Apps override this to forget anything learned from the network
        (discovered links, installed-state caches, routing decisions);
        static configuration survives, learned state must not.
        """

    def restarted(self) -> None:
        """The controller came back (empty-handed): re-learn as needed."""


class Controller:
    """The network operating system: apps + channel + switch programming."""

    def __init__(
        self, network: Network, faults: ChannelFaultConfig | None = None
    ) -> None:
        self.network = network
        self.channel = ControlChannel(network, faults=faults)
        self.apps: list[ControllerApp] = []
        self.alive = True
        self.crashes = 0
        self.channel.set_packet_in_handler(self._dispatch_packet_in)

    def register(self, app: ControllerApp) -> ControllerApp:
        self.apps.append(app)
        app.attached(self)
        return app

    def _dispatch_packet_in(self, node: int, packet: Packet) -> None:
        if not self.alive:
            return
        for app in self.apps:
            app.packet_in(node, packet)

    # -- crash / restart ---------------------------------------------------

    def crash(self) -> None:
        """Kill the controller process.

        The management plane goes down with it (every switch loses its
        connection at once) and every app loses its soft state.  The data
        plane — installed rules, groups, in-flight packets — is untouched:
        that independence is the paper's headline claim, and the
        outage-liveness chaos oracle checks it.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.channel.fail_controller()
        for app in self.apps:
            app.crashed()

    def restart(self) -> None:
        """Bring a crashed controller back up, soft-state empty.

        Only connectivity is restored; re-learning the topology, the
        installed-state reconciliation handshake, and the epoch jump are the
        resynchronization protocol's job, not the process manager's.
        """
        if self.alive:
            return
        self.alive = True
        self.channel.restore_controller()
        for app in self.apps:
            app.restarted()

    # -- switch programming ------------------------------------------------

    def program_switch(self, node: int, switch: Switch) -> None:
        """Install a rule set at *node* (only if the switch is reachable —
        programming an unreachable switch is the failure mode the paper's
        in-band services avoid)."""
        if self.channel.connected(node):
            self.network.set_handler(node, switch.process)

    def program_handler(
        self, node: int, handler: Callable[[Packet, int], list]
    ) -> None:
        if self.channel.connected(node):
            self.network.set_handler(node, handler)

    def run(self) -> None:
        """Drain the network's event queue."""
        self.network.run()
