"""A minimal SDN controller and app model (Ryu/Floodlight-flavoured).

The controller multiplexes packet-ins to its registered apps and lets apps
send packet-outs and install per-switch handlers.  It exists to host the
*baseline* applications the paper compares against (controller-driven
topology discovery, probing, reactive routing); SmartSouth itself needs the
controller only to trigger services and receive verdicts.
"""

from __future__ import annotations

from typing import Callable

from repro.control.channel import ControlChannel
from repro.net.simulator import Network
from repro.openflow.packet import Packet
from repro.openflow.switch import Switch


class ControllerApp:
    """Base class for controller applications."""

    name = "app"

    def __init__(self) -> None:
        self.controller: Controller | None = None

    def attached(self, controller: "Controller") -> None:
        """Called once when registered."""
        self.controller = controller

    def packet_in(self, node: int, packet: Packet) -> None:
        """Override to receive packet-ins."""


class Controller:
    """The network operating system: apps + channel + switch programming."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.channel = ControlChannel(network)
        self.apps: list[ControllerApp] = []
        self.channel.set_packet_in_handler(self._dispatch_packet_in)

    def register(self, app: ControllerApp) -> ControllerApp:
        self.apps.append(app)
        app.attached(self)
        return app

    def _dispatch_packet_in(self, node: int, packet: Packet) -> None:
        for app in self.apps:
            app.packet_in(node, packet)

    # -- switch programming ------------------------------------------------

    def program_switch(self, node: int, switch: Switch) -> None:
        """Install a rule set at *node* (only if the switch is reachable —
        programming an unreachable switch is the failure mode the paper's
        in-band services avoid)."""
        if self.channel.connected(node):
            self.network.set_handler(node, switch.process)

    def program_handler(
        self, node: int, handler: Callable[[Packet, int], list]
    ) -> None:
        if self.channel.connected(node):
            self.network.set_handler(node, handler)

    def run(self) -> None:
        """Drain the network's event queue."""
        self.network.run()
