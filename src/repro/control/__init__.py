"""Control-plane substrate: controller, control channel, baseline apps."""

from repro.control.channel import ControlChannel
from repro.control.controller import Controller, ControllerApp

__all__ = ["ControlChannel", "Controller", "ControllerApp"]
