"""Control-plane substrate: controller, control channel, baseline apps,
and the in-band traversal supervisor."""

from repro.control.channel import ControlChannel
from repro.control.controller import Controller, ControllerApp
from repro.control.supervisor import (
    SupervisedOutcome,
    SupervisedRuntime,
    SupervisorConfig,
    TraversalSupervisor,
    check_epoch_ledger,
)

__all__ = [
    "ControlChannel",
    "Controller",
    "ControllerApp",
    "SupervisedOutcome",
    "SupervisedRuntime",
    "SupervisorConfig",
    "TraversalSupervisor",
    "check_epoch_ledger",
]
