"""SmartSouth as a proper controller application.

The engines in :mod:`repro.core.engine` drive triggers directly for tests
and benchmarks; this app runs the same two-stage lifecycle through the
*management channel* instead, which is what a deployment would do — and
what makes the paper's robustness story measurable:

* the **offline stage** installs the compiled pipelines proactively
  (before any management-plane outage);
* the **runtime stage** must reach *one* switch to trigger a function and
  receive its verdict.  If that one switch is unreachable the trigger
  fails — but any other connected switch can serve as the entry point,
  whereas controller-driven alternatives (LLDP, probing) need the whole
  management plane.
"""

from __future__ import annotations

from repro.control.controller import Controller, ControllerApp
from repro.core.compiler import compile_services
from repro.core.fields import FIELD_SVC
from repro.core.services.base import Service
from repro.core.services.snapshot import SnapshotService, decode_snapshot
from repro.openflow.packet import LOCAL_PORT, Packet


class SmartSouthManager(ControllerApp):
    """Install SmartSouth pipelines and run services over the channel."""

    name = "smartsouth_manager"

    def __init__(self, services: list[Service]) -> None:
        super().__init__()
        self.services = {service.service_id: service for service in services}
        if len(self.services) != len(services):
            raise ValueError("duplicate service ids")
        self.verdicts: list[tuple[int, Packet]] = []
        #: The installed pipelines (the controller's own record of the
        #: offline stage — e.g. for group-stats polling).
        self.switches: dict[int, object] = {}

    def attached(self, controller: Controller) -> None:
        super().attached(controller)
        # Offline stage: proactive installation, before any outage — so we
        # program the switches directly rather than through the (possibly
        # already degraded) channel.
        network = controller.network
        ordered = list(self.services.values())
        for node in network.topology.nodes():
            switch = compile_services(network, node, ordered)
            self.switches[node] = switch
            network.set_handler(node, switch.process)

    def packet_in(self, node: int, packet: Packet) -> None:
        if packet.get(FIELD_SVC) in self.services:
            self.verdicts.append((node, packet))

    # ------------------------------------------------------------------ #
    # Runtime stage                                                      #
    # ------------------------------------------------------------------ #

    def trigger(
        self,
        service: Service | int,
        root: int,
        fields: dict[str, int] | None = None,
    ) -> list[tuple[int, Packet]] | None:
        """Trigger *service* at *root* via the channel.

        Returns the packet-in verdicts of this run, or None when the entry
        switch is unreachable over the management network.
        """
        controller = self.controller
        assert controller is not None
        service_id = service if isinstance(service, int) else service.service_id
        if service_id not in self.services:
            raise KeyError(f"service id {service_id} not installed")
        packet_fields = {FIELD_SVC: service_id}
        if fields:
            packet_fields.update(fields)
        mark = len(self.verdicts)
        sent = controller.channel.packet_out(
            root, Packet(fields=packet_fields), in_port=LOCAL_PORT
        )
        if not sent:
            return None
        controller.network.run()
        return self.verdicts[mark:]

    def snapshot(self, root: int):
        """Convenience: trigger a snapshot and decode it.

        Returns (nodes, links) or None if the entry switch is unreachable
        or the traversal's verdict never arrived.
        """
        if SnapshotService.service_id not in self.services:
            raise KeyError("SnapshotService not installed")
        verdicts = self.trigger(SnapshotService.service_id, root)
        if not verdicts:
            return None
        reporter, packet = verdicts[-1]
        nodes, links = decode_snapshot(packet)
        nodes.add(reporter)
        return nodes, links

    def first_reachable_switch(self) -> int | None:
        """The entry point a degraded deployment would use."""
        controller = self.controller
        assert controller is not None
        for node in controller.network.topology.nodes():
            if controller.channel.connected(node):
                return node
        return None
