"""Controller applications: the SmartSouth manager and the baselines."""

from repro.control.apps.counter_polling import CounterPollingDetector
from repro.control.apps.probe_blackhole import ProbeBlackholeDetector
from repro.control.apps.reactive_routing import ReactiveAnycastRouting
from repro.control.apps.smartsouth_manager import SmartSouthManager
from repro.control.apps.topology_service import LldpTopologyService

__all__ = [
    "CounterPollingDetector",
    "LldpTopologyService",
    "ProbeBlackholeDetector",
    "ReactiveAnycastRouting",
    "SmartSouthManager",
]
