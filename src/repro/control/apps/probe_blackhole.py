"""Controller-driven per-link probing: the blackhole-detection baseline.

The controller (which knows the topology) sends one probe across every link
direction via packet-out and expects the far switch to punt it back as a
packet-in.  A direction whose probe never returns is flagged.  This costs
Θ(E) out-of-band messages *per check* — the paper's smart-counter algorithm
needs three — and requires management connectivity to every switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.controller import Controller, ControllerApp
from repro.openflow.actions import Instructions, Output, SetField
from repro.openflow.match import Match
from repro.openflow.packet import CONTROLLER_PORT, Packet
from repro.openflow.switch import Switch

FIELD_PROBE = "probe"
FIELD_PROBE_ID = "probe_id"
FIELD_PROBE_IN = "probe_in"


def build_probe_switch(node: int, num_ports: int, liveness) -> Switch:
    """Punt probe packets to the controller, tagging the arrival port."""
    switch = Switch(node, num_ports, liveness)
    for port in range(1, num_ports + 1):
        switch.install(
            0,
            Match(**{FIELD_PROBE: 1, "in_port": port}),
            Instructions(
                apply_actions=(
                    SetField(FIELD_PROBE_IN, port),
                    Output(CONTROLLER_PORT),
                )
            ),
            priority=10,
            cookie=f"probe:{port}",
        )
    return switch


@dataclass
class ProbeResult:
    """Outcome of one full probing round."""

    #: Directions whose probe vanished, as (from_node, from_port).
    silent: set[tuple[int, int]] = field(default_factory=set)
    probes_sent: int = 0
    out_band_messages: int = 0


class ProbeBlackholeDetector(ControllerApp):
    """Probe every link direction and report the silent ones."""

    name = "probe_blackhole"

    def __init__(self) -> None:
        super().__init__()
        self._returned: set[int] = set()
        self._sent: dict[int, tuple[int, int]] = {}

    def attached(self, controller: Controller) -> None:
        super().attached(controller)
        network = controller.network
        for node in network.topology.nodes():
            switch = build_probe_switch(
                node, network.topology.degree(node), network.liveness_fn(node)
            )
            network.set_handler(node, switch.process)

    def packet_in(self, node: int, packet: Packet) -> None:
        if packet.get(FIELD_PROBE) == 1:
            self._returned.add(packet.get(FIELD_PROBE_ID))

    def check(self) -> ProbeResult:
        """Probe all link directions once."""
        controller = self.controller
        assert controller is not None
        network = controller.network
        channel = controller.channel
        mark = channel.out_band_messages
        self._returned.clear()
        self._sent.clear()

        probe_id = 0
        for edge in network.topology.edges():
            for endpoint in (edge.a, edge.b):
                probe_id += 1
                self._sent[probe_id] = (endpoint.node, endpoint.port)
                packet = Packet(
                    fields={FIELD_PROBE: 1, FIELD_PROBE_ID: probe_id}
                )
                channel.packet_out_port(endpoint.node, endpoint.port, packet)
        network.run()

        silent = {
            location
            for pid, location in self._sent.items()
            if pid not in self._returned
        }
        return ProbeResult(
            silent=silent,
            probes_sent=probe_id,
            out_band_messages=channel.out_band_messages - mark,
        )
