"""Controller-driven per-link probing: the blackhole-detection baseline.

The controller (which knows the topology) sends one probe across every link
direction via packet-out and expects the far switch to punt it back as a
packet-in.  A direction whose probe never returns is flagged.  This costs
Θ(E) out-of-band messages *per check* — the paper's smart-counter algorithm
needs three — and requires management connectivity to every switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.controller import Controller, ControllerApp
from repro.control.retry import DEFAULT_POLICY, RetryPolicy, retry_rounds
from repro.openflow.actions import Instructions, Output, SetField
from repro.openflow.match import Match
from repro.openflow.packet import CONTROLLER_PORT, Packet
from repro.openflow.switch import Switch

FIELD_PROBE = "probe"
FIELD_PROBE_ID = "probe_id"
FIELD_PROBE_IN = "probe_in"


def build_probe_switch(node: int, num_ports: int, liveness) -> Switch:
    """Punt probe packets to the controller, tagging the arrival port."""
    switch = Switch(node, num_ports, liveness)
    for port in range(1, num_ports + 1):
        switch.install(
            0,
            Match(**{FIELD_PROBE: 1, "in_port": port}),
            Instructions(
                apply_actions=(
                    SetField(FIELD_PROBE_IN, port),
                    Output(CONTROLLER_PORT),
                )
            ),
            priority=10,
            cookie=f"probe:{port}",
        )
    return switch


@dataclass
class ProbeResult:
    """Outcome of one full probing round."""

    #: Directions whose probe vanished, as (from_node, from_port).
    silent: set[tuple[int, int]] = field(default_factory=set)
    probes_sent: int = 0
    out_band_messages: int = 0


class ProbeBlackholeDetector(ControllerApp):
    """Probe every link direction and report the silent ones."""

    name = "probe_blackhole"

    def __init__(self) -> None:
        super().__init__()
        self._returned: set[int] = set()
        self._sent: dict[int, tuple[int, int]] = {}

    def attached(self, controller: Controller) -> None:
        super().attached(controller)
        network = controller.network
        for node in network.topology.nodes():
            switch = build_probe_switch(
                node, network.topology.degree(node), network.liveness_fn(node)
            )
            network.set_handler(node, switch.process)

    def packet_in(self, node: int, packet: Packet) -> None:
        if packet.get(FIELD_PROBE) == 1:
            self._returned.add(packet.get(FIELD_PROBE_ID))

    def crashed(self) -> None:
        """Probe bookkeeping is learned state: lose it with the process."""
        self._returned.clear()
        self._sent.clear()

    def _returned_directions(self) -> set[tuple[int, int]]:
        return {
            self._sent[pid] for pid in self._returned if pid in self._sent
        }

    def check(self, policy: RetryPolicy | None = None) -> ProbeResult:
        """Probe all link directions; re-probe the silent ones.

        A direction is only reported silent once retry rounds (bounded by
        *policy*) confirm it: a real blackhole eats the re-probe exactly
        like the first probe, while a message lost on a faulty management
        channel does not repeat.  A healthy fault-free network answers
        every probe in round one, keeping the classic 2E message cost.
        """
        controller = self.controller
        assert controller is not None
        network = controller.network
        channel = controller.channel
        mark = channel.out_band_messages
        self._returned.clear()
        self._sent.clear()

        directions = [
            (endpoint.node, endpoint.port)
            for edge in network.topology.edges()
            for endpoint in (edge.a, edge.b)
        ]
        probe_count = 0

        def probe_round(index: int) -> None:
            nonlocal probe_count
            returned = self._returned_directions() if index else set()
            for direction in directions:
                if direction in returned:
                    continue
                probe_count += 1
                self._sent[probe_count] = direction
                packet = Packet(
                    fields={FIELD_PROBE: 1, FIELD_PROBE_ID: probe_count}
                )
                channel.packet_out_port(direction[0], direction[1], packet)
            network.run()

        def pending() -> int:
            return len(directions) - len(self._returned_directions())

        retry_rounds(network, policy or DEFAULT_POLICY, probe_round, pending)

        returned = self._returned_directions()
        silent = {d for d in directions if d not in returned}
        return ProbeResult(
            silent=silent,
            probes_sent=probe_count,
            out_band_messages=channel.out_band_messages - mark,
        )
