"""LLDP-style controller-driven topology discovery (the baseline).

This is the Floodlight ``TopologyService`` the paper contrasts with the
in-band snapshot ([1] in the paper): the controller emits one probe per
switch port (a packet-out with ``output:port``) and learns a link when the
far switch punts the probe back as a packet-in.

The crucial weakness reproduced here: discovering the link (u,p)-(v,q)
requires *both* u and v to be reachable over the management network — the
packet-out dies if u is disconnected, the packet-in dies if v is.  The
SmartSouth snapshot instead needs management connectivity to a *single*
switch.  ``benchmarks/bench_baselines.py`` measures exactly this.
"""

from __future__ import annotations

from repro.control.controller import Controller, ControllerApp
from repro.control.retry import DEFAULT_POLICY, RetryPolicy, retry_rounds
from repro.openflow.actions import Instructions, Output, SetField
from repro.openflow.match import Match
from repro.openflow.packet import CONTROLLER_PORT, Packet
from repro.openflow.switch import Switch

#: Probe marker field and its source annotations.
FIELD_LLDP = "lldp"
FIELD_LLDP_SRC = "lldp_src"
FIELD_LLDP_PORT = "lldp_port"
FIELD_LLDP_IN = "lldp_in"


def build_lldp_switch(node: int, num_ports: int, liveness) -> Switch:
    """The proactive rule set: punt LLDP probes to the controller, tagging
    the arrival port (per-port rules — OpenFlow cannot copy in_port)."""
    switch = Switch(node, num_ports, liveness)
    for port in range(1, num_ports + 1):
        switch.install(
            0,
            Match(**{FIELD_LLDP: 1, "in_port": port}),
            Instructions(
                apply_actions=(
                    SetField(FIELD_LLDP_IN, port),
                    Output(CONTROLLER_PORT),
                )
            ),
            priority=10,
            cookie=f"lldp:{port}",
        )
    # Everything else is dropped (miss).
    return switch


class LldpTopologyService(ControllerApp):
    """Discover the topology by per-port probing."""

    name = "topology_service"

    def __init__(self) -> None:
        super().__init__()
        self.links: set[frozenset[tuple[int, int]]] = set()
        self.nodes_seen: set[int] = set()

    def attached(self, controller: Controller) -> None:
        super().attached(controller)
        # Punt rules are installed proactively, before any management-plane
        # outage; the outage then silences packet-outs and packet-ins (the
        # channel filters both), which is the interesting failure mode.
        network = controller.network
        for node in network.topology.nodes():
            switch = build_lldp_switch(
                node, network.topology.degree(node), network.liveness_fn(node)
            )
            network.set_handler(node, switch.process)

    def packet_in(self, node: int, packet: Packet) -> None:
        if packet.get(FIELD_LLDP) != 1:
            return
        src = packet.get(FIELD_LLDP_SRC)
        src_port = packet.get(FIELD_LLDP_PORT)
        in_port = packet.get(FIELD_LLDP_IN)
        self.links.add(frozenset(((src, src_port), (node, in_port))))
        self.nodes_seen.update((src, node))

    def crashed(self) -> None:
        """Everything LLDP knows, it learned from the network: lose it."""
        self.links.clear()
        self.nodes_seen.clear()

    def _confirmed_ports(self) -> set[tuple[int, int]]:
        """Ports already known to anchor a discovered link."""
        return {endpoint for link in self.links for endpoint in link}

    def discover(
        self, policy: RetryPolicy | None = None
    ) -> set[frozenset[tuple[int, int]]]:
        """Run discovery to a fixed point; returns the learned link set.

        The first round probes every port; retry rounds (bounded by
        *policy*) re-probe only ports no discovered link anchors yet, so a
        probe or its punt-back lost on a faulty channel gets another
        chance, while a fault-free run that discovers everything in round
        one sends exactly the classic 2E probes.
        """
        controller = self.controller
        assert controller is not None
        network = controller.network
        targets = [
            (node, port)
            for node in network.topology.nodes()
            for port in range(1, network.topology.degree(node) + 1)
        ]

        def probe_round(index: int) -> None:
            confirmed = self._confirmed_ports() if index else set()
            for node, port in targets:
                if (node, port) in confirmed:
                    continue
                probe = Packet(
                    fields={
                        FIELD_LLDP: 1,
                        FIELD_LLDP_SRC: node,
                        FIELD_LLDP_PORT: port,
                    }
                )
                controller.channel.packet_out_port(node, port, probe)
            network.run()

        def pending() -> int:
            confirmed = self._confirmed_ports()
            return sum(1 for target in targets if target not in confirmed)

        retry_rounds(network, policy or DEFAULT_POLICY, probe_round, pending)
        return set(self.links)
