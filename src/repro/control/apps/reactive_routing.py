"""Reactive shortest-path routing: the anycast baseline.

The controller computes a shortest path from the source to the nearest
group member over its *view* of the topology and installs one forwarding
rule per path switch.  When a link on the path fails afterwards, delivery
fails until the controller (a) hears about the failure, (b) recomputes and
(c) reinstalls — each step costing out-of-band messages and time.  The
in-band anycast needs none of that: its fast-failover traversal routes
around the failure immediately.

``benchmarks/bench_baselines.py`` sweeps failure counts and compares
delivery success without controller intervention, plus the message cost of
recovery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.control.controller import Controller, ControllerApp
from repro.control.retry import DEFAULT_POLICY, RetryPolicy, sim_sleep
from repro.net.topology import Topology
from repro.openflow.actions import Instructions, Output
from repro.openflow.match import Match
from repro.openflow.packet import LOCAL_PORT, Packet
from repro.openflow.switch import Switch

FIELD_FLOW = "flow"


@dataclass
class PathInstall:
    """An installed unicast path."""

    flow_id: int
    path: list[int]
    #: (node, out_port) hops, in order.
    hops: list[tuple[int, int]] = field(default_factory=list)
    rule_installs: int = 0


class ReactiveAnycastRouting(ControllerApp):
    """Shortest-path-to-nearest-member routing with reactive repair."""

    name = "reactive_routing"

    def __init__(self, groups: dict[int, set[int]]) -> None:
        super().__init__()
        self.groups = {gid: set(members) for gid, members in groups.items()}
        self.view: Topology | None = None
        self._switches: dict[int, Switch] = {}
        self._next_flow = 1
        self.rule_installs = 0
        self.recomputations = 0

    def crashed(self) -> None:
        """The routing view is soft state; the installed rules are not —
        they live in the switches and keep forwarding during the outage."""
        self.view = None

    def restarted(self) -> None:
        """Restart from static configuration: re-adopt the configured
        topology (link liveness is still consulted per repair)."""
        if self.controller is not None:
            self.view = self.controller.network.topology

    def attached(self, controller: Controller) -> None:
        super().attached(controller)
        network = controller.network
        self.view = network.topology  # the view taken at install time
        for node in network.topology.nodes():
            switch = Switch(
                node, network.topology.degree(node), network.liveness_fn(node)
            )
            self._switches[node] = switch
            network.set_handler(node, switch.process)

    # -- path computation ---------------------------------------------- #

    def _shortest_path(
        self, src: int, targets: set[int], respect_failures: bool
    ) -> list[int] | None:
        """BFS on the view; ``respect_failures`` uses true liveness (what a
        notified controller would know)."""
        controller = self.controller
        assert controller is not None and self.view is not None
        network = controller.network
        if src in targets:
            return [src]
        parents: dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for port, edge in self.view.ports(node):
                if respect_failures and not network.links[edge.edge_id].up:
                    continue
                far = edge.other(node).node
                if far in parents:
                    continue
                parents[far] = node
                if far in targets:
                    path = [far]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                queue.append(far)
        return None

    def install_path(
        self, src: int, gid: int, respect_failures: bool = False
    ) -> PathInstall | None:
        """Compute and install a path from *src* to the nearest member.

        Returns None when no path exists — or when the controller has
        crashed and not yet restarted (no view, no routing).
        """
        if self.view is None:
            return None
        members = self.groups.get(gid, set())
        path = self._shortest_path(src, members, respect_failures)
        if path is None:
            return None
        assert self.view is not None
        flow_id = self._next_flow
        self._next_flow += 1
        install = PathInstall(flow_id=flow_id, path=path)
        for here, there in zip(path, path[1:]):
            edge = self.view.find_edge(here, there)
            assert edge is not None
            port = edge.endpoint(here).port
            self._switches[here].install(
                0,
                Match(**{FIELD_FLOW: flow_id}),
                Instructions(apply_actions=(Output(port),)),
                priority=10,
                cookie=f"flow:{flow_id}",
            )
            install.hops.append((here, port))
            install.rule_installs += 1
            self.rule_installs += 1
        # Delivery rule at the member.
        self._switches[path[-1]].install(
            0,
            Match(**{FIELD_FLOW: flow_id}),
            Instructions(apply_actions=(Output(LOCAL_PORT),)),
            priority=10,
            cookie=f"flow:{flow_id}:deliver",
        )
        install.rule_installs += 1
        self.rule_installs += 1
        return install

    # -- sending --------------------------------------------------------- #

    def send(self, src: int, install: PathInstall) -> int | None:
        """Send one packet along the installed path; returns the delivery
        node or None (packet died at a failed link)."""
        controller = self.controller
        assert controller is not None
        network = controller.network
        delivered: list[int] = []

        previous_sink = None

        def sink(node: int, packet: Packet) -> None:
            delivered.append(node)

        network.set_delivery_sink(sink)
        packet = Packet(fields={FIELD_FLOW: install.flow_id})
        network.inject(src, packet, in_port=LOCAL_PORT)
        network.run()
        network.set_delivery_sink(previous_sink)
        return delivered[0] if delivered else None

    def send_with_retry(
        self,
        src: int,
        gid: int,
        install: PathInstall,
        policy: RetryPolicy | None = None,
    ) -> tuple[int | None, PathInstall]:
        """Send with bounded reactive repair: on a silent failure, back
        off, recompute against true liveness, reinstall and resend.

        Returns ``(delivered_at, last install)``; ``delivered_at`` is None
        when retries exhaust (the member really is unreachable).  A send
        that succeeds first try costs exactly one packet, like
        :meth:`send`.
        """
        controller = self.controller
        assert controller is not None
        policy = policy or DEFAULT_POLICY
        policy.validate()
        current: PathInstall | None = install
        for index in range(policy.max_attempts):
            if current is not None:
                delivered = self.send(src, current)
                if delivered is not None:
                    return delivered, current
            if index < policy.max_attempts - 1:
                sim_sleep(
                    controller.network,
                    policy.backoff(index, controller.network.rng),
                )
                repaired, _messages = self.repair(src, gid)
                if repaired is not None:
                    current = repaired
        return None, current if current is not None else install

    def repair(self, src: int, gid: int) -> tuple[PathInstall | None, int]:
        """Reactive repair after a failure: recompute against true liveness.

        Returns (new install, control messages spent) — one failure
        notification plus one rule install per path hop.
        """
        self.recomputations += 1
        install = self.install_path(src, gid, respect_failures=True)
        messages = 1 + (install.rule_installs if install else 0)
        return install, messages
