"""Counter-polling blackhole localization: the group-stats alternative.

After the smart-counter probe phase (repeat = 3) every healthy directed
port's counter reads ≥ 2 and the blackhole port reads exactly 1, so instead
of running the in-band verify traversal the controller could simply *read*
the round-robin groups' statistics from every switch (an OpenFlow
group-stats request/reply per switch).

This app implements that alternative to quantify why the paper's in-band
phase B is the better design: polling costs 2 management messages per
manageable switch — Θ(n) — and silently misses blackholes adjacent to
switches whose management connection is down, while the in-band verify
phase costs one packet plus one verdict regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.controller import ControllerApp
from repro.control.retry import DEFAULT_POLICY, RetryPolicy, retry_rounds
from repro.core.smart_counter import counter_value
from repro.openflow.group import GroupType
from repro.openflow.switch import Switch


@dataclass
class PollResult:
    """Outcome of one polling round."""

    #: Ports whose counter read exactly 1, as (node, port).
    suspects: set[tuple[int, int]] = field(default_factory=set)
    switches_polled: int = 0
    switches_unreachable: int = 0
    #: Management messages: one stats request + one reply per polled switch.
    out_band_messages: int = 0


class CounterPollingDetector(ControllerApp):
    """Read every switch's smart-counter groups after a probe traversal."""

    name = "counter_polling"

    def __init__(self, switches: dict[int, Switch]) -> None:
        super().__init__()
        #: The compiled switches whose groups hold the counters (the
        #: controller knows them: it installed them in the offline stage).
        self.switches = switches

    def _port_of_counter_group(self, switch: Switch, group_id: int) -> int | None:
        """Invert the compiler's counter-group id layout."""
        from repro.core.compiler import COUNTER_GROUP_BASE, SERVICE_BLOCK_GROUPS

        offset = group_id % SERVICE_BLOCK_GROUPS
        port = offset - COUNTER_GROUP_BASE
        if 1 <= port <= switch.num_ports:
            return port
        return None

    def poll(self, policy: RetryPolicy | None = None) -> PollResult:
        """Group-stats sweep over all manageable switches, with retries.

        Retry rounds (bounded by *policy*) re-poll only the switches that
        were unreachable, so a flapping management partition costs extra
        time but not missed switches; a fully reachable sweep stays one
        round at the classic 2 messages per switch.
        """
        controller = self.controller
        assert controller is not None
        result = PollResult()
        polled: set[int] = set()

        def poll_round(index: int) -> None:
            for node, switch in self.switches.items():
                if node in polled:
                    continue
                if not controller.channel.connected(node):
                    continue
                polled.add(node)
                result.switches_polled += 1
                result.out_band_messages += 2  # stats request + reply
                for group in switch.groups.groups():
                    if group.group_type is not GroupType.SELECT:
                        continue
                    port = self._port_of_counter_group(switch, group.group_id)
                    if port is not None and counter_value(group) == 1:
                        result.suspects.add((node, port))

        def pending() -> int:
            return len(self.switches) - len(polled)

        retry_rounds(
            controller.network, policy or DEFAULT_POLICY, poll_round, pending
        )
        result.switches_unreachable = len(self.switches) - len(polled)
        return result
