"""The out-of-band control channel, with per-switch disconnection.

The paper's motivation includes control-plane brittleness: "data plane
elements may even lose connectivity to the control plane entirely" ([13]).
:class:`ControlChannel` models exactly that failure mode — a set of switches
whose management connection is down.  Packet-outs to them are lost, and
their packet-ins never reach the controller.  Message accounting mirrors
the paper's out-of-band message counts.
"""

from __future__ import annotations

from typing import Callable

from repro.net.simulator import Network
from repro.openflow.packet import LOCAL_PORT, Packet

#: Upcall delivered to the controller: (switch node, packet).
PacketInHandler = Callable[[int, Packet], None]


class ControlChannel:
    """Controller <-> switches management connectivity."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._disconnected: set[int] = set()
        self._packet_in_handler: PacketInHandler | None = None
        self.packet_outs_sent = 0
        self.packet_outs_lost = 0
        self.packet_ins_received = 0
        self.packet_ins_lost = 0
        network.set_controller_sink(self._on_packet_in)

    # -- connectivity -------------------------------------------------- #

    def disconnect(self, node: int) -> None:
        """Sever the management connection of *node*."""
        self._disconnected.add(node)

    def reconnect(self, node: int) -> None:
        self._disconnected.discard(node)

    def connected(self, node: int) -> bool:
        return node not in self._disconnected

    def disconnected_switches(self) -> set[int]:
        return set(self._disconnected)

    # -- messaging ------------------------------------------------------ #

    def set_packet_in_handler(self, handler: PacketInHandler | None) -> None:
        self._packet_in_handler = handler
        # (Re)own the network's controller sink: baselines and SmartSouth
        # engines may alternate on one network.
        self.network.set_controller_sink(self._on_packet_in)

    def packet_out(self, node: int, packet: Packet, in_port: int = LOCAL_PORT) -> bool:
        """Inject *packet* at *node*; returns False if the switch is
        unreachable (the message is lost, but still counted as sent)."""
        self.packet_outs_sent += 1
        if not self.connected(node):
            self.packet_outs_lost += 1
            return False
        self.network.inject(node, packet, in_port=in_port, from_controller=True)
        return True

    def packet_out_port(self, node: int, port: int, packet: Packet) -> bool:
        """Packet-out with an explicit ``output:port`` action (no tables)."""
        self.packet_outs_sent += 1
        if not self.connected(node):
            self.packet_outs_lost += 1
            return False
        self.network.transmit(node, port, packet, from_controller=True)
        return True

    def _on_packet_in(self, node: int, packet: Packet) -> None:
        if not self.connected(node):
            self.packet_ins_lost += 1
            return
        self.packet_ins_received += 1
        if self._packet_in_handler is not None:
            self._packet_in_handler(node, packet)

    @property
    def out_band_messages(self) -> int:
        """Messages that used the management network (sent, incl. lost)."""
        return self.packet_outs_sent + self.packet_ins_received
