"""The out-of-band control channel: disconnection, loss, reorder, outage.

The paper's motivation includes control-plane brittleness: "data plane
elements may even lose connectivity to the control plane entirely" ([13]).
:class:`ControlChannel` models that whole spectrum of failure, not just the
binary per-switch disconnect of earlier revisions:

* **Per-switch disconnect** — a set of switches whose management connection
  is down.  Packet-outs to them are lost, their packet-ins never arrive.
* **Whole-controller outage** — :meth:`fail_controller` severs *every*
  management connection at once (the controller process is gone); the data
  plane keeps running, which is exactly the situation the in-band services
  are built for.
* **Seeded message faults** — with a :class:`ChannelFaultConfig` installed,
  every control message becomes a schedulable, droppable event on an
  explicit in-order-by-default queue: per-message loss, duplication, and a
  bounded extra delay that reorders messages relative to each other.

The fault-free path is bit-for-bit the original synchronous channel: no RNG
draw is ever made and no event is ever queued unless a fault config with at
least one nonzero knob is installed, so golden traces are unchanged.

Message accounting mirrors the paper's out-of-band message counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.determinism import Rng, seeded_rng
from repro.net.simulator import Network
from repro.openflow.packet import LOCAL_PORT, Packet

#: Upcall delivered to the controller: (switch node, packet).
PacketInHandler = Callable[[int, Packet], None]

#: Queued-message kinds.
PACKET_OUT = "packet-out"
PACKET_OUT_PORT = "packet-out-port"
PACKET_IN = "packet-in"


@dataclass(frozen=True)
class ChannelFaultConfig:
    """Seeded fault knobs for the management network.

    All-zero knobs (the default) mean the channel behaves exactly like the
    fault-free synchronous channel — same code path, zero RNG draws.
    """

    #: Per-message drop probability (both directions).
    loss_prob: float = 0.0
    #: Per-message duplication probability (the copy is delivered too).
    dup_prob: float = 0.0
    #: Base management-network latency per message (simulated time units).
    delay: float = 0.0
    #: Extra uniform delay drawn per message.  Nonzero values reorder
    #: messages relative to each other; zero keeps the queue strictly FIFO.
    max_extra_delay: float = 0.0
    #: Seed of the channel's private RNG (independent of ``network.rng`` so
    #: installing faults never perturbs data-plane draws).
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if not 0.0 <= self.dup_prob <= 1.0:
            raise ValueError("dup_prob must be in [0, 1]")
        if self.delay < 0 or self.max_extra_delay < 0:
            raise ValueError("delays must be non-negative")

    @property
    def active(self) -> bool:
        """True when any knob routes messages through the fault queue."""
        return (
            self.loss_prob > 0
            or self.dup_prob > 0
            or self.delay > 0
            or self.max_extra_delay > 0
        )


@dataclass
class ChannelMessage:
    """One control message on the channel queue (telemetry/introspection)."""

    kind: str
    node: int
    packet_id: int
    sent_at: float
    deliver_at: float
    duplicate: bool = False
    delivered: bool = False


class ControlChannel:
    """Controller <-> switches management connectivity."""

    def __init__(
        self, network: Network, faults: ChannelFaultConfig | None = None
    ) -> None:
        self.network = network
        self._disconnected: set[int] = set()
        self._controller_up = True
        self._packet_in_handler: PacketInHandler | None = None
        self._faults: ChannelFaultConfig | None = None
        self._fault_rng: Rng | None = None
        #: Messages that went through the fault queue (in send order).
        self.queue: list[ChannelMessage] = []
        self.packet_outs_sent = 0
        self.packet_outs_lost = 0
        self.packet_ins_received = 0
        self.packet_ins_lost = 0
        #: Channel-fault casualties (distinct from disconnect/outage loss).
        self.packet_outs_dropped = 0
        self.packet_ins_dropped = 0
        self.messages_duplicated = 0
        if faults is not None:
            self.set_faults(faults)
        network.set_controller_sink(self._on_packet_in)

    # -- connectivity -------------------------------------------------- #

    def disconnect(self, node: int) -> None:
        """Sever the management connection of *node*."""
        self._disconnected.add(node)

    def reconnect(self, node: int) -> None:
        self._disconnected.discard(node)

    def connected(self, node: int) -> bool:
        return self._controller_up and node not in self._disconnected

    def disconnected_switches(self) -> set[int]:
        return set(self._disconnected)

    def fail_controller(self) -> None:
        """Whole-controller outage: every management connection is down at
        once, but per-switch disconnect state is preserved for restore."""
        self._controller_up = False

    def restore_controller(self) -> None:
        self._controller_up = True

    @property
    def controller_up(self) -> bool:
        return self._controller_up

    # -- fault scheduling ------------------------------------------------ #

    def set_faults(self, faults: ChannelFaultConfig | None) -> None:
        """Install (or clear) the seeded message-fault model."""
        if faults is not None:
            faults.validate()
            if not faults.active:
                faults = None
        self._faults = faults
        self._fault_rng = seeded_rng(faults.seed) if faults is not None else None

    def partition_window(self, node: int, start: float, duration: float) -> None:
        """Schedule a management partition of *node* over one time window."""
        if duration <= 0:
            raise ValueError("partition duration must be positive")
        self.network.sim.at(start, lambda: self.disconnect(node))
        self.network.sim.at(start + duration, lambda: self.reconnect(node))

    def flap(
        self, node: int, start: float, down: float, up: float, cycles: int
    ) -> None:
        """Schedule *cycles* alternating down/up partition windows."""
        if cycles < 1:
            raise ValueError("flap needs at least one cycle")
        at = start
        for _ in range(cycles):
            self.partition_window(node, at, down)
            at += down + up

    def outage_window(self, start: float, duration: float) -> None:
        """Schedule a whole-controller outage over one time window."""
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        self.network.sim.at(start, self.fail_controller)
        self.network.sim.at(start + duration, self.restore_controller)

    def _schedule(
        self,
        kind: str,
        node: int,
        packet: Packet,
        deliver: Callable[[Packet], None],
    ) -> bool:
        """Put one message on the fault queue: draw its fate, schedule its
        delivery event(s).  Returns False when the loss draw killed it."""
        faults = self._faults
        rng = self._fault_rng
        assert faults is not None and rng is not None
        if faults.loss_prob > 0 and rng.random() < faults.loss_prob:
            return False
        copies = [packet]
        if faults.dup_prob > 0 and rng.random() < faults.dup_prob:
            # The duplicate is a distinct packet object: the twins must not
            # share in-flight field rewrites once both enter the pipeline.
            copies.append(packet.copy())
            self.messages_duplicated += 1
        for copy_index, copy in enumerate(copies):
            extra = (
                rng.random() * faults.max_extra_delay
                if faults.max_extra_delay > 0
                else 0.0
            )
            wait = faults.delay + extra
            message = ChannelMessage(
                kind=kind,
                node=node,
                packet_id=copy.packet_id,
                sent_at=self.network.sim.now,
                deliver_at=self.network.sim.now + wait,
                duplicate=copy_index > 0,
            )
            self.queue.append(message)

            def fire(message=message, copy=copy):
                message.delivered = True
                deliver(copy)

            # Equal deliver-at times keep send order (the simulator's event
            # queue is seq-stable), so the queue is in-order by default and
            # only nonzero extra delay reorders.
            self.network.sim.schedule(wait, fire)
        return True

    # -- messaging ------------------------------------------------------ #

    def set_packet_in_handler(self, handler: PacketInHandler | None) -> None:
        """Install the controller-side packet-in upcall.

        Passing a handler (re)owns the network's controller sink — baselines
        and SmartSouth engines may alternate on one network.  Passing
        ``None`` *detaches* the channel: the handler is cleared and the sink
        is released only if this channel still owns it, so a successor that
        claimed the sink in the meantime is left undisturbed.
        """
        self._packet_in_handler = handler
        if handler is not None:
            self.network.set_controller_sink(self._on_packet_in)
        elif self.network.controller_sink == self._on_packet_in:
            self.network.set_controller_sink(None)

    def packet_out(self, node: int, packet: Packet, in_port: int = LOCAL_PORT) -> bool:
        """Inject *packet* at *node*; returns False if the switch is
        unreachable or the channel dropped the message (lost messages are
        still counted as sent)."""
        self.packet_outs_sent += 1
        if not self.connected(node):
            self.packet_outs_lost += 1
            return False
        if self._faults is None:
            self.network.inject(node, packet, in_port=in_port, from_controller=True)
            return True
        delivered = self._schedule(
            PACKET_OUT,
            node,
            packet,
            lambda copy: self._deliver_out(node, copy, in_port),
        )
        if not delivered:
            self.packet_outs_lost += 1
            self.packet_outs_dropped += 1
        return delivered

    def packet_out_port(self, node: int, port: int, packet: Packet) -> bool:
        """Packet-out with an explicit ``output:port`` action (no tables)."""
        self.packet_outs_sent += 1
        if not self.connected(node):
            self.packet_outs_lost += 1
            return False
        if self._faults is None:
            self.network.transmit(node, port, packet, from_controller=True)
            return True
        delivered = self._schedule(
            PACKET_OUT_PORT,
            node,
            packet,
            lambda copy: self.network.transmit(node, port, copy, from_controller=True),
        )
        if not delivered:
            self.packet_outs_lost += 1
            self.packet_outs_dropped += 1
        return delivered

    def _deliver_out(self, node: int, packet: Packet, in_port: int) -> None:
        """A delayed packet-out reaches the switch and enters its pipeline."""
        self.network.inject(node, packet, in_port=in_port, from_controller=True)

    def _on_packet_in(self, node: int, packet: Packet) -> None:
        if not self.connected(node):
            self.packet_ins_lost += 1
            return
        if self._faults is None:
            self.packet_ins_received += 1
            if self._packet_in_handler is not None:
                self._packet_in_handler(node, packet)
            return
        delivered = self._schedule(
            PACKET_IN, node, packet, lambda copy: self._deliver_in(node, copy)
        )
        if not delivered:
            self.packet_ins_lost += 1
            self.packet_ins_dropped += 1

    def _deliver_in(self, node: int, packet: Packet) -> None:
        """A delayed packet-in reaches the controller.  Outage is re-checked
        at delivery time: a message in flight when the controller dies is
        lost with it."""
        if not self.connected(node):
            self.packet_ins_lost += 1
            return
        self.packet_ins_received += 1
        if self._packet_in_handler is not None:
            self._packet_in_handler(node, packet)

    @property
    def out_band_messages(self) -> int:
        """Messages that used the management network (sent, incl. lost)."""
        return self.packet_outs_sent + self.packet_ins_received

    @property
    def pending_messages(self) -> int:
        """Fault-queue messages scheduled but not yet delivered."""
        return sum(1 for m in self.queue if not m.delivered)
