"""In-band traversal supervision: watchdogs, epoch retries, degradation.

The paper's fast-failover groups only mask links that fail *before* a
traversal starts (§3.5); a mid-traversal failure, a lossy link, or a silent
blackhole swallows the trigger packet and the service simply never answers.
PR 2's model checker can *find* those interleavings — this module makes the
runtime *survive* them, keeping all reaction state at the traversal origin
(the direction argued by the stateful-data-plane line of work) instead of
round-tripping through a possibly-disconnected controller:

1. **Epoch tags.**  Every supervised trigger carries the current epoch in
   reserved header bits (:data:`~repro.core.fields.FIELD_EPOCH`).  The
   origin squashes any packet whose epoch is stale — one match rule in a
   real switch, the :class:`~repro.core.epoch.EpochGate` in the template
   interpreter — so an abandoned attempt can neither report a duplicate
   result nor keep traversing through the origin (at-most-once delivery).
2. **Watchdog deadlines.**  The Table 2 closed forms bound every
   traversal's in-band crossings, so ``hop bound × max link delay × safety
   factor`` (:func:`~repro.core.epoch.watchdog_deadline`) bounds its
   duration.  A traversal silent past the deadline has lost its packet.
3. **Retries with backoff + jitter.**  On expiry the supervisor advances
   the epoch and re-triggers, after an exponential backoff with seeded
   jitter (drawn from ``network.rng``, so campaigns replay bit-identically).
4. **Graceful degradation.**  When retries exhaust (persistent partition),
   each service degrades to an explicit, honest partial answer instead of
   hanging or raising — see :class:`SupervisedRuntime`.

``tests/test_supervisor.py`` exercises every path; the chaos harness
(:mod:`repro.net.chaos`) drives all four services through randomized fault
campaigns on top of this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.engine import TraversalResult, _BaseEngine, make_engine
from repro.core.epoch import EpochClock, EpochGate, watchdog_deadline
from repro.core.fields import FIELD_EPOCH, FIELD_GID, FIELD_REPEAT, FIELD_SVC
from repro.core.services.anycast import AnycastService
from repro.core.services.base import Service
from repro.core.services.blackhole import (
    BH_DONE,
    BH_FOUND,
    BH_INCOMPLETE,
    FIELD_BH,
    FIELD_REPORT_PORT,
    REPEAT_PROBE,
    REPEAT_VERIFY,
    BlackholeService,
    BlackholeVerdict,
)
from repro.core.services.critical import CRITICAL, FIELD_CRITICAL, CriticalNodeService
from repro.core.services.snapshot import SnapshotService, decode_snapshot
from repro.control.channel import ControlChannel
from repro.control.retry import RetryPolicy, retry_rounds
from repro.net.simulator import Network
from repro.net.trace import EventKind
from repro.openflow.errors import InstallError
from repro.openflow.packet import LOCAL_PORT, Packet

#: Attempt outcomes recorded in the epoch ledger.
ACCEPTED = "accepted"
EXPIRED = "expired"
PACKET_OUT_LOST = "packet-out-lost"
DEGRADED_REPORT = "degraded-report"
#: The attempt produced a verdict that still needs cross-epoch confirmation
#: (blackhole FOUND reports; see SupervisedRuntime.detect_blackhole).
UNCONFIRMED = "unconfirmed"
#: The verify walk proved the probe died mid-run (an in-band BH_INCOMPLETE
#: report), so the attempt failed fast instead of waiting out the watchdog.
PROBE_INCOMPLETE = "probe-incomplete"


@dataclass
class SupervisorConfig:
    """Retry/deadline policy of one supervisor."""

    #: Total trigger attempts (first try + retries).
    max_attempts: int = 4
    #: Deadline head-room over the closed-form worst case.
    safety_factor: float = 4.0
    #: First backoff (simulated time units).
    base_backoff: float = 8.0
    #: Backoff growth per retry.
    backoff_factor: float = 2.0
    #: Backoff ceiling.
    max_backoff: float = 512.0
    #: Max jitter, as a fraction of the backoff (uniform, seeded).
    jitter: float = 0.5

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.safety_factor < 1.0:
            raise ValueError("safety_factor must be >= 1")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoffs must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")


@dataclass
class EpochAttempt:
    """Ledger entry: what one epoch of a supervised call did."""

    epoch: int
    injected_at: float
    deadline: float
    outcome: str = EXPIRED
    #: Stale packets squashed at the origin gate while this epoch ran.
    squashed: int = 0
    #: Packet ids injected under this epoch (trace cross-reference).
    packet_ids: tuple[int, ...] = ()


@dataclass
class SupervisedOutcome:
    """Generic result of one supervised call (the MC009 evidence)."""

    service: str
    root: int
    ok: bool
    degraded: bool
    #: "completed" | "retries-exhausted" | "controller-disconnected"
    reason: str
    attempts: list[EpochAttempt] = field(default_factory=list)
    #: The accepted traversal result (ok runs only).
    result: TraversalResult | None = None

    @property
    def attempts_used(self) -> int:
        return len(self.attempts)

    @property
    def epochs(self) -> list[int]:
        return [a.epoch for a in self.attempts]

    @property
    def stale_squashed(self) -> int:
        return sum(a.squashed for a in self.attempts)


def check_epoch_ledger(outcome: SupervisedOutcome) -> list[str]:
    """The MC009 contract, checked on a supervised call's ledger: every
    epoch ends in exactly one terminal outcome, at most one epoch is
    accepted, and the call as a whole yields exactly one result *or* an
    explicit degraded report.  Returns human-readable violations (empty =
    contract holds)."""
    problems: list[str] = []
    valid = {
        ACCEPTED,
        EXPIRED,
        PACKET_OUT_LOST,
        DEGRADED_REPORT,
        UNCONFIRMED,
        PROBE_INCOMPLETE,
    }
    accepted = [a for a in outcome.attempts if a.outcome == ACCEPTED]
    for attempt in outcome.attempts:
        if attempt.outcome not in valid:
            problems.append(
                f"epoch {attempt.epoch}: unknown outcome {attempt.outcome!r}"
            )
    if len(accepted) > 1:
        problems.append(
            f"{len(accepted)} epochs accepted a result; at-most-once violated"
        )
    if outcome.ok and outcome.degraded:
        problems.append("outcome is both ok and degraded")
    if outcome.ok and not accepted:
        problems.append("ok outcome without an accepted epoch")
    if not outcome.ok and accepted:
        problems.append("accepted epoch but outcome not ok")
    if not outcome.ok and not outcome.degraded:
        problems.append("call yielded neither a result nor a degraded report")
    if outcome.degraded and outcome.attempts:
        last = outcome.attempts[-1]
        if last.outcome not in (DEGRADED_REPORT, EXPIRED, PACKET_OUT_LOST):
            problems.append(
                f"degraded call ends with epoch outcome {last.outcome!r}"
            )
    return problems


def _result_watcher(
    engine: _BaseEngine, mark_reports: int, mark_deliveries: int, epoch: int,
    accept_deliveries: bool,
):
    """Early-exit predicate: a current-epoch observable arrived."""

    def done() -> bool:
        for _node, pkt in engine.reports[mark_reports:]:
            if pkt.get(FIELD_EPOCH) == epoch:
                return True
        if accept_deliveries:
            for _node, pkt in engine.deliveries[mark_deliveries:]:
                if pkt.get(FIELD_EPOCH) == epoch:
                    return True
        return False

    return done


def _verdict_watcher(engine: _BaseEngine, mark_reports: int, epoch: int):
    """Early-exit predicate: a current-epoch blackhole verdict arrived."""

    def done() -> bool:
        for _node, pkt in engine.reports[mark_reports:]:
            if (
                pkt.get(FIELD_EPOCH) == epoch
                and pkt.get(FIELD_BH) in (BH_FOUND, BH_DONE, BH_INCOMPLETE)
            ):
                return True
        return False

    return done


class TraversalSupervisor:
    """Supervises single-trigger traversal services on one network.

    One supervisor owns one engine (and its service instance, whose
    ``epoch_gate`` it drives).  Multi-phase services (the smart-counter
    blackhole detection, whose counters must start fresh each attempt) are
    handled by :class:`SupervisedRuntime` on top of the same window/backoff
    machinery.
    """

    def __init__(
        self,
        network: Network,
        service: Service,
        mode: str = "interpreted",
        config: SupervisorConfig | None = None,
        channel: "ControlChannel | None" = None,
        clock: EpochClock | None = None,
    ) -> None:
        self.network = network
        self.service = service
        self.mode = mode
        self.config = config or SupervisorConfig()
        self.config.validate()
        self.channel = channel
        self.clock = clock or EpochClock()
        self.engine = make_engine(network, service, mode)

    # ------------------------------------------------------------------ #
    # Event-loop windows                                                 #
    # ------------------------------------------------------------------ #

    def _run_window(self, duration: float, done=None) -> bool:
        """Drive the event loop for at most *duration* time units, early
        exiting when *done()* turns true or nothing is in flight."""
        sim = self.network.sim
        deadline = sim.now + duration
        step = max(self.network.max_link_delay(), 1e-9)
        while True:
            if done is not None and done():
                return True
            if sim.now >= deadline or not sim.pending:
                break
            # Anchor each slice with a no-op: ``sim.run(until=...)`` never
            # advances the clock past the queue, so a lone far-future event
            # (e.g. a scheduled management reconnect) would otherwise leave
            # ``now`` — and this loop — stuck before the deadline forever.
            target = min(deadline, sim.now + step)
            sim.at(target, lambda: None)
            sim.run(until=target)
        return done() if done is not None else False

    def _sleep(self, duration: float) -> None:
        """Advance simulated time (stragglers keep moving and get squashed
        at the origin gate as they return)."""
        sim = self.network.sim
        target = sim.now + duration
        sim.at(target, lambda: None)
        sim.run(until=target)

    def _backoff(self, retry_index: int) -> float:
        cfg = self.config
        delay = min(
            cfg.max_backoff, cfg.base_backoff * cfg.backoff_factor**retry_index
        )
        return delay * (1.0 + cfg.jitter * self.network.rng.random())

    def _deadline(self) -> float:
        return watchdog_deadline(
            self.service.name,
            self.network.topology,
            self.network.max_link_delay(),
            self.config.safety_factor,
        )

    # ------------------------------------------------------------------ #
    # Injection                                                          #
    # ------------------------------------------------------------------ #

    def _inject(
        self, root: int, fields: dict[str, int], from_controller: bool
    ) -> Packet | None:
        """Build and inject one trigger; None if the packet-out was lost
        (origin disconnected from the controller)."""
        packet_fields = {FIELD_SVC: self.service.service_id}
        packet_fields.update(fields)
        packet = Packet(fields=packet_fields)
        if from_controller and self.channel is not None:
            if not self.channel.packet_out(root, packet, in_port=LOCAL_PORT):
                return None
            return packet
        self.network.inject(
            root, packet, in_port=LOCAL_PORT, from_controller=from_controller
        )
        return packet

    def _bind(self) -> None:
        """(Re)install the engine; route packet-ins through the control
        channel when one is supervising the call, so management-plane
        disconnection is honoured (and counted) on the report path too."""
        self.engine.install()
        if self.channel is not None:
            self.channel.set_packet_in_handler(self.engine._on_report)

    # ------------------------------------------------------------------ #
    # The supervision loop                                               #
    # ------------------------------------------------------------------ #

    def supervise(
        self,
        root: int,
        fields: dict[str, int] | None = None,
        from_controller: bool = True,
        accept_deliveries: bool = False,
    ) -> SupervisedOutcome:
        """Run one supervised trigger of the service at *root*.

        A result is *accepted* when a report (or, with
        ``accept_deliveries``, a local delivery) tagged with the current
        epoch arrives; stale and duplicate observables are squashed and
        counted.  Exhausted retries produce ``degraded=True`` — the caller
        (or :class:`SupervisedRuntime`) turns the ledger into a
        service-specific partial answer.
        """
        outcome = SupervisedOutcome(
            service=self.service.name,
            root=root,
            ok=False,
            degraded=False,
            reason="retries-exhausted",
        )
        deadline = self._deadline()
        lost_outs = 0

        for attempt_index in range(self.config.max_attempts):
            epoch = self.clock.advance()
            gate = EpochGate(origin=root, epoch=epoch)
            self.service.epoch_gate = gate
            self._bind()

            mark_reports = len(self.engine.reports)
            mark_deliveries = len(self.engine.deliveries)
            attempt = EpochAttempt(
                epoch=epoch,
                injected_at=self.network.sim.now,
                deadline=deadline,
            )
            outcome.attempts.append(attempt)

            trigger_fields = dict(fields or {})
            trigger_fields[FIELD_EPOCH] = epoch
            packet = self._inject(root, trigger_fields, from_controller)
            if packet is None:
                attempt.outcome = PACKET_OUT_LOST
                lost_outs += 1
                if attempt_index < self.config.max_attempts - 1:
                    self._sleep(self._backoff(attempt_index))
                continue
            attempt.packet_ids = (packet.packet_id,)

            fresh_result = _result_watcher(
                self.engine, mark_reports, mark_deliveries, epoch,
                accept_deliveries,
            )
            got = self._run_window(deadline, done=fresh_result)
            attempt.squashed = gate.squashed

            if got:
                attempt.outcome = ACCEPTED
                reports = [
                    (node, pkt)
                    for node, pkt in self.engine.reports[mark_reports:]
                    if pkt.get(FIELD_EPOCH) == epoch
                ]
                deliveries = [
                    (node, pkt)
                    for node, pkt in self.engine.deliveries[mark_deliveries:]
                    if pkt.get(FIELD_EPOCH) == epoch
                ]
                outcome.ok = True
                outcome.reason = "completed"
                outcome.result = TraversalResult(
                    root=root,
                    packet=packet,
                    reports=reports,
                    deliveries=deliveries,
                )
                return outcome

            attempt.outcome = EXPIRED
            if attempt_index < self.config.max_attempts - 1:
                self._sleep(self._backoff(attempt_index))

        outcome.degraded = True
        if outcome.attempts:
            outcome.attempts[-1].outcome = DEGRADED_REPORT
        if lost_outs == len(outcome.attempts):
            outcome.reason = "controller-disconnected"
        return outcome

    # ------------------------------------------------------------------ #
    # Origin-side evidence                                               #
    # ------------------------------------------------------------------ #

    def reached_nodes(self, outcome: SupervisedOutcome) -> set[int]:
        """Nodes the supervised packets provably visited, from the hop log
        restricted to this call's packet ids.  (The origin can reconstruct
        the same set in-band: it installed the rules, knows the DFS port
        order, and sees how far each returning packet's tags progressed.)"""
        ids = {pid for a in outcome.attempts for pid in a.packet_ids}
        reached = {outcome.root}
        for event in self.network.trace.events(EventKind.HOP):
            if event.packet_id in ids and event.detail:
                reached.add(event.detail[0])
                reached.add(event.detail[2])
        return reached

    def terminal_nodes(self, outcome: SupervisedOutcome) -> set[int]:
        """Last node each supervised packet was seen at (suspect anchors)."""
        ids = {pid for a in outcome.attempts for pid in a.packet_ids}
        last: dict[int, int] = {pid: outcome.root for pid in sorted(ids)}
        for event in self.network.trace.events(EventKind.HOP):
            if event.packet_id in last and event.detail:
                last[event.packet_id] = event.detail[2]
        return set(last.values())


# --------------------------------------------------------------------- #
# Per-service degradation contracts                                     #
# --------------------------------------------------------------------- #


@dataclass
class SupervisedSnapshot:
    """Snapshot under supervision.

    Degraded contract: ``degraded=True``, ``links`` empty, and ``nodes`` is
    the provably-reached subset of the root's component — never a lie, only
    an under-approximation, and explicitly marked as such.
    """

    nodes: set[int]
    links: set[frozenset[tuple[int, int]]]
    degraded: bool
    supervision: SupervisedOutcome

    @property
    def ok(self) -> bool:
        return not self.degraded


@dataclass
class SupervisedDelivery:
    """Anycast under supervision.

    Degraded contract: fall back to an already-confirmed member of the
    group (a delivery observed under any epoch of this or an earlier call);
    ``delivered_at=None`` when no member was ever confirmed.
    """

    gid: int
    delivered_at: int | None
    degraded: bool
    #: True when ``delivered_at`` comes from the confirmed-member cache
    #: rather than a fresh delivery.
    fallback: bool
    supervision: SupervisedOutcome


@dataclass
class SupervisedBlackhole:
    """Blackhole detection under supervision.

    Degraded contract: instead of raising/hanging, report the narrowed
    suspect interval — the ports of the nodes where the supervised packets
    were last seen (a silent drop always happens on an edge incident to the
    dying packet's last confirmed position).
    """

    verdict: BlackholeVerdict | None
    degraded: bool
    #: Sender-side (node, port) suspects; empty when a verdict exists.
    suspects: list[tuple[int, int]]
    supervision: SupervisedOutcome


@dataclass
class SupervisedCritical:
    """Critical-node check under supervision.

    Degraded contract: ``critical=None`` (explicitly unknown) — the check
    claims nothing it cannot prove.
    """

    node: int
    critical: bool | None
    degraded: bool
    supervision: SupervisedOutcome


#: Per-switch reconciliation outcomes.
RESYNC_OK = "ok"
RESYNC_REPROGRAMMED = "reprogrammed"
RESYNC_UNREACHABLE = "unreachable"

#: Per-switch re-adoption outcomes (see :meth:`SupervisedRuntime.readopt`).
READOPT_OK = "ok"
READOPT_REPROGRAMMED = "reprogrammed"
READOPT_DARK = "dark"
READOPT_UNREACHABLE = "unreachable"
READOPT_FAILED = "install-failed"


@dataclass
class ReadoptAttempt:
    """One audited per-switch decision in the re-adoption ledger.

    Every round records one attempt per (switch, service) pair — matches
    (``ok``), pushes (``reprogrammed``), interrupted pushes
    (``install-failed``), and honest skips (``dark`` / ``unreachable``) —
    so the ledger shows exactly which retry repaired which switch and why
    earlier rounds did not.
    """

    round_index: int
    node: int
    service: str
    status: str


@dataclass
class ReadoptReport:
    """What one switch re-adoption sweep did (the chaos oracle's evidence
    for *switch-recovery*)."""

    converged: bool
    rounds: int
    #: Full per-round, per-(switch, service) audit trail.
    attempts: list[ReadoptAttempt] = field(default_factory=list)
    #: Nodes reprogrammed in *any* round, in reprogramming order.
    reprogrammed_nodes: list[int] = field(default_factory=list)
    #: Final-round honest-degradation sets: switches that are crashed
    #: (dark) or management-disconnected are reported, not awaited.
    dark_nodes: list[int] = field(default_factory=list)
    unreachable_nodes: list[int] = field(default_factory=list)
    #: Reachable, up switches whose digest still disagreed after the final
    #: round (non-empty only when ``converged`` is False).
    drifted_nodes: list[int] = field(default_factory=list)


@dataclass
class SwitchResync:
    """Inventory-handshake outcome for one (switch, service) pair."""

    node: int
    service: str
    status: str


@dataclass
class ResyncReport:
    """What one post-restart resynchronization did (the chaos oracle's
    evidence for *resync-convergence*)."""

    converged: bool
    rounds: int
    #: Epoch clock before and after the post-crash jump.
    epoch_before: int
    epoch_after: int
    #: Nodes the in-band re-learning traversal reached.
    relearned_nodes: set[int]
    relearned_links: set[frozenset[tuple[int, int]]]
    #: True when the re-learning snapshot itself had to degrade.
    topology_degraded: bool
    #: Final-round handshake entries (the fixed point when ``converged``).
    switches: list[SwitchResync] = field(default_factory=list)
    #: Nodes reprogrammed in *any* round, in reprogramming order.
    reprogrammed_nodes: list[int] = field(default_factory=list)

    @property
    def unreachable_nodes(self) -> list[int]:
        return [s.node for s in self.switches if s.status == RESYNC_UNREACHABLE]


class SupervisedRuntime:
    """All four case studies, supervised: the resilient runtime facade.

    Mirrors :class:`~repro.core.runtime.SmartSouthRuntime` but every call
    returns instead of hanging: epoch-tagged retries under watchdog
    deadlines, then an explicit degraded answer.  One epoch clock is shared
    across services so squashed stragglers of one call can never alias a
    later call's epoch within the wrap window.
    """

    def __init__(
        self,
        network: Network,
        mode: str = "interpreted",
        config: SupervisorConfig | None = None,
        channel: "ControlChannel | None" = None,
        in_band: bool = False,
    ) -> None:
        self.network = network
        self.mode = mode
        self.config = config or SupervisorConfig()
        self.channel = channel
        #: In-band triggering: the origin switch injects its own triggers
        #: (``from_controller=False``), so a dead management plane cannot
        #: stop a service — the paper's full-outage operating mode.
        self.in_band = in_band
        self.clock = EpochClock()
        self._supervisors: dict[str, TraversalSupervisor] = {}
        #: gid -> confirmed members (delivery evidence), most recent last.
        self._confirmed: dict[int, list[int]] = {}

    def _supervisor(self, service: Service, key: str) -> TraversalSupervisor:
        supervisor = self._supervisors.get(key)
        if supervisor is None:
            supervisor = TraversalSupervisor(
                self.network,
                service,
                mode=self.mode,
                config=self.config,
                channel=self.channel,
                clock=self.clock,
            )
            self._supervisors[key] = supervisor
        return supervisor

    # -- post-restart resynchronization ----------------------------------- #

    def resynchronize(
        self, root: int, margin: int = 2, max_rounds: int = 3
    ) -> ResyncReport:
        """Resynchronize after a controller crash/restart.

        A restarted controller keeps only static configuration (the service
        definitions and the compiler); everything learned is gone.  Three
        steps rebuild it, all through the supervised machinery so loss and
        partitions produce retries and honest degradation, never hangs:

        1. **Epoch jump.**  :meth:`EpochClock.resync` burns *margin*
           epochs, so any attempt that was in flight when the controller
           died is strictly stale — the existing origin
           :class:`~repro.core.epoch.EpochGate` squashes its survivors the
           moment a new supervised call installs a gate.
        2. **In-band topology re-learning.**  One supervised snapshot
           traversal from *root* re-learns nodes and links — the paper's
           point: re-learning needs management connectivity to a *single*
           switch, not to all of them.
        3. **Inventory handshake, to a fixed point.**  Every switch of
           every supervised engine reports its
           :meth:`~repro.openflow.switch.Switch.inventory_digest`; the
           controller recompiles the expected program from static config
           and reprograms any switch whose digest disagrees (a crash during
           programming, or state garbled while unsupervised).  Rounds
           repeat until one reprograms nothing; ``converged`` is False only
           when *max_rounds* of reprogramming never reached that fixed
           point.
        """
        from repro.core.compiler import compile_service

        epoch_before = self.clock.current
        epoch_after = self.clock.resync(margin)
        snap = self.snapshot(root)
        report = ResyncReport(
            converged=False,
            rounds=0,
            epoch_before=epoch_before,
            epoch_after=epoch_after,
            relearned_nodes=set(snap.nodes),
            relearned_links=set(snap.links),
            topology_degraded=snap.degraded,
        )
        for _round in range(max_rounds):
            report.rounds += 1
            entries: list[SwitchResync] = []
            reprogrammed = 0
            for key in sorted(self._supervisors):
                supervisor = self._supervisors[key]
                engine = supervisor.engine
                installed = getattr(engine, "switches", None)
                if not installed:
                    # Interpreted engines keep no switch-side flow state to
                    # reconcile; (re)binding happens on the next call.
                    continue
                service = supervisor.service
                for node in sorted(installed):
                    if self.channel is not None and not self.channel.connected(
                        node
                    ):
                        entries.append(
                            SwitchResync(node, service.name, RESYNC_UNREACHABLE)
                        )
                        continue
                    expected = compile_service(
                        self.network,
                        node,
                        service,
                        fast_path=getattr(engine, "fast_path", None),
                    )
                    if (
                        installed[node].inventory_digest()
                        == expected.inventory_digest()
                    ):
                        entries.append(
                            SwitchResync(node, service.name, RESYNC_OK)
                        )
                        continue
                    installed[node] = expected
                    self.network.set_handler(node, expected.process)
                    entries.append(
                        SwitchResync(node, service.name, RESYNC_REPROGRAMMED)
                    )
                    report.reprogrammed_nodes.append(node)
                    reprogrammed += 1
            report.switches = entries
            if reprogrammed == 0:
                report.converged = True
                break
        return report

    # -- switch re-adoption ----------------------------------------------- #

    def switches_at(self, node: int) -> list:
        """Every installed Switch object currently serving *node*.

        Walks the cached compiled engines in deterministic (service-key)
        order; interpreted engines contribute nothing.  The chaos harness
        uses this to aim switch-level faults at whatever box is actually
        bound to a node, and tests use it to poke switch state directly.
        """
        switches = []
        for key in sorted(self._supervisors):
            engine = self._supervisors[key].engine
            installed = getattr(engine, "switches", None)
            if installed and node in installed:
                switches.append(installed[node])
        return switches

    def readopt(self, max_rounds: int = 4) -> ReadoptReport:
        """Re-adopt rebooted (or otherwise drifted) switches.

        The switch-side mirror of :meth:`resynchronize`: there the
        *controller* lost its soft state; here a *switch* did.  Each round
        walks every switch of every supervised compiled engine and runs the
        inventory handshake — the switch reports its
        :meth:`~repro.openflow.switch.Switch.inventory_digest` (which
        covers flow entries, group buckets and FF watch ports), the
        controller recompiles the expected program from static
        configuration, and any disagreeing switch gets the program pushed
        back entry by entry via
        :meth:`~repro.openflow.switch.Switch.adopt_program`.  The push
        mutates the installed switch **in place**, so an interrupted push
        (an active :class:`~repro.openflow.switch.SwitchFaultConfig`)
        leaves honest drift behind for the next round to detect.

        Rounds are driven by :func:`repro.control.retry.retry_rounds` with
        the fixed-point early stop disabled: under transient install
        faults a no-progress round is not evidence of unreachability, so
        only the attempt budget (*max_rounds*) and the backoff policy
        bound the loop.  Crashed switches (``dark``) and
        management-disconnected switches (``unreachable``) are reported,
        never awaited — honest degradation while the box is gone.
        ``converged`` means every *reachable, up* switch matched its
        expected digest in the final sweep.
        """
        from repro.core.compiler import compile_service

        report = ReadoptReport(converged=False, rounds=0)
        pending = {"drifted": 0}

        def sweep(round_index: int) -> None:
            drifted = 0
            dark: list[int] = []
            unreachable: list[int] = []
            still_drifted: list[int] = []
            for key in sorted(self._supervisors):
                supervisor = self._supervisors[key]
                engine = supervisor.engine
                installed = getattr(engine, "switches", None)
                if not installed:
                    # Interpreted engines keep no switch-side flow state.
                    continue
                service = supervisor.service
                for node in sorted(installed):
                    switch = installed[node]
                    if self.channel is not None and not self.channel.connected(
                        node
                    ):
                        report.attempts.append(
                            ReadoptAttempt(
                                round_index, node, service.name,
                                READOPT_UNREACHABLE,
                            )
                        )
                        if node not in unreachable:
                            unreachable.append(node)
                        continue
                    if switch.down:
                        report.attempts.append(
                            ReadoptAttempt(
                                round_index, node, service.name, READOPT_DARK
                            )
                        )
                        if node not in dark:
                            dark.append(node)
                        continue
                    expected = compile_service(
                        self.network,
                        node,
                        service,
                        fast_path=getattr(engine, "fast_path", None),
                    )
                    if (
                        switch.inventory_digest()
                        == expected.inventory_digest()
                    ):
                        report.attempts.append(
                            ReadoptAttempt(
                                round_index, node, service.name, READOPT_OK
                            )
                        )
                        continue
                    try:
                        switch.adopt_program(expected)
                    except InstallError:
                        report.attempts.append(
                            ReadoptAttempt(
                                round_index, node, service.name,
                                READOPT_FAILED,
                            )
                        )
                        drifted += 1
                        if node not in still_drifted:
                            still_drifted.append(node)
                        continue
                    report.attempts.append(
                        ReadoptAttempt(
                            round_index, node, service.name,
                            READOPT_REPROGRAMMED,
                        )
                    )
                    report.reprogrammed_nodes.append(node)
                    # A completed push matches by construction, but a
                    # paranoid controller re-verifies the digest rather
                    # than trusting its own bookkeeping.
                    if (
                        switch.inventory_digest()
                        != expected.inventory_digest()
                    ):
                        drifted += 1
                        if node not in still_drifted:
                            still_drifted.append(node)
            pending["drifted"] = drifted
            report.dark_nodes = dark
            report.unreachable_nodes = unreachable
            report.drifted_nodes = still_drifted

        policy = RetryPolicy(
            max_attempts=max_rounds,
            base_backoff=self.config.base_backoff,
            backoff_factor=self.config.backoff_factor,
            max_backoff=self.config.max_backoff,
            jitter=self.config.jitter,
        )
        report.rounds = retry_rounds(
            self.network,
            policy,
            sweep,
            lambda: pending["drifted"],
            stop_on_no_progress=False,
        )
        report.converged = pending["drifted"] == 0
        return report

    # -- snapshot -------------------------------------------------------- #

    def snapshot(self, root: int) -> SupervisedSnapshot:
        supervisor = self._supervisor(SnapshotService(), "snapshot")
        outcome = supervisor.supervise(root, from_controller=not self.in_band)
        if outcome.ok and outcome.result and outcome.result.reports:
            reporter, packet = outcome.result.reports[-1]
            nodes, links = decode_snapshot(packet)
            nodes.add(reporter)
            return SupervisedSnapshot(
                nodes=nodes, links=links, degraded=False, supervision=outcome
            )
        return SupervisedSnapshot(
            nodes=supervisor.reached_nodes(outcome),
            links=set(),
            degraded=True,
            supervision=outcome,
        )

    # -- anycast --------------------------------------------------------- #

    def anycast(
        self, root: int, gid: int, groups: Mapping[int, set[int]]
    ) -> SupervisedDelivery:
        key = f"anycast:{sorted((g, tuple(sorted(m))) for g, m in groups.items())}"
        supervisor = self._supervisor(AnycastService(groups), key)
        mark = len(supervisor.engine.deliveries)
        outcome = supervisor.supervise(
            root,
            fields={FIELD_GID: gid},
            from_controller=False,
            accept_deliveries=True,
        )
        # Every delivery observed during the call — fresh or stale — is
        # confirmed-member evidence for future fallbacks.
        for node, _pkt in supervisor.engine.deliveries[mark:]:
            bucket = self._confirmed.setdefault(gid, [])
            if node in bucket:
                bucket.remove(node)
            bucket.append(node)
        if outcome.ok and outcome.result and outcome.result.deliveries:
            return SupervisedDelivery(
                gid=gid,
                delivered_at=outcome.result.deliveries[0][0],
                degraded=False,
                fallback=False,
                supervision=outcome,
            )
        confirmed = self._confirmed.get(gid, [])
        return SupervisedDelivery(
            gid=gid,
            delivered_at=confirmed[-1] if confirmed else None,
            degraded=True,
            fallback=bool(confirmed),
            supervision=outcome,
        )

    # -- blackhole ------------------------------------------------------- #

    def detect_blackhole(self, root: int) -> SupervisedBlackhole:
        """Supervised two-phase smart-counter detection.

        Each attempt gets a fresh engine (smart counters are stateful and
        the "fetch = 1" test assumes they start from zero); the verify
        trigger only launches once the probe phase has drained or its
        deadline passed, honouring the paper's phase-gap requirement.

        Two defenses keep FOUND verdicts honest under probabilistic loss.
        The paper's count-is-1 signature is sound for drop-all blackholes —
        the first crossing of the bad link dies, stranding the sender port
        at 1 — but loss can kill the probe on a port already counted >= 2,
        leaving no signature anywhere; an unsuspecting verify walk would
        then stray into probe-untouched territory where its own arrival
        counting manufactures spurious count-1 reports on healthy links.

        1. **In-band incompleteness proof.**  The verify halts the moment a
           send-side fetch returns 0 (a port a completed probe could never
           have left untouched) and reports ``BH_INCOMPLETE``; the attempt
           fails fast and retries under a fresh epoch.  The *earliest*
           terminal report of the epoch decides, which also disarms
           duplicated verify copies trailing a halted twin.
        2. **Cross-epoch confirmation.**  A FOUND location must repeat in a
           second epoch before it is accepted.  A real blackhole kills the
           deterministic DFS at the same point every epoch, so its verdict
           is stable; residual loss artifacts depend on where the random
           drop landed and do not reliably repeat.

        A clean BH_DONE needs no confirmation: a completed verify means
        every crossing survived twice, so no drop-all blackhole is
        reachable.
        """
        cfg = self.config
        network = self.network
        outcome = SupervisedOutcome(
            service="blackhole", root=root, ok=False, degraded=False,
            reason="retries-exhausted",
        )
        lost_outs = 0
        verdict: BlackholeVerdict | None = None
        last_supervisor: TraversalSupervisor | None = None
        #: FOUND location -> (sightings, representative verdict).
        candidates: dict[tuple[int, int], tuple[int, BlackholeVerdict]] = {}

        for attempt_index in range(cfg.max_attempts):
            service = BlackholeService()
            supervisor = TraversalSupervisor(
                network, service, mode=self.mode, config=cfg,
                channel=self.channel, clock=self.clock,
            )
            last_supervisor = supervisor
            epoch = self.clock.advance()
            gate = EpochGate(origin=root, epoch=epoch)
            service.epoch_gate = gate
            supervisor._bind()
            deadline = supervisor._deadline()

            engine = supervisor.engine
            mark_reports = len(engine.reports)
            attempt = EpochAttempt(
                epoch=epoch, injected_at=network.sim.now, deadline=deadline
            )
            outcome.attempts.append(attempt)

            # Drain stragglers of the previous attempt first: the verify
            # test reads fresh counters and a stale roaming packet would
            # pollute them (stale packets die at the origin gate).
            if attempt_index:
                supervisor._run_window(deadline)

            probe = supervisor._inject(
                root,
                {FIELD_REPEAT: REPEAT_PROBE, FIELD_EPOCH: epoch},
                not self.in_band,
            )
            if probe is None:
                attempt.outcome = PACKET_OUT_LOST
                lost_outs += 1
                if attempt_index < cfg.max_attempts - 1:
                    supervisor._sleep(supervisor._backoff(attempt_index))
                continue
            # Phase A has no completion observable: run to quiescence or
            # the probe deadline (the phase gap of the paper's detector).
            supervisor._run_window(deadline)

            verify = supervisor._inject(
                root,
                {FIELD_REPEAT: REPEAT_VERIFY, FIELD_EPOCH: epoch},
                not self.in_band,
            )
            if verify is None:
                attempt.outcome = PACKET_OUT_LOST
                lost_outs += 1
                attempt.packet_ids = (probe.packet_id,)
                attempt.squashed = gate.squashed
                if attempt_index < cfg.max_attempts - 1:
                    supervisor._sleep(supervisor._backoff(attempt_index))
                continue
            attempt.packet_ids = (probe.packet_id, verify.packet_id)

            fresh_verdict = _verdict_watcher(engine, mark_reports, epoch)
            got = supervisor._run_window(deadline, done=fresh_verdict)
            attempt.squashed = gate.squashed

            if got:
                # The *earliest* terminal report of this epoch decides the
                # attempt (reports append in emission order).  Ordering
                # matters under duplication: a trailing verify copy can
                # fetch the count its halted twin left behind and emit a
                # spurious FOUND — always *after* the twin's INCOMPLETE.
                kind = 0
                report_node, report_pkt = -1, None
                for node, pkt in engine.reports[mark_reports:]:
                    if pkt.get(FIELD_EPOCH) != epoch:
                        continue
                    if pkt.get(FIELD_BH) in (BH_FOUND, BH_DONE, BH_INCOMPLETE):
                        kind = pkt.get(FIELD_BH)
                        report_node, report_pkt = node, pkt
                        break
                epoch_reports = [
                    (n, p)
                    for n, p in engine.reports[mark_reports:]
                    if p.get(FIELD_EPOCH) == epoch
                ]
                if kind == BH_INCOMPLETE:
                    # In-band proof the probe died without a count-1
                    # signature: no verdict is derivable this epoch.  Fail
                    # the attempt immediately (faster than the watchdog).
                    attempt.outcome = PROBE_INCOMPLETE
                elif kind == BH_DONE:
                    # Clean completion: accept immediately.
                    attempt.outcome = ACCEPTED
                    outcome.ok = True
                    outcome.reason = "completed"
                    verdict = BlackholeVerdict(found=False)
                    outcome.result = TraversalResult(
                        root=root, packet=verify, reports=epoch_reports
                    )
                    break
                else:
                    port = report_pkt.get(FIELD_REPORT_PORT)
                    fresh = BlackholeVerdict(
                        found=True, location=(report_node, port)
                    )
                    far = network.topology.neighbor(report_node, port)
                    if far is not None:
                        fresh.far_end = (far.node, far.port)
                    seen, _rep = candidates.get(fresh.location, (0, fresh))
                    candidates[fresh.location] = (seen + 1, fresh)
                    if seen + 1 >= 2:
                        # Two epochs agree: the verdict is stable, accept.
                        attempt.outcome = ACCEPTED
                        outcome.ok = True
                        outcome.reason = "completed"
                        verdict = fresh
                        outcome.result = TraversalResult(
                            root=root, packet=verify, reports=epoch_reports
                        )
                        break
                    attempt.outcome = UNCONFIRMED
            else:
                attempt.outcome = EXPIRED
            if attempt_index < cfg.max_attempts - 1:
                supervisor._sleep(supervisor._backoff(attempt_index))

        if outcome.ok:
            return SupervisedBlackhole(
                verdict=verdict, degraded=False, suspects=[], supervision=outcome
            )

        outcome.degraded = True
        if outcome.attempts:
            outcome.attempts[-1].outcome = DEGRADED_REPORT
        if outcome.attempts and lost_outs == len(outcome.attempts):
            outcome.reason = "controller-disconnected"
        elif candidates:
            outcome.reason = "unconfirmed-verdict"
        suspects: list[tuple[int, int]] = sorted(candidates)
        if last_supervisor is not None:
            topology = network.topology
            for node in sorted(last_supervisor.terminal_nodes(outcome)):
                for port in range(1, topology.degree(node) + 1):
                    if (node, port) not in candidates:
                        suspects.append((node, port))
        return SupervisedBlackhole(
            verdict=None, degraded=True, suspects=suspects, supervision=outcome
        )

    # -- critical node --------------------------------------------------- #

    def critical(self, node: int) -> SupervisedCritical:
        supervisor = self._supervisor(CriticalNodeService(), "critical")
        outcome = supervisor.supervise(node, from_controller=not self.in_band)
        if outcome.ok and outcome.result:
            verdict = any(
                pkt.get(FIELD_CRITICAL) == CRITICAL
                for _reporter, pkt in outcome.result.reports
            )
            return SupervisedCritical(
                node=node, critical=verdict, degraded=False, supervision=outcome
            )
        return SupervisedCritical(
            node=node, critical=None, degraded=True, supervision=outcome
        )
