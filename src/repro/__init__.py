"""SmartSouth — useful OpenFlow functions in the data plane.

A faithful, executable reproduction of Schiff, Borokhovich & Schmid,
*"Reclaiming the Brain: Useful OpenFlow Functions in the Data Plane"*
(HotNets-XIII, 2014), including the OpenFlow 1.3 switch substrate, the
SmartSouth template (interpreted and compiled to flow rules), the four case
studies (snapshot, anycast/priocast, blackhole detection, critical-node
detection), smart counters, controller baselines, and the Table 2
message-complexity evaluation.

Quickstart::

    from repro import SmartSouthRuntime, generators

    topo = generators["erdos_renyi"](24, 0.2, seed=7)
    runtime = SmartSouthRuntime(topo, mode="compiled")
    snap = runtime.snapshot(root=0)
    assert snap.links == {  # the live topology, with port numbers
        frozenset(((e.a.node, e.a.port), (e.b.node, e.b.port)))
        for e in topo.edges()
    }
"""

from repro.core import (
    CompiledEngine,
    InterpretedEngine,
    MultiServiceEngine,
    SmartSouthRuntime,
    TagLayout,
    TraversalResult,
    make_engine,
)
from repro.core.services import (
    AnycastService,
    BlackholeService,
    BlackholeTtlService,
    ChunkedSnapshotService,
    CriticalNodeService,
    LoadMonitor,
    PacketLossMonitor,
    PlainTraversalService,
    PriocastService,
    Service,
    SnapshotService,
)
from repro.net import Network, Topology, generators
from repro.openflow import Packet, Switch

__version__ = "1.0.0"

__all__ = [
    "AnycastService",
    "BlackholeService",
    "BlackholeTtlService",
    "ChunkedSnapshotService",
    "CompiledEngine",
    "CriticalNodeService",
    "InterpretedEngine",
    "LoadMonitor",
    "MultiServiceEngine",
    "Network",
    "Packet",
    "PacketLossMonitor",
    "PlainTraversalService",
    "PriocastService",
    "Service",
    "SmartSouthRuntime",
    "SnapshotService",
    "Switch",
    "TagLayout",
    "Topology",
    "TraversalResult",
    "__version__",
    "generators",
    "make_engine",
]
