"""Command-line demo driver: ``python -m repro.cli`` or ``smartsouth``.

Examples::

    smartsouth snapshot --topology erdos_renyi --nodes 30 --root 0
    smartsouth critical --topology abilene
    smartsouth blackhole --topology grid --rows 4 --cols 5 --edge 7
    smartsouth anycast --topology ring --nodes 12 --members 5,9
    smartsouth priocast --topology ring --nodes 12 --members 5:10,9:20
    smartsouth table2 --nodes 40
    smartsouth rules --topology abilene --service snapshot
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.complexity import dfs_message_count, table2
from repro.core.runtime import SmartSouthRuntime
from repro.net.simulator import Network
from repro.net.topology import Topology, generators


def build_topology(args: argparse.Namespace) -> Topology:
    if getattr(args, "file", None):
        from repro.net.topofile import load

        return load(args.file)
    name = args.topology
    if name not in generators:
        raise SystemExit(f"unknown topology {name!r}; pick from {sorted(generators)}")
    gen = generators[name]
    if name in ("grid", "torus"):
        return gen(args.rows, args.cols)
    if name == "binary_tree":
        return gen(args.depth)
    if name == "fat_tree":
        return gen(args.k)
    if name == "abilene":
        return gen()
    if name == "erdos_renyi":
        return gen(args.nodes, args.p, seed=args.seed)
    if name == "barabasi_albert":
        return gen(args.nodes, args.m, seed=args.seed)
    if name == "waxman":
        return gen(args.nodes, seed=args.seed)
    return gen(args.nodes)


def _runtime(args: argparse.Namespace) -> tuple[SmartSouthRuntime, Network]:
    topo = build_topology(args)
    network = Network(topo, seed=args.seed)
    for pair in args.fail or []:
        u, v = (int(x) for x in pair.split("-"))
        network.fail_link(u, v)
    return SmartSouthRuntime(network, mode=args.mode), network


def cmd_snapshot(args: argparse.Namespace) -> int:
    runtime, network = _runtime(args)
    if args.chunk is not None:
        outcome = runtime.snapshot_chunked(args.root, max_records=args.chunk)
        if outcome is None:
            print("chunked snapshot failed (traversal died)")
            return 1
        nodes, links, stats = outcome
        print(f"chunked snapshot from node {args.root} "
              f"({runtime.mode} engine, <= {args.chunk} records/packet)")
        print(f"  nodes discovered : {len(nodes)}")
        print(f"  links discovered : {len(links)}")
        print(f"  chunks           : {stats['chunks']}")
        print(f"  in-band messages : {stats['in_band']}")
        print(f"  out-band messages: {stats['out_band']}")
        print(f"  matches live topology: {links == network.live_port_pairs()}")
        return 0
    outcome = runtime.snapshot(args.root)
    print(f"snapshot from node {args.root} ({runtime.mode} engine)")
    print(f"  nodes discovered : {len(outcome.nodes)}")
    print(f"  links discovered : {len(outcome.links)}")
    print(f"  in-band messages : {outcome.result.in_band_messages}")
    print(f"  out-band messages: {outcome.result.out_band_messages}")
    exact = outcome.links == network.live_port_pairs()
    print(f"  matches live topology: {exact}")
    return 0 if outcome.ok else 1


def cmd_loadaudit(args: argparse.Namespace) -> int:
    from repro.core.determinism import seeded_rng

    topo = build_topology(args)
    network = Network(topo, seed=args.seed)
    runtime = SmartSouthRuntime(network)  # interpreted-only feature
    monitor = runtime.load_monitor(tuple(int(m) for m in args.moduli.split(",")))
    rng = seeded_rng(args.seed)
    loads = {
        (edge.a.node, edge.a.port): rng.randrange(0, args.max_load)
        for edge in topo.edges()
    }
    monitor.send_traffic(loads)
    report = monitor.audit(args.root)
    truth = monitor.ground_truth()
    print(f"load audit from node {args.root} "
          f"(moduli {monitor.moduli}, range 0..{report.modulus_product - 1})")
    print(f"  ports audited    : {len(report.loads)}")
    print(f"  in-band messages : {report.in_band_messages}")
    print(f"  out-band messages: {report.out_band_messages}")
    print(f"  matches ground truth: {report.loads == truth}")
    top = sorted(report.loads.items(), key=lambda kv: -kv[1])[:5]
    for (node, port), load in top:
        print(f"    hottest: switch {node} port {port}: {load} packets")
    return 0 if report.loads == truth else 1


def cmd_critical(args: argparse.Namespace) -> int:
    runtime, network = _runtime(args)
    topo = network.topology
    critical = []
    for node in topo.nodes():
        if runtime.critical(node).critical:
            critical.append(node)
    print(f"critical nodes of {topo.name}: {critical or 'none'}")
    return 0


def cmd_anycast(args: argparse.Namespace) -> int:
    runtime, _network = _runtime(args)
    members = {int(x) for x in args.members.split(",")}
    result = runtime.anycast(args.root, gid=1, groups={1: members})
    print(f"anycast from {args.root} to group {sorted(members)}")
    print(f"  delivered at     : {result.delivered_at}")
    print(f"  in-band messages : {result.in_band_messages}")
    print(f"  out-band messages: {result.out_band_messages}")
    return 0 if result.delivered_at is not None else 1


def cmd_priocast(args: argparse.Namespace) -> int:
    runtime, _network = _runtime(args)
    priorities: dict[int, int] = {}
    for item in args.members.split(","):
        node, prio = item.split(":")
        priorities[int(node)] = int(prio)
    result = runtime.priocast(args.root, gid=1, priorities={1: priorities})
    print(f"priocast from {args.root} over {priorities}")
    print(f"  delivered at     : {result.delivered_at}")
    print(f"  in-band messages : {result.in_band_messages}")
    return 0 if result.delivered_at is not None else 1


def cmd_blackhole(args: argparse.Namespace) -> int:
    runtime, network = _runtime(args)
    if args.edge is not None:
        network.links[args.edge].set_blackhole()
        edge = network.topology.edge(args.edge)
        print(
            f"injected blackhole on edge {args.edge}: "
            f"({edge.a.node},{edge.a.port})-({edge.b.node},{edge.b.port})"
        )
    verdict = (
        runtime.detect_blackhole_ttl(args.root)
        if args.algorithm == "ttl"
        else runtime.detect_blackhole_smart(args.root)
    )
    print(f"blackhole detection ({args.algorithm}):")
    print(f"  found            : {verdict.found}")
    print(f"  location         : {verdict.location}")
    print(f"  far end          : {verdict.far_end}")
    print(f"  probes           : {verdict.probes}")
    print(f"  in-band messages : {verdict.in_band_messages}")
    print(f"  out-band messages: {verdict.out_band_messages}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    topo = build_topology(args)
    n, e = topo.num_nodes, topo.num_edges
    print(f"Table 2 bounds for {topo.name} (n={n}, |E|={e}, DFS={dfs_message_count(n, e)}):")
    header = f"{'service':24} {'out-band (paper)':18} {'out-band':9} {'in-band (paper)':16} {'in-band bound':13}"
    print(header)
    for row in table2():
        print(
            f"{row.service:24} {row.out_band_msgs:18} "
            f"{row.exact_out_band(n, e):9} {row.in_band_msgs:16} "
            f"{row.exact_in_band(n, e):13}"
        )
    return 0


def _service_registry():
    from repro.core.services import (
        AnycastService,
        BlackholeService,
        BlackholeTtlService,
        ChunkedSnapshotService,
        CriticalNodeService,
        PlainTraversalService,
        PriocastService,
        SnapshotService,
    )

    return {
        "plain": PlainTraversalService,
        "snapshot": SnapshotService,
        "snapshot_chunked": ChunkedSnapshotService,
        "anycast": AnycastService,
        "priocast": PriocastService,
        "blackhole": BlackholeService,
        "blackhole_ttl": BlackholeTtlService,
        "critical": CriticalNodeService,
    }


def _build_service(args: argparse.Namespace):
    services = _service_registry()
    if args.service not in services:
        raise SystemExit(f"unknown service; pick from {sorted(services)}")
    return services[args.service]()


def cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.verify import verify_engine
    from repro.core.engine import make_engine

    topo = build_topology(args)
    engine = make_engine(Network(topo), _build_service(args), "compiled")
    reports = verify_engine(engine)
    errors = [message for report in reports for message in report.errors]
    warnings = [message for report in reports for message in report.warnings]
    if getattr(args, "json", False):
        payload = {
            "service": args.service,
            "topology": topo.name,
            "rules": engine.total_rules(),
            "groups": engine.total_groups(),
            "switches": [
                {
                    "node": report.node,
                    "errors": report.errors,
                    "warnings": report.warnings,
                }
                for report in reports
            ],
            "summary": {"errors": len(errors), "warnings": len(warnings)},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"verified {args.service} on {topo.name}: "
              f"{engine.total_rules()} rules, {engine.total_groups()} groups, "
              f"{len(errors)} errors, {len(warnings)} warnings")
        for message in errors + warnings:
            print(f"  {message}")
    if errors:
        return 1
    return 2 if warnings else 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.lint import DEFAULT_WALK_BUDGET, LintConfig, lint_engine
    from repro.core.engine import make_engine

    topo = build_topology(args)
    engine = make_engine(Network(topo), _build_service(args), "compiled")
    config = LintConfig(
        disable=frozenset(args.disable or []),
        max_states=args.max_states or DEFAULT_WALK_BUDGET,
        roots=tuple(int(r) for r in args.roots.split(","))
        if args.roots
        else None,
    )
    report = lint_engine(engine, config=config)
    if getattr(args, "json", False):
        payload = report.to_json()
        payload["topology"] = topo.name
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"lint {args.service} on {topo.name}:")
        print(report.format_text())
    return report.exit_code


def _baseline_workflow(args: argparse.Namespace, report, default_name: str):
    """The write/prune baseline verbs shared by sancheck and shardcheck.

    Returns an exit code when the invocation was a baseline operation
    (the command is done), else None (continue to reporting).
    """
    from pathlib import Path

    from repro.analysis.static import write_baseline
    from repro.analysis.static.baseline import prune_baseline

    baseline = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        target = baseline or Path(report.baseline_path or default_name)
        unsuppressed = [f for f in report.findings if not f.suppressed]
        write_baseline(target, unsuppressed)
        print(f"wrote {len(unsuppressed)} finding(s) to {target}")
        return 0
    if args.prune_baseline:
        if report.baseline_path is None:
            print("no baseline file found to prune")
            return 1
        kept, dropped = prune_baseline(
            Path(report.baseline_path),
            [f for f in report.findings if not f.suppressed],
        )
        print(
            f"pruned {dropped} stale entr{'y' if dropped == 1 else 'ies'}; "
            f"{kept} kept in {report.baseline_path}"
        )
        return 0
    return None


def _emit_report(args: argparse.Namespace, report, payload) -> None:
    import json

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif getattr(args, "format", "text") == "github":
        annotations = report.format_github()
        if annotations:
            print(annotations)
        print(report.summary())
    else:
        print(report.format_text(show_silenced=args.show_silenced))


def cmd_sancheck(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.static import SanConfig, run_sancheck

    config = SanConfig(disable=frozenset(args.disable or []))
    roots = [Path(r) for r in (args.root or [])] or None
    baseline = Path(args.baseline) if args.baseline else None
    report = run_sancheck(
        roots=roots,
        baseline_path=baseline,
        config=config,
        use_baseline=not args.no_baseline,
    )
    done = _baseline_workflow(args, report, "sancheck-baseline.json")
    if done is not None:
        return done

    exit_code = report.exit_code
    if args.fail_on_stale and report.stale_baseline:
        exit_code = 1
    payload = report.to_json()
    if args.double_run:
        from repro.analysis.static import double_run

        gate = double_run()
        payload["double_run"] = gate.to_dict()
        if not gate.ok:
            exit_code = 1
    _emit_report(args, report, payload)
    if args.double_run and not args.json:
        print_gate = payload["double_run"]
        print(f"double-run gate: {'OK' if print_gate['ok'] else 'FAILED'} "
              f"({len(print_gate['scenarios'])} scenario(s), "
              f"hash seeds {print_gate['hash_seeds']})")
        for mismatch in print_gate["mismatches"]:
            print(f"  MISMATCH {mismatch}")
        for error in print_gate["errors"]:
            print(f"  error: {error}")
    if args.interprocedural:
        shard_code = _run_shardcheck_common(args)
        exit_code = max(exit_code, shard_code)
    return exit_code


def _run_shardcheck_common(args: argparse.Namespace) -> int:
    """One interprocedural pass, honoring the shared sanitizer flags."""
    import json
    from pathlib import Path

    from repro.analysis.static import SanConfig
    from repro.analysis.static.runner import run_shardcheck

    config = SanConfig(disable=frozenset(args.disable or []))
    roots = [Path(r) for r in (args.root or [])] or None
    baseline = (
        Path(args.baseline)
        if getattr(args, "interprocedural", False) is False and args.baseline
        else None
    )
    report = run_shardcheck(
        roots=roots,
        baseline_path=baseline,
        config=config,
        use_baseline=not args.no_baseline,
        effects_path=(
            Path(args.effects) if getattr(args, "effects", None) else None
        ),
        use_effects=not getattr(args, "no_effects", False),
    )
    if getattr(args, "write_effects", False):
        target = Path(args.effects) if getattr(args, "effects", None) else (
            Path(report.effects_path)
            if report.effects_path
            else Path("shardcheck-effects.json")
        )
        target.write_text(
            json.dumps(report.effects_payload(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {len(report.effects)} API effect summaries to {target}")
        return 0
    done = _baseline_workflow(args, report, "shardcheck-baseline.json")
    if done is not None:
        return done

    exit_code = report.exit_code
    if args.fail_on_stale and report.stale_baseline:
        exit_code = 1
    min_resolution = getattr(args, "min_resolution", None)
    if min_resolution is not None:
        rate = report.resolution.get("resolution_rate", 0.0)
        if rate < min_resolution:
            print(
                f"shardcheck: call-site resolution {rate:.1%} below the "
                f"--min-resolution gate {min_resolution:.1%}"
            )
            exit_code = 1
    _emit_report(args, report, report.to_json())
    return exit_code


def cmd_shardcheck(args: argparse.Namespace) -> int:
    return _run_shardcheck_common(args)


def _build_check_service(args: argparse.Namespace, topo: Topology):
    """Like :func:`_build_service`, but give the delivery services a
    non-vacuous default configuration: checking an anycast with no members
    proves nothing, so unless the registry default already has members the
    far end of the topology is enrolled (root 0's worst case)."""
    service = _build_service(args)
    last = max(topo.num_nodes - 1, 0)
    mid = topo.num_nodes // 2
    if service.name == "anycast" and not getattr(service, "groups", None):
        service.groups = {1: {last}}
    if service.name == "priocast" and not getattr(service, "priorities", None):
        service.priorities = {1: {mid: 10, last: 20}} if mid != last else {
            1: {last: 20}
        }
    return service


def cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.modelcheck import CheckConfig, check_engine
    from repro.core.engine import make_engine

    topo = build_topology(args)
    service = _build_check_service(args, topo)
    engine = make_engine(Network(topo), service, "compiled")
    config = CheckConfig(
        max_failures=args.max_failures,
        max_triggers=args.max_triggers,
        depth=args.depth_limit,
        max_states=args.max_states or CheckConfig.max_states,
        disable=set(args.disable or []),
        roots=tuple(int(r) for r in args.roots.split(","))
        if args.roots
        else None,
        crash=args.crash,
        switch_crash=args.switch_crash,
    )
    report = check_engine(engine, config)
    if getattr(args, "json", False):
        payload = json.loads(report.to_json())
        payload["topology"] = topo.name
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"check {args.service} on {topo.name}:")
        print(report.format_text(topo))
    return report.exit_code


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.net.chaos import (
        CONTROL_PROFILES,
        SWITCH_PROFILES,
        ChaosConfig,
        check_outage_liveness,
        replay_run,
        run_campaign,
    )

    if args.replay is not None:
        if args.run is None:
            raise SystemExit("--replay needs --run <index>")
        with open(args.replay) as handle:
            report_dict = json.load(handle)
        try:
            record, mismatches = replay_run(report_dict, args.run)
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        if mismatches:
            print(f"replay DIVERGED from {args.replay} run {args.run}:")
            for line in mismatches:
                print(f"  {line}")
            return 1
        print(f"replay of {args.replay} run {args.run} matched the record")
        return 0

    profiles = tuple(args.profiles.split(","))
    if args.control:
        profiles = CONTROL_PROFILES
    if args.switch:
        profiles = SWITCH_PROFILES
    config = ChaosConfig(
        runs=args.runs,
        seed=args.seed,
        services=tuple(args.services.split(",")),
        topologies=tuple(args.topologies.split(",")),
        profiles=profiles,
        max_attempts=args.max_attempts,
    )
    try:
        config.validate()
    except ValueError as exc:
        raise SystemExit(str(exc))
    report = run_campaign(config)
    if args.control:
        report.outage_liveness = {
            topology: check_outage_liveness(config.seed, topology)
            for topology in config.topologies
        }
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json() + "\n")
    if getattr(args, "json", False):
        print(report.to_json())
    else:
        print(report.format_summary())
        if args.json_out:
            print(f"report written to {args.json_out}")
    return 0 if report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    runtime, network = _runtime(args)
    outcome = runtime.snapshot(args.root)
    print(f"traversal trace of a snapshot from node {args.root} "
          f"({outcome.result.in_band_messages} hops):")
    print(network.trace.format_hops(limit=args.limit))
    return 0 if outcome.ok else 1


def cmd_rules(args: argparse.Namespace) -> int:
    from repro.core.engine import CompiledEngine, make_engine

    services = _service_registry()
    if args.service not in services:
        raise SystemExit(f"unknown service; pick from {sorted(services)}")
    topo = build_topology(args)
    network = Network(topo)
    engine = make_engine(network, services[args.service](), "compiled")
    assert isinstance(engine, CompiledEngine)
    engine.install()
    print(
        f"{args.service} on {topo.name}: "
        f"{engine.total_rules()} rules, {engine.total_groups()} groups "
        f"across {topo.num_nodes} switches"
    )
    if args.dump is not None:
        print(engine.switches[args.dump].describe())
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="smartsouth",
        description="SmartSouth: in-band OpenFlow data-plane functions "
        "(HotNets 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--topology", default="erdos_renyi")
        p.add_argument("--file", default=None,
                       help="load the topology from an edge-list file instead")
        p.add_argument("--nodes", type=int, default=20)
        p.add_argument("--p", type=float, default=0.2)
        p.add_argument("--m", type=int, default=2)
        p.add_argument("--rows", type=int, default=4)
        p.add_argument("--cols", type=int, default=4)
        p.add_argument("--depth", type=int, default=3)
        p.add_argument("--k", type=int, default=4)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--root", type=int, default=0)
        p.add_argument("--mode", choices=("interpreted", "compiled"), default="compiled")
        p.add_argument(
            "--fail", action="append", metavar="U-V",
            help="fail the link between nodes U and V (repeatable)",
        )

    p = sub.add_parser("snapshot", help="collect the live topology in-band")
    common(p)
    p.add_argument(
        "--chunk", type=int, default=None,
        help="split the snapshot into packets of at most this many records",
    )
    p.set_defaults(fn=cmd_snapshot)

    p = sub.add_parser("loadaudit", help="infer per-link loads from counters")
    common(p)
    p.add_argument("--moduli", default="5,7,11")
    p.add_argument("--max-load", type=int, default=300, dest="max_load")
    p.set_defaults(fn=cmd_loadaudit)

    p = sub.add_parser("critical", help="find all critical (articulation) nodes")
    common(p)
    p.set_defaults(fn=cmd_critical)

    p = sub.add_parser("anycast", help="deliver to any group member")
    common(p)
    p.add_argument("--members", default="1", help="comma-separated node ids")
    p.set_defaults(fn=cmd_anycast)

    p = sub.add_parser("priocast", help="deliver to the best group member")
    common(p)
    p.add_argument("--members", default="1:10", help="node:prio,node:prio,...")
    p.set_defaults(fn=cmd_priocast)

    p = sub.add_parser("blackhole", help="detect a silent packet-dropping link")
    common(p)
    p.add_argument("--edge", type=int, default=None, help="edge id to blackhole")
    p.add_argument("--algorithm", choices=("smart", "ttl"), default="smart")
    p.set_defaults(fn=cmd_blackhole)

    p = sub.add_parser("table2", help="print the Table 2 complexity bounds")
    common(p)
    p.set_defaults(fn=cmd_table2)

    p = sub.add_parser("rules", help="compiled rule/group counts per service")
    common(p)
    p.add_argument("--service", default="snapshot")
    p.add_argument("--dump", type=int, default=None, help="dump one switch")
    p.set_defaults(fn=cmd_rules)

    p = sub.add_parser("verify", help="statically verify a compiled service")
    common(p)
    p.add_argument("--service", default="snapshot")
    p.add_argument("--json", action="store_true",
                   help="emit per-switch findings as JSON")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "lint",
        help="symbolic lint: dead/shadow rules, coverage, sweep proof",
    )
    common(p)
    p.add_argument("--service", default="snapshot")
    p.add_argument("--json", action="store_true",
                   help="emit findings as JSON")
    p.add_argument(
        "--disable", action="append", metavar="RULE",
        help="disable a lint rule id, e.g. SS001 (repeatable)",
    )
    p.add_argument(
        "--max-states", type=int, default=None, dest="max_states",
        help="symbolic state budget per network walk",
    )
    p.add_argument(
        "--roots", default=None,
        help="comma-separated roots to walk from (default: every node)",
    )
    p.set_defaults(fn=cmd_lint)

    def add_sanitizer_flags(p, baseline_name: str) -> None:
        """The flags sancheck and shardcheck share."""
        p.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
        p.add_argument(
            "--format", choices=("text", "github"), default="text",
            help="output format: plain text or GitHub workflow "
            "annotations (::error file=…)",
        )
        p.add_argument(
            "--root", action="append", metavar="PATH",
            help="directory or file to scan (repeatable; default: the "
            "repro package). Findings are keyed relative to each "
            "root's parent, so baselines stay stable.",
        )
        p.add_argument(
            "--baseline", default=None,
            help=f"baseline file (default: nearest {baseline_name} "
            "above the first scan root)",
        )
        p.add_argument(
            "--no-baseline", action="store_true", dest="no_baseline",
            help="ignore any baseline: report every finding as new",
        )
        p.add_argument(
            "--write-baseline", action="store_true", dest="write_baseline",
            help="write current unsuppressed findings as the new baseline",
        )
        p.add_argument(
            "--prune-baseline", action="store_true", dest="prune_baseline",
            help="drop baseline entries no current finding matches "
            "(the ratchet: fixed sites stay fixed)",
        )
        p.add_argument(
            "--fail-on-stale", action="store_true", dest="fail_on_stale",
            help="exit 1 when the baseline has stale entries (CI keeps "
            "the baseline shrinking)",
        )
        p.add_argument(
            "--show-silenced", action="store_true", dest="show_silenced",
            help="also list suppressed and baselined findings",
        )
        p.add_argument(
            "--disable", action="append", metavar="RULE",
            help="disable a sanitizer rule id, e.g. DET005 (repeatable)",
        )

    p = sub.add_parser(
        "sancheck",
        help="determinism & shared-state sanitizer over the repro source",
    )
    add_sanitizer_flags(p, "sancheck-baseline.json")
    p.add_argument(
        "--double-run", action="store_true", dest="double_run",
        help="also run the PYTHONHASHSEED double-run gate over the "
        "golden scenario matrix (two subprocesses)",
    )
    p.add_argument(
        "--interprocedural", action="store_true", dest="interprocedural",
        help="also run the interprocedural shardcheck pass (its own "
        "baseline; exit 1 if either pass fails)",
    )
    p.set_defaults(fn=cmd_sancheck)

    p = sub.add_parser(
        "shardcheck",
        help="interprocedural effect & ownership analyzer (the "
        "multi-process sharding contract)",
    )
    add_sanitizer_flags(p, "shardcheck-baseline.json")
    p.add_argument(
        "--effects", default=None, metavar="PATH",
        help="committed effect-summary file (default: nearest "
        "shardcheck-effects.json above the first scan root)",
    )
    p.add_argument(
        "--no-effects", action="store_true", dest="no_effects",
        help="skip the committed effect summary (disables EFF003 drift)",
    )
    p.add_argument(
        "--write-effects", action="store_true", dest="write_effects",
        help="write the computed per-public-API effect summary as the "
        "new declared contract",
    )
    p.add_argument(
        "--min-resolution", type=float, default=None, dest="min_resolution",
        metavar="RATE",
        help="exit 1 if the call-graph resolves fewer than RATE "
        "(e.g. 0.9) of intra-package call sites",
    )
    p.set_defaults(fn=cmd_shardcheck)

    p = sub.add_parser(
        "check",
        help="stateful model check: failure interleavings, counterexamples",
    )
    common(p)
    p.add_argument("--service", default="snapshot")
    p.add_argument("--json", action="store_true",
                   help="emit counterexamples as JSON")
    p.add_argument(
        "--max-failures", type=int, default=1, dest="max_failures",
        help="link-failure budget per run (blackhole services: number of "
        "simultaneous blackholed links to enumerate)",
    )
    p.add_argument(
        "--max-triggers", type=int, default=1, dest="max_triggers",
        help="concurrent copies of the first trigger to interleave",
    )
    p.add_argument(
        "--max-depth", type=int, default=None, dest="depth_limit",
        help="bound the exploration depth (default: run to quiescence)",
    )
    p.add_argument(
        "--max-states", type=int, default=None, dest="max_states",
        help="global-state budget per scenario",
    )
    p.add_argument(
        "--disable", action="append", metavar="INV",
        help="disable an invariant id, e.g. MC004 (repeatable)",
    )
    p.add_argument(
        "--roots", default=None,
        help="comma-separated roots to check from (default: 0)",
    )
    p.add_argument(
        "--crash", action="store_true",
        help="also explore controller crash/recovery scenarios (MC010: "
        "no stale epoch may be accepted across the resync boundary)",
    )
    p.add_argument(
        "--switch-crash", action="store_true", dest="switch_crash",
        help="also explore switch crash/reboot scenarios (MC011: a "
        "crashed switch may under-claim, never fabricate a result)",
    )
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "chaos",
        help="seeded fault campaign over the supervised runtime",
    )
    p.add_argument("--runs", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--services", default=",".join(
            ("snapshot", "anycast", "blackhole", "critical")
        ),
        help="comma-separated services to exercise",
    )
    p.add_argument(
        "--topologies", default="torus3x3,complete5",
        help="comma-separated topology names",
    )
    p.add_argument(
        "--profiles", default="lossy,partition,blackhole",
        help="comma-separated fault profiles",
    )
    p.add_argument(
        "--control", action="store_true",
        help="control-plane campaign: ctrl-* profiles plus the "
             "full-outage liveness preflight (overrides --profiles)",
    )
    p.add_argument(
        "--switch", action="store_true",
        help="switch-plane campaign: sw-crash/sw-flap/table-pressure "
             "profiles with the switch-recovery oracle (overrides "
             "--profiles)",
    )
    p.add_argument(
        "--max-attempts", type=int, default=6, dest="max_attempts",
        help="supervisor retry budget per call",
    )
    p.add_argument(
        "--replay", default=None, metavar="REPORT.json",
        help="re-run one recorded run from a campaign report and "
             "byte-compare it against the record (needs --run)",
    )
    p.add_argument(
        "--run", type=int, default=None,
        help="run_id to replay from the --replay report",
    )
    p.add_argument("--json", action="store_true",
                   help="print the full campaign report as JSON")
    p.add_argument(
        "--json-out", default=None, dest="json_out",
        help="also write the campaign report JSON to this file",
    )
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("trace", help="print a traversal's hop-by-hop trace")
    common(p)
    p.add_argument("--limit", type=int, default=40)
    p.set_defaults(fn=cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
