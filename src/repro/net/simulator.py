"""Discrete-event network simulator.

The simulator moves packets between *node handlers*.  A handler is any
callable ``(packet, in_port) -> list[PacketOut]`` — in practice either an
OpenFlow :class:`~repro.openflow.switch.Switch` pipeline (compiled engine) or
a SmartSouth template interpreter (reference engine).  Everything observable
is appended to a :class:`~repro.net.trace.Trace`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable

from repro.core.determinism import seeded_rng
from repro.net.link import Direction, Link
from repro.net.topology import Topology
from repro.net.trace import EventKind, Trace, TraceEvent
from repro.openflow.packet import (
    CONTROLLER_PORT,
    LOCAL_PORT,
    NO_PORT,
    Packet,
    is_physical_port,
)
from repro.openflow.switch import PacketOut

#: A node's packet-processing function.
Handler = Callable[[Packet, int], list[PacketOut]]
#: Controller upcall: (node, packet) for packets sent to CONTROLLER_PORT.
ControllerSink = Callable[[int, Packet], None]
#: Local delivery upcall: (node, packet) for packets sent to LOCAL_PORT.
DeliverySink = Callable[[int, Packet], None]


class SimulationLimitError(RuntimeError):
    """The event budget was exhausted (almost certainly a forwarding loop)."""


class Simulator:
    """A minimal discrete-event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``now + delay``."""
        if delay < 0:
            raise ValueError("negative delay")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), fn))

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Run *fn* at absolute *time* (>= now)."""
        if time < self.now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (time, next(self._seq), fn))

    def run(self, until: float | None = None, max_events: int = 2_000_000) -> int:
        """Process events in time order; returns the number processed."""
        processed = 0
        while self._queue:
            time, _seq, fn = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            fn()
            processed += 1
            if processed > max_events:
                raise SimulationLimitError(
                    f"exceeded {max_events} events (forwarding loop?)"
                )
        return processed

    @property
    def pending(self) -> int:
        return len(self._queue)


class Network:
    """A topology with runtime link state, handlers, and the event loop.

    ``fast_path`` is the network-wide engine default: compiled engines built
    on this network run their switches on the indexed fast path
    (:mod:`repro.openflow.fastpath`) unless overridden per engine.  It does
    not change simulator semantics — both switch engines are observably
    identical — only the speed of the per-packet pipeline.
    """

    def __init__(
        self, topology: Topology, seed: int = 0, fast_path: bool = False
    ) -> None:
        self.topology = topology
        self.fast_path = fast_path
        self.links: list[Link] = [Link(edge) for edge in topology.edges()]
        self.sim = Simulator()
        self.trace = Trace()
        self.rng = seeded_rng(seed)
        self._handlers: dict[int, Handler] = {}
        self._controller_sink: ControllerSink | None = None
        self._delivery_sink: DeliverySink | None = None
        #: Number of pipeline executions so far (one per packet arrival).
        #: This is the model checker's logical clock: scheduling state
        #: changes "after N packet steps" makes replays deterministic in a
        #: way wall-clock scheduling is not.
        self.packet_steps = 0
        self._step_hooks: dict[int, list[Callable[[], None]]] = {}

    # ------------------------------------------------------------------ #
    # Wiring                                                             #
    # ------------------------------------------------------------------ #

    def set_handler(self, node: int, handler: Handler) -> None:
        self._handlers[node] = handler

    def set_controller_sink(self, sink: ControllerSink | None) -> None:
        self._controller_sink = sink

    @property
    def controller_sink(self) -> ControllerSink | None:
        """The current packet-in sink (so a channel being detached can tell
        whether it still owns the sink before releasing it)."""
        return self._controller_sink

    def set_delivery_sink(self, sink: DeliverySink | None) -> None:
        self._delivery_sink = sink

    # ------------------------------------------------------------------ #
    # Link state                                                         #
    # ------------------------------------------------------------------ #

    def link(self, edge_id: int) -> Link:
        return self.links[edge_id]

    def link_between(self, u: int, v: int) -> Link:
        edge = self.topology.find_edge(u, v)
        if edge is None:
            raise ValueError(f"no edge between {u} and {v}")
        return self.links[edge.edge_id]

    def fail_link(self, u: int, v: int) -> Link:
        """Visibly fail the (first) link between *u* and *v*."""
        link = self.link_between(u, v)
        link.up = False
        return link

    def fail_edges(self, edge_ids: Iterable[int]) -> None:
        for edge_id in edge_ids:
            self.links[edge_id].up = False

    def port_live(self, node: int, port: int) -> bool:
        """Is (node, port) attached to an up link?  Blackholes look live."""
        edge = self.topology.port_edge(node, port)
        if edge is None:
            return False
        return self.links[edge.edge_id].up

    def liveness_fn(self, node: int) -> Callable[[int], bool]:
        """A per-node port-liveness oracle, for switch fast-failover."""
        return lambda port: self.port_live(node, port)

    def live_port_pairs(self) -> set[frozenset[tuple[int, int]]]:
        """Up links as {(node, port), (node, port)} pairs (snapshot oracle)."""
        return {
            frozenset(
                (
                    (link.edge.a.node, link.edge.a.port),
                    (link.edge.b.node, link.edge.b.port),
                )
            )
            for link in self.links
            if link.up
        }

    def max_link_delay(self) -> float:
        """Worst-case single-crossing delay (base + jitter), for watchdog
        deadline sizing."""
        return max((link.delay + link.jitter for link in self.links), default=1.0)

    # ------------------------------------------------------------------ #
    # Packet motion                                                      #
    # ------------------------------------------------------------------ #

    def inject(
        self,
        node: int,
        packet: Packet,
        in_port: int = LOCAL_PORT,
        from_controller: bool = False,
    ) -> None:
        """Hand *packet* to *node* as if it arrived on *in_port*.

        ``from_controller=True`` records the paper's out-of-band packet-out.
        """
        if from_controller:
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.PACKET_OUT, node, packet.packet_id)
            )
        self.sim.schedule(0.0, lambda: self._arrive(node, packet, in_port))

    def transmit(
        self,
        node: int,
        port: int,
        packet: Packet,
        from_controller: bool = False,
    ) -> None:
        """Emit *packet* from *node* on *port* without pipeline processing.

        Models an OpenFlow packet-out whose action list is ``output:port``
        (used by controller-driven baselines such as LLDP discovery).
        """
        if from_controller:
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.PACKET_OUT, node, packet.packet_id)
            )
        self.sim.schedule(0.0, lambda: self._emit(node, port, packet, LOCAL_PORT))

    def at_packet_step(self, step: int, fn: Callable[[], None]) -> None:
        """Run *fn* once the *step*-th packet arrival has been processed.

        Steps count processed arrivals (pipeline executions), so "fail this
        link after 3 steps" means the same thing in the simulator and in the
        model checker regardless of link delays.  A hook registered for a
        step that has already passed fires immediately.
        """
        if step < 0:
            raise ValueError("negative packet step")
        if step <= self.packet_steps:
            fn()
            return
        self._step_hooks.setdefault(step, []).append(fn)

    def _arrive(self, node: int, packet: Packet, in_port: int) -> None:
        handler = self._handlers.get(node)
        if handler is None:
            raise RuntimeError(f"no handler installed at node {node}")
        outputs = handler(packet, in_port)
        if not outputs:
            self.trace.record(
                TraceEvent(
                    self.sim.now, EventKind.PIPELINE_DROP, node, packet.packet_id
                )
            )
        else:
            for out in outputs:
                self._emit(node, out.port, out.packet, in_port)
        # The step hooks fire *after* this arrival's outputs were emitted:
        # a packet already on the wire has crossed its link, matching the
        # checker's atomic-step semantics.
        self.packet_steps += 1
        for fn in self._step_hooks.pop(self.packet_steps, ()):
            fn()

    def _emit(self, node: int, port: int, packet: Packet, in_port: int) -> None:
        if port == CONTROLLER_PORT:
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.PACKET_IN, node, packet.packet_id)
            )
            if self._controller_sink is not None:
                self._controller_sink(node, packet)
            return
        if port == LOCAL_PORT:
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.DELIVERED, node, packet.packet_id)
            )
            if self._delivery_sink is not None:
                self._delivery_sink(node, packet)
            return
        if port == NO_PORT or not is_physical_port(port):
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.DEAD_PORT, node, packet.packet_id)
            )
            return
        edge = self.topology.port_edge(node, port)
        if edge is None:
            self.trace.record(
                TraceEvent(
                    self.sim.now, EventKind.DEAD_PORT, node, packet.packet_id,
                    (node, port),
                )
            )
            return
        link = self.links[edge.edge_id]
        far = edge.other(node)
        detail = (node, port, far.node, far.port)
        if not link.up:
            self.trace.record(
                TraceEvent(
                    self.sim.now, EventKind.DEAD_PORT, node, packet.packet_id, detail
                )
            )
            return
        direction = link.direction_from(node)
        if self._drops(link, direction):
            link.dropped[direction] += 1
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.DROP, node, packet.packet_id, detail)
            )
            return
        link.delivered[direction] += 1
        packet.hops += 1
        self.trace.record(
            TraceEvent(self.sim.now, EventKind.HOP, node, packet.packet_id, detail)
        )
        self.sim.schedule(
            self._crossing_delay(link), lambda: self._arrive(far.node, packet, far.port)
        )
        # Duplication: the link spawns a second, independent copy (its own
        # packet id, so traces and duplicate-suppression can tell them
        # apart).  The copy crosses with its own delay draw.
        dup = link.dup_prob[direction]
        if dup > 0.0 and self.rng.random() < dup:
            twin = packet.copy()
            link.delivered[direction] += 1
            twin.hops += 1
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.HOP, node, twin.packet_id, detail)
            )
            self.sim.schedule(
                self._crossing_delay(link),
                lambda: self._arrive(far.node, twin, far.port),
            )

    def _crossing_delay(self, link: Link) -> float:
        """One crossing's delay: base + seeded jitter (reordering knob)."""
        if link.jitter <= 0.0:
            return link.delay
        return link.delay + self.rng.random() * link.jitter

    def _drops(self, link: Link, direction: Direction) -> bool:
        probability = link.drop_prob[direction]
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.rng.random() < probability

    # ------------------------------------------------------------------ #
    # Running                                                            #
    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None, max_events: int = 2_000_000) -> int:
        """Drain the event queue (optionally up to simulated time *until*)."""
        return self.sim.run(until=until, max_events=max_events)
