"""Discrete-event network simulator.

The simulator moves packets between *node handlers*.  A handler is any
callable ``(packet, in_port) -> list[PacketOut]`` — in practice either an
OpenFlow :class:`~repro.openflow.switch.Switch` pipeline (compiled engine) or
a SmartSouth template interpreter (reference engine).  Everything observable
is appended to a :class:`~repro.net.trace.Trace`.

Indexed event queue
-------------------

Events are kept in per-time buckets (a heap of distinct times plus a
``time -> [event, ...]`` index) instead of one heap entry per event.  Two
event shapes live in a bucket:

* a callable — an opaque timer (``schedule`` / ``at``), run as before;
* a ``(node, packet, in_port)`` tuple — a *typed arrival*, dispatched
  through the network's arrival handler.

Typed arrivals are what makes batching possible: in batch mode the drain
loop hands each maximal run of consecutive same-time arrivals to the
network in one call, which regroups them by switch and feeds whole batches through the
compiled fast path (see docs/FASTPATH.md).  Scalar mode dispatches the very
same tuples one at a time, so both modes observe an identical event order:
buckets drain in ascending time, events within a bucket in insertion order
— exactly the ``(time, seq)`` order of the old one-entry-per-event heap.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

from repro.core.determinism import seeded_rng
from repro.net.link import Direction, Link
from repro.net.topology import Topology
from repro.net.trace import EventKind, Trace, TraceEvent
from repro.openflow.packet import (
    CONTROLLER_PORT,
    LOCAL_PORT,
    NO_PORT,
    Packet,
    is_physical_port,
)
from repro.openflow.switch import PacketOut

#: A node's packet-processing function.
Handler = Callable[[Packet, int], list[PacketOut]]
#: Per-packet completion callback handed to batch handlers:
#: ``deliver(index, outputs)`` with outputs as raw ``(port, packet)`` pairs.
DeliverFn = Callable[[int, list], None]
#: A node's batched packet-processing function:
#: ``handler(items, deliver)`` with items as ``(packet, in_port)`` pairs,
#: calling ``deliver`` once per item, in item order.
BatchHandler = Callable[[list, DeliverFn], None]
#: Controller upcall: (node, packet) for packets sent to CONTROLLER_PORT.
ControllerSink = Callable[[int, Packet], None]
#: Local delivery upcall: (node, packet) for packets sent to LOCAL_PORT.
DeliverySink = Callable[[int, Packet], None]


class SimulationLimitError(RuntimeError):
    """The event budget was exhausted (almost certainly a forwarding loop)."""


class Simulator:
    """A minimal discrete-event loop over an indexed (per-time) queue."""

    def __init__(self) -> None:
        self.now = 0.0
        #: Heap of *distinct* bucket times.
        self._times: list[float] = []
        #: time -> events in insertion order (callables and arrival tuples).
        self._buckets: dict[float, list] = {}
        self._pending = 0
        #: Scalar arrival dispatch: ``fn(node, packet, in_port)``.
        self.arrival_handler: Callable[[int, Packet, int], None] | None = None
        #: Batch arrival dispatch: ``fn(run)`` over a list of arrival tuples.
        self.run_handler: Callable[[list], None] | None = None

    def _push(self, time: float, event) -> None:
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self._pending += 1

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``now + delay``."""
        if delay < 0:
            raise ValueError("negative delay")
        self._push(self.now + delay, fn)

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Run *fn* at absolute *time* (>= now)."""
        if time < self.now:
            raise ValueError("cannot schedule in the past")
        self._push(time, fn)

    def schedule_arrival(
        self, delay: float, node: int, packet: Packet, in_port: int
    ) -> None:
        """Schedule a typed packet arrival at ``now + delay``.

        Arrivals are stored as plain tuples (no closure per packet) and
        dispatched through :attr:`arrival_handler` — or, in batch mode,
        grouped into runs and handed to :attr:`run_handler`.
        """
        if delay < 0:
            raise ValueError("negative delay")
        self._push(self.now + delay, (node, packet, in_port))

    def run(
        self,
        until: float | None = None,
        max_events: int = 2_000_000,
        batch: bool = False,
    ) -> int:
        """Process events in time order; returns the number processed.

        Every event — timer callback or packet arrival — counts exactly one
        against *max_events*, in both modes: a batched run of *n* arrivals
        is charged *n*, and run collection is clamped to the remaining
        budget so the limit error fires after the same packet as in scalar
        mode.
        """
        processed = 0
        times = self._times
        buckets = self._buckets
        arrive = self.arrival_handler
        run_handler = self.run_handler if batch else None
        while times:
            time = times[0]
            if until is not None and time > until:
                break
            heapq.heappop(times)
            events = buckets[time]
            self.now = time
            i = 0
            try:
                # Index-based drain: same-time events appended while this
                # bucket is live are picked up in insertion order.
                while i < len(events):
                    event = events[i]
                    if type(event) is tuple:
                        if run_handler is not None:
                            # Collect the maximal run of consecutive
                            # arrivals, clamped so the budget check below
                            # trips at the exact same packet as scalar mode.
                            j = i + 1
                            end = i + (max_events - processed) + 1
                            while (
                                j < len(events)
                                and j < end
                                and type(events[j]) is tuple
                            ):
                                j += 1
                            run = events[i:j]
                            i = j
                            self._pending -= len(run)
                            processed += len(run)
                            try:
                                run_handler(run)
                            except BaseException:
                                # The handler trims consumed arrivals off
                                # *run*; whatever is left goes back in
                                # front of the bucket's remaining events.
                                if run:
                                    self._pending += len(run)
                                    events[i:i] = run
                                    i += len(run)  # keep [:i] = consumed
                                raise
                        else:
                            i += 1
                            self._pending -= 1
                            processed += 1
                            arrive(event[0], event[1], event[2])
                    else:
                        i += 1
                        self._pending -= 1
                        processed += 1
                        event()
                    if processed > max_events:
                        raise SimulationLimitError(
                            f"exceeded {max_events} events (forwarding loop?)"
                        )
            finally:
                if i < len(events):
                    # Interrupted mid-bucket: keep the unprocessed tail so
                    # a caller that catches the error sees a sane queue.
                    del events[:i]
                    heapq.heappush(times, time)
                else:
                    del buckets[time]
        return processed

    @property
    def pending(self) -> int:
        return self._pending


class Network:
    """A topology with runtime link state, handlers, and the event loop.

    ``fast_path`` is the network-wide engine default: compiled engines built
    on this network run their switches on the indexed fast path
    (:mod:`repro.openflow.fastpath`) unless overridden per engine.  It does
    not change simulator semantics — both switch engines are observably
    identical — only the speed of the per-packet pipeline.

    ``batch`` selects the batched drain mode: same-time arrival runs are
    regrouped by switch and pushed through the batch pipeline
    (:meth:`repro.openflow.switch.Switch.process_batch`) in one call.  Batch
    mode is byte-identical to scalar mode — packets are still executed in
    arrival order, one at a time, with per-packet counters, RNG draws, and
    packet-id allocation in the exact scalar sequence; only dispatch and
    lookup work is amortized.  Segments fall back to the scalar path
    whenever a node has no batch handler, a segment is a single packet, or
    a non-passive sink is attached (a controller channel that reprograms
    switches synchronously).
    """

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        fast_path: bool = False,
        batch: bool = False,
    ) -> None:
        self.topology = topology
        self.fast_path = fast_path
        self.batch = batch
        self.links: list[Link] = [Link(edge) for edge in topology.edges()]
        self.sim = Simulator()
        self.sim.arrival_handler = self._arrive
        self.sim.run_handler = self._arrive_run
        self.trace = Trace()
        self.rng = seeded_rng(seed)
        self._handlers: dict[int, Handler] = {}
        self._batch_handlers: dict[int, BatchHandler] = {}
        self._controller_sink: ControllerSink | None = None
        self._controller_passive = False
        self._delivery_sink: DeliverySink | None = None
        self._delivery_passive = False
        #: (node, port) -> (link, far_node, far_port, direction, detail) or
        #: None for unwired ports; topology wiring is frozen at construction
        #: so this cache never invalidates.  Batch emission only.
        self._routes: dict[tuple[int, int], tuple | None] = {}
        #: Number of pipeline executions so far (one per packet arrival).
        #: This is the model checker's logical clock: scheduling state
        #: changes "after N packet steps" makes replays deterministic in a
        #: way wall-clock scheduling is not.
        self.packet_steps = 0
        self._step_hooks: dict[int, list[Callable[[], None]]] = {}

    # ------------------------------------------------------------------ #
    # Wiring                                                             #
    # ------------------------------------------------------------------ #

    def set_handler(self, node: int, handler: Handler) -> None:
        """Install *node*'s scalar pipeline; drops any stale batch handler
        (an engine that supports batching re-registers it right after)."""
        self._handlers[node] = handler
        self._batch_handlers.pop(node, None)

    def set_batch_handler(self, node: int, handler: BatchHandler) -> None:
        """Install *node*'s batched pipeline (see :data:`BatchHandler`).

        Must be observably equivalent to the node's scalar handler; the
        scalar handler stays installed as the fallback and the reference
        semantics.
        """
        self._batch_handlers[node] = handler

    def set_controller_sink(
        self, sink: ControllerSink | None, passive: bool = False
    ) -> None:
        """Install the packet-in sink.

        ``passive=True`` declares the sink a pure collector (it appends the
        upcall somewhere and never reprograms switches or re-enters the
        simulator); only then may batched segments run while it is
        attached.  A control channel is *not* passive — its handler chain
        installs flow entries synchronously — so attaching one degrades
        batch mode to the per-packet scalar path.
        """
        self._controller_sink = sink
        self._controller_passive = passive

    @property
    def controller_sink(self) -> ControllerSink | None:
        """The current packet-in sink (so a channel being detached can tell
        whether it still owns the sink before releasing it)."""
        return self._controller_sink

    def set_delivery_sink(
        self, sink: DeliverySink | None, passive: bool = False
    ) -> None:
        """Install the local-delivery sink (``passive`` as for the
        controller sink)."""
        self._delivery_sink = sink
        self._delivery_passive = passive

    def _sinks_passive(self) -> bool:
        return (self._controller_sink is None or self._controller_passive) and (
            self._delivery_sink is None or self._delivery_passive
        )

    # ------------------------------------------------------------------ #
    # Link state                                                         #
    # ------------------------------------------------------------------ #

    def link(self, edge_id: int) -> Link:
        return self.links[edge_id]

    def link_between(self, u: int, v: int) -> Link:
        edge = self.topology.find_edge(u, v)
        if edge is None:
            raise ValueError(f"no edge between {u} and {v}")
        return self.links[edge.edge_id]

    def fail_link(self, u: int, v: int) -> Link:
        """Visibly fail the (first) link between *u* and *v*."""
        link = self.link_between(u, v)
        link.up = False
        return link

    def fail_edges(self, edge_ids: Iterable[int]) -> None:
        for edge_id in edge_ids:
            self.links[edge_id].up = False

    def port_live(self, node: int, port: int) -> bool:
        """Is (node, port) attached to an up link?  Blackholes look live."""
        edge = self.topology.port_edge(node, port)
        if edge is None:
            return False
        return self.links[edge.edge_id].up

    def liveness_fn(self, node: int) -> Callable[[int], bool]:
        """A per-node port-liveness oracle, for switch fast-failover."""
        return lambda port: self.port_live(node, port)

    def live_port_pairs(self) -> set[frozenset[tuple[int, int]]]:
        """Up links as {(node, port), (node, port)} pairs (snapshot oracle)."""
        return {
            frozenset(
                (
                    (link.edge.a.node, link.edge.a.port),
                    (link.edge.b.node, link.edge.b.port),
                )
            )
            for link in self.links
            if link.up
        }

    def max_link_delay(self) -> float:
        """Worst-case single-crossing delay (base + jitter), for watchdog
        deadline sizing."""
        return max((link.delay + link.jitter for link in self.links), default=1.0)

    # ------------------------------------------------------------------ #
    # Packet motion                                                      #
    # ------------------------------------------------------------------ #

    def inject(
        self,
        node: int,
        packet: Packet,
        in_port: int = LOCAL_PORT,
        from_controller: bool = False,
    ) -> None:
        """Hand *packet* to *node* as if it arrived on *in_port*.

        ``from_controller=True`` records the paper's out-of-band packet-out.
        """
        if from_controller:
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.PACKET_OUT, node, packet.packet_id)
            )
        self.sim.schedule_arrival(0.0, node, packet, in_port)

    def transmit(
        self,
        node: int,
        port: int,
        packet: Packet,
        from_controller: bool = False,
    ) -> None:
        """Emit *packet* from *node* on *port* without pipeline processing.

        Models an OpenFlow packet-out whose action list is ``output:port``
        (used by controller-driven baselines such as LLDP discovery).
        """
        if from_controller:
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.PACKET_OUT, node, packet.packet_id)
            )
        self.sim.schedule(0.0, lambda: self._emit(node, port, packet, LOCAL_PORT))

    def at_packet_step(self, step: int, fn: Callable[[], None]) -> None:
        """Run *fn* once the *step*-th packet arrival has been processed.

        Steps count processed arrivals (pipeline executions), so "fail this
        link after 3 steps" means the same thing in the simulator and in the
        model checker regardless of link delays.  A hook registered for a
        step that has already passed fires immediately.
        """
        if step < 0:
            raise ValueError("negative packet step")
        if step <= self.packet_steps:
            fn()
            return
        self._step_hooks.setdefault(step, []).append(fn)

    def _arrive(self, node: int, packet: Packet, in_port: int) -> None:
        handler = self._handlers.get(node)
        if handler is None:
            raise RuntimeError(f"no handler installed at node {node}")
        outputs = handler(packet, in_port)
        if not outputs:
            self.trace.record(
                TraceEvent(
                    self.sim.now, EventKind.PIPELINE_DROP, node, packet.packet_id
                )
            )
        else:
            for out in outputs:
                self._emit(node, out.port, out.packet, in_port)
        # The step hooks fire *after* this arrival's outputs were emitted:
        # a packet already on the wire has crossed its link, matching the
        # checker's atomic-step semantics.
        self.packet_steps += 1
        for fn in self._step_hooks.pop(self.packet_steps, ()):
            fn()

    def _arrive_run(self, run: list) -> None:
        """Batched dispatch of one same-time run of arrival tuples.

        The run is segmented into maximal same-node stretches.  A segment
        goes through the node's batch handler when one is installed, the
        segment has at least two packets, and the attached sinks are
        passive; otherwise it falls back to per-packet :meth:`_arrive`.
        Either way packets complete strictly in run order, so all
        observable state (traces, counters, cursors, RNG draws, packet-id
        allocation) advances in the scalar sequence.

        On an error, the consumed prefix — including the packet whose
        processing raised — is trimmed off *run* in place, so the simulator
        can requeue the untouched tail exactly where it was.
        """
        watermark = 0  # arrivals consumed if an error surfaces now
        try:
            pos = 0
            n = len(run)
            while pos < n:
                node = run[pos][0]
                end = pos + 1
                while end < n and run[end][0] == node:
                    end += 1
                handler = self._batch_handlers.get(node)
                if handler is None or end - pos == 1 or not self._sinks_passive():
                    while pos < end:
                        event = run[pos]
                        pos += 1
                        watermark = pos
                        self._arrive(node, event[1], event[2])
                else:
                    self._segment_watermark = pos + 1
                    try:
                        pos = self._run_segment(node, handler, run, pos, end)
                    except BaseException:
                        watermark = self._segment_watermark
                        raise
                    watermark = pos
        except BaseException:
            del run[:watermark]
            raise

    def _run_segment(
        self, node: int, handler: BatchHandler, run: list, base: int, end: int
    ) -> int:
        """Feed arrivals ``run[base:end]`` through *node*'s batch handler.

        Emission is fused into the deliver callback — raw ``(port, packet)``
        tuples go straight onto the wire without materializing PacketOut
        records — and step hooks fire between packets exactly as in
        :meth:`_arrive`.  Returns *end*; the deliver closure keeps
        ``self._segment_watermark`` current for error accounting (see
        :meth:`_arrive_run`).
        """
        items = [(event[1], event[2]) for event in run[base:end]]
        record = self.trace.record
        emit = self._emit_batch
        hooks = self._step_hooks
        now = self.sim.now
        pipeline_drop = EventKind.PIPELINE_DROP

        def deliver(index: int, outputs: list) -> None:
            if outputs:
                for port, pkt in outputs:
                    emit(node, port, pkt)
            else:
                record(
                    TraceEvent(now, pipeline_drop, node, items[index][0].packet_id)
                )
            steps = self.packet_steps + 1
            # repro: allow[SHARD001] owner's own drain loop: scalar-order step count
            self.packet_steps = steps
            fired = hooks.pop(steps, None)
            if fired is not None:
                for fn in fired:
                    fn()
            # Error accounting: a later failure is charged to the *next*
            # packet (that is where it would surface in scalar mode).
            # repro: allow[SHARD001] owner's own drain loop: error watermark
            self._segment_watermark = min(base + index + 2, end)

        self._segment_watermark = base + 1
        handler(items, deliver)
        return end

    # Written by the deliver closure during a batched segment; read by
    # _arrive_run's error path.  Plain attribute (no per-segment cell
    # allocation on the hot path).
    _segment_watermark = 0

    def _emit_batch(self, node: int, port: int, packet: Packet) -> None:
        """Batched twin of :meth:`_emit` (identical observable behavior).

        Differences are mechanical only: the (node, port) -> far-end route
        is cached (topology wiring is immutable), and the caller passes raw
        tuples instead of PacketOut records.  Trace events, counter bumps,
        RNG draw order, and scheduling are the scalar sequence exactly.
        """
        sim = self.sim
        record = self.trace.record
        if port == CONTROLLER_PORT:
            record(TraceEvent(sim.now, EventKind.PACKET_IN, node, packet.packet_id))
            if self._controller_sink is not None:
                self._controller_sink(node, packet)
            return
        if port == LOCAL_PORT:
            record(TraceEvent(sim.now, EventKind.DELIVERED, node, packet.packet_id))
            if self._delivery_sink is not None:
                self._delivery_sink(node, packet)
            return
        if port == NO_PORT or port < 1:
            record(TraceEvent(sim.now, EventKind.DEAD_PORT, node, packet.packet_id))
            return
        key = (node, port)
        route = self._routes.get(key, False)
        if route is False:
            edge = self.topology.port_edge(node, port)
            if edge is None:
                route = None
            else:
                link = self.links[edge.edge_id]
                far = edge.other(node)
                route = (
                    link,
                    far.node,
                    far.port,
                    link.direction_from(node),
                    (node, port, far.node, far.port),
                )
            self._routes[key] = route
        if route is None:
            record(
                TraceEvent(
                    sim.now, EventKind.DEAD_PORT, node, packet.packet_id,
                    (node, port),
                )
            )
            return
        link, far_node, far_port, direction, detail = route
        if not link.up:
            record(
                TraceEvent(
                    sim.now, EventKind.DEAD_PORT, node, packet.packet_id, detail
                )
            )
            return
        rng = self.rng
        drop = link.drop_prob[direction]
        if drop > 0.0 and (drop >= 1.0 or rng.random() < drop):
            link.dropped[direction] += 1
            record(
                TraceEvent(sim.now, EventKind.DROP, node, packet.packet_id, detail)
            )
            return
        link.delivered[direction] += 1
        packet.hops += 1
        record(TraceEvent(sim.now, EventKind.HOP, node, packet.packet_id, detail))
        jitter = link.jitter
        delay = link.delay if jitter <= 0.0 else link.delay + rng.random() * jitter
        sim.schedule_arrival(delay, far_node, packet, far_port)
        dup = link.dup_prob[direction]
        if dup > 0.0 and rng.random() < dup:
            twin = packet.copy()
            link.delivered[direction] += 1
            twin.hops += 1
            record(
                TraceEvent(sim.now, EventKind.HOP, node, twin.packet_id, detail)
            )
            delay = (
                link.delay if jitter <= 0.0 else link.delay + rng.random() * jitter
            )
            sim.schedule_arrival(delay, far_node, twin, far_port)

    def _emit(self, node: int, port: int, packet: Packet, in_port: int) -> None:
        if port == CONTROLLER_PORT:
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.PACKET_IN, node, packet.packet_id)
            )
            if self._controller_sink is not None:
                self._controller_sink(node, packet)
            return
        if port == LOCAL_PORT:
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.DELIVERED, node, packet.packet_id)
            )
            if self._delivery_sink is not None:
                self._delivery_sink(node, packet)
            return
        if port == NO_PORT or not is_physical_port(port):
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.DEAD_PORT, node, packet.packet_id)
            )
            return
        edge = self.topology.port_edge(node, port)
        if edge is None:
            self.trace.record(
                TraceEvent(
                    self.sim.now, EventKind.DEAD_PORT, node, packet.packet_id,
                    (node, port),
                )
            )
            return
        link = self.links[edge.edge_id]
        far = edge.other(node)
        detail = (node, port, far.node, far.port)
        if not link.up:
            self.trace.record(
                TraceEvent(
                    self.sim.now, EventKind.DEAD_PORT, node, packet.packet_id, detail
                )
            )
            return
        direction = link.direction_from(node)
        if self._drops(link, direction):
            link.dropped[direction] += 1
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.DROP, node, packet.packet_id, detail)
            )
            return
        link.delivered[direction] += 1
        packet.hops += 1
        self.trace.record(
            TraceEvent(self.sim.now, EventKind.HOP, node, packet.packet_id, detail)
        )
        self.sim.schedule_arrival(
            self._crossing_delay(link), far.node, packet, far.port
        )
        # Duplication: the link spawns a second, independent copy (its own
        # packet id, so traces and duplicate-suppression can tell them
        # apart).  The copy crosses with its own delay draw.
        dup = link.dup_prob[direction]
        if dup > 0.0 and self.rng.random() < dup:
            twin = packet.copy()
            link.delivered[direction] += 1
            twin.hops += 1
            self.trace.record(
                TraceEvent(self.sim.now, EventKind.HOP, node, twin.packet_id, detail)
            )
            self.sim.schedule_arrival(
                self._crossing_delay(link), far.node, twin, far.port
            )

    def _crossing_delay(self, link: Link) -> float:
        """One crossing's delay: base + seeded jitter (reordering knob)."""
        if link.jitter <= 0.0:
            return link.delay
        return link.delay + self.rng.random() * link.jitter

    def _drops(self, link: Link, direction: Direction) -> bool:
        probability = link.drop_prob[direction]
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.rng.random() < probability

    # ------------------------------------------------------------------ #
    # Running                                                            #
    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None, max_events: int = 2_000_000) -> int:
        """Drain the event queue (optionally up to simulated time *until*)."""
        return self.sim.run(until=until, max_events=max_events, batch=self.batch)
