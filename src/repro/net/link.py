"""Per-link runtime state: failures, blackholes, and lossy directions.

The paper distinguishes two very different kinds of broken links:

* a **failed** link is *visibly* down — both attached ports report "not live"
  and OpenFlow fast-failover can route around it;
* a **blackhole** (silent failure, [8] in the paper) *looks* healthy — ports
  stay live — but drops packets.  Blackholes can be directional and can also
  drop only a fraction of traffic (lossy link).

:class:`Link` models both, per direction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.topology import Edge


class Direction(enum.Enum):
    """A direction over an edge, named by the originating endpoint."""

    A_TO_B = "a->b"
    B_TO_A = "b->a"

    def flipped(self) -> "Direction":
        return Direction.B_TO_A if self is Direction.A_TO_B else Direction.A_TO_B


@dataclass
class Link:
    """Runtime state of one edge."""

    edge: Edge
    #: Visibly up?  False makes both ports non-live (fast failover sees it).
    up: bool = True
    #: Per-direction silent drop probability (1.0 = drop-all blackhole).
    drop_prob: dict[Direction, float] = field(
        default_factory=lambda: {Direction.A_TO_B: 0.0, Direction.B_TO_A: 0.0}
    )
    #: Propagation delay (simulated time units).
    delay: float = 1.0
    #: Per-direction duplication probability: a crossing spawns a second,
    #: independent copy of the packet (a misbehaving link / spanning-tree
    #: transient).  Chaos-campaign knob; 0.0 everywhere by default.
    dup_prob: dict[Direction, float] = field(
        default_factory=lambda: {Direction.A_TO_B: 0.0, Direction.B_TO_A: 0.0}
    )
    #: Max extra per-crossing delay, drawn uniformly from [0, jitter] by the
    #: network's seeded RNG.  Nonzero jitter reorders packets in flight
    #: (the simulator otherwise delivers FIFO per link).
    jitter: float = 0.0
    #: Number of packets forwarded per direction (ground-truth accounting,
    #: not visible to the data plane — smart counters are the in-band view).
    delivered: dict[Direction, int] = field(
        default_factory=lambda: {Direction.A_TO_B: 0, Direction.B_TO_A: 0}
    )
    dropped: dict[Direction, int] = field(
        default_factory=lambda: {Direction.A_TO_B: 0, Direction.B_TO_A: 0}
    )

    def direction_from(self, node: int) -> Direction:
        """The direction leaving *node* over this link."""
        if node == self.edge.a.node:
            return Direction.A_TO_B
        if node == self.edge.b.node:
            return Direction.B_TO_A
        raise ValueError(f"node {node} not on edge {self.edge.edge_id}")

    def set_blackhole(self, direction: Direction | None = None) -> None:
        """Make this link a silent drop-all blackhole.

        With ``direction=None`` both directions drop (the common model in the
        paper); otherwise only the given direction drops.
        """
        if direction is None:
            self.drop_prob[Direction.A_TO_B] = 1.0
            self.drop_prob[Direction.B_TO_A] = 1.0
        else:
            self.drop_prob[direction] = 1.0

    def set_loss(self, probability: float, direction: Direction | None = None) -> None:
        """Set a per-direction (or symmetric) silent loss probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"bad loss probability {probability}")
        if direction is None:
            self.drop_prob[Direction.A_TO_B] = probability
            self.drop_prob[Direction.B_TO_A] = probability
        else:
            self.drop_prob[direction] = probability

    def set_duplication(
        self, probability: float, direction: Direction | None = None
    ) -> None:
        """Set a per-direction (or symmetric) duplication probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"bad duplication probability {probability}")
        if direction is None:
            self.dup_prob[Direction.A_TO_B] = probability
            self.dup_prob[Direction.B_TO_A] = probability
        else:
            self.dup_prob[direction] = probability

    def set_jitter(self, jitter: float) -> None:
        """Set the max extra per-crossing delay (reordering knob)."""
        if jitter < 0:
            raise ValueError(f"bad jitter {jitter}")
        self.jitter = jitter

    def is_blackhole(self) -> bool:
        """True if at least one direction silently drops everything."""
        return self.up and any(p >= 1.0 for p in self.drop_prob.values())

    def clear(self) -> None:
        """Restore the link to a healthy state (up, no loss/dup/jitter)."""
        self.up = True
        self.drop_prob[Direction.A_TO_B] = 0.0
        self.drop_prob[Direction.B_TO_A] = 0.0
        self.dup_prob[Direction.A_TO_B] = 0.0
        self.dup_prob[Direction.B_TO_A] = 0.0
        self.jitter = 0.0
