"""Seeded fault-campaign harness: does supervision actually survive chaos?

Composes the existing fault primitives — mid-traversal
:func:`~repro.net.failures.fail_edge_after_steps`, lossy ``drop_prob``,
(directional) blackholes, duplication/reorder-jitter link knobs, and
:meth:`ControlChannel.disconnect <repro.control.channel.ControlChannel.disconnect>`
— into randomized but fully seeded campaigns, runs every service through N
scenarios under the :class:`~repro.control.supervisor.SupervisedRuntime`,
and classifies each run:

* ``recovered`` — a result was accepted and it is correct against ground
  truth (possibly after retries);
* ``degraded-correct`` — retries exhausted but the explicit degraded answer
  honours its contract (snapshot under-approximates, anycast names a true
  member or nothing, blackhole suspects cover the dropping edge, critical
  admits ignorance);
* ``wrong-result`` — an answer contradicts ground truth (a lie);
* ``hung`` — the call raised or never returned a classified outcome.

The supervision acceptance bar is **zero hung and zero wrong-result**: every
run either recovers or degrades honestly.  All randomness derives from one
master seed (per-run seeds are a deterministic function of it, and the
simulator draws from the per-network seeded RNG), so re-running a campaign
reproduces the identical outcome-classification JSON byte for byte —
``smartsouth chaos`` exposes this on the CLI and CI pins one campaign as a
regression gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.core.determinism import Rng, seeded_rng

from repro.control.channel import ChannelFaultConfig, ControlChannel
from repro.control.supervisor import (
    ReadoptReport,
    ResyncReport,
    SupervisedRuntime,
    SupervisorConfig,
    check_epoch_ledger,
)
from repro.net.failures import fail_edge_after_steps
from repro.net.link import Direction
from repro.net.simulator import Network, SimulationLimitError
from repro.net.topology import Topology, complete, torus
from repro.net.trace import EventKind
from repro.openflow.errors import TableFullError
from repro.openflow.match import Match
from repro.openflow.actions import Instructions
from repro.openflow.switch import SwitchFaultConfig

#: Outcome classes.
RECOVERED = "recovered"
DEGRADED_CORRECT = "degraded-correct"
WRONG_RESULT = "wrong-result"
HUNG = "hung"

#: Services a campaign can exercise (the paper's four case studies).
SERVICES = ("snapshot", "anycast", "blackhole", "critical")

#: Built-in topology menu (small and 2-edge-connected, so traversals can
#: survive single failures).
TOPOLOGIES: dict[str, Callable[[], Topology]] = {
    "torus3x3": lambda: torus(3, 3),
    "complete5": lambda: complete(5),
}


@dataclass(frozen=True)
class FaultProfile:
    """How much chaos one run injects (upper bounds; draws are seeded)."""

    name: str
    #: Up to this many links get a silent loss probability.
    lossy_links: int = 0
    #: Loss probability upper bound (draws are uniform in [0.05, max_loss]).
    max_loss: float = 0.3
    #: Up to this many visible mid-traversal link failures.
    mid_failures: int = 0
    #: Up to this many silent drop-all blackholes.
    blackholes: int = 0
    #: Allow single-direction blackholes.
    directional: bool = False
    #: Duplication probability applied to a couple of links.
    dup_prob: float = 0.0
    #: Reorder jitter (max extra delay) applied to a couple of links.
    jitter: float = 0.0
    #: Sever the origin's controller connection mid-run (reconnects later).
    disconnect: bool = False
    # -- control-plane knobs (the management network itself misbehaves) -- #
    #: Per-control-message loss probability upper bound (draws are uniform
    #: in [0.05, channel_loss]); routed through the channel's fault queue.
    channel_loss: float = 0.0
    #: Per-control-message duplication probability.
    channel_dup: float = 0.0
    #: Base management-network latency per control message.
    channel_delay: float = 0.0
    #: Extra uniform per-message delay (reorders control messages).
    channel_jitter: float = 0.0
    #: Flap the origin's management connection (down/up partition cycles).
    flap_channel: bool = False
    #: Crash the whole controller mid-traversal; it restarts after a drawn
    #: outage and must resynchronize (the resync-convergence oracle).
    crash: bool = False
    # -- switch-plane knobs (the switches themselves misbehave) ---------- #
    #: Crash one victim switch mid-traversal; it reboots *bare* after a
    #: drawn outage and must be re-adopted (the switch-recovery oracle).
    sw_crash: bool = False
    #: Crash/reboot the victim switch through several cycles (a flapping
    #: box); each reboot loses all flow state again.
    sw_flap: bool = False
    #: Install this many junk entries into a capacity-bounded private table
    #: on the victim mid-run, exercising deterministic eviction and
    #: TABLE_FULL errors plus inventory drift (never packet semantics: the
    #: pressure table is unreachable by any goto chain).
    table_pressure: int = 0
    #: Partial-install interruption probability during re-adoption pushes
    #: (a :class:`~repro.openflow.switch.SwitchFaultConfig` on the victim).
    install_fail: float = 0.0


#: The three stock profiles of the CI campaign matrix.
PROFILES: dict[str, FaultProfile] = {
    "lossy": FaultProfile(
        name="lossy", lossy_links=3, max_loss=0.3, dup_prob=0.05, jitter=0.5
    ),
    "partition": FaultProfile(
        name="partition", lossy_links=1, max_loss=0.15, mid_failures=2,
        disconnect=True,
    ),
    "blackhole": FaultProfile(
        name="blackhole", lossy_links=1, max_loss=0.2, mid_failures=1,
        blackholes=1, directional=True, jitter=0.25,
    ),
    # Control-plane profiles: the data plane is (mostly) healthy and the
    # management network is the thing that fails — the paper's motivating
    # scenario turned into a campaign matrix.
    "ctrl-lossy": FaultProfile(
        name="ctrl-lossy", channel_loss=0.3, channel_dup=0.1,
        channel_delay=1.0, channel_jitter=4.0,
    ),
    "ctrl-flap": FaultProfile(
        name="ctrl-flap", flap_channel=True, channel_delay=1.0,
        lossy_links=1, max_loss=0.1,
    ),
    "ctrl-crash": FaultProfile(
        name="ctrl-crash", crash=True, channel_loss=0.1, lossy_links=1,
        max_loss=0.1,
    ),
    # Switch-plane profiles: the boxes themselves crash, flap, or run out
    # of table space — the data-plane mirror of the control profiles.
    "sw-crash": FaultProfile(
        name="sw-crash", sw_crash=True, lossy_links=1, max_loss=0.1,
        install_fail=0.4,
    ),
    "sw-flap": FaultProfile(
        name="sw-flap", sw_flap=True, install_fail=0.4,
    ),
    "table-pressure": FaultProfile(
        name="table-pressure", table_pressure=24, lossy_links=1,
        max_loss=0.1, install_fail=0.25,
    ),
}

#: The control-plane campaign matrix (the ``chaos --control`` profile set).
CONTROL_PROFILES = ("ctrl-lossy", "ctrl-flap", "ctrl-crash")

#: The switch-plane campaign matrix (the ``chaos --switch`` profile set).
SWITCH_PROFILES = ("sw-crash", "sw-flap", "table-pressure")

#: Table id of the chaos pressure table: far above every compiled service
#: block and never the target of a goto, so junk installed there can drift
#: the inventory digest without ever touching packet semantics.
PRESSURE_TABLE = 200


@dataclass
class ChaosConfig:
    """One campaign: N seeded runs over a service × topology × profile grid."""

    runs: int = 60
    seed: int = 0
    services: tuple[str, ...] = SERVICES
    topologies: tuple[str, ...] = ("torus3x3", "complete5")
    profiles: tuple[str, ...] = ("lossy", "partition", "blackhole")
    #: Supervisor retry budget (chaos needs more patience than the default).
    max_attempts: int = 6

    def validate(self) -> None:
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        for name in self.services:
            if name not in SERVICES:
                raise ValueError(f"unknown service {name!r}")
        for name in self.topologies:
            if name not in TOPOLOGIES:
                raise ValueError(f"unknown topology {name!r}")
        for name in self.profiles:
            if name not in PROFILES:
                raise ValueError(f"unknown fault profile {name!r}")


@dataclass
class RunRecord:
    """Classification of one chaos run (everything that lands in the JSON)."""

    run_id: int
    service: str
    topology: str
    profile: str
    seed: int
    root: int
    faults: list[str]
    outcome: str
    reason: str = ""
    attempts: int = 0
    stale_squashed: int = 0
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "service": self.service,
            "topology": self.topology,
            "profile": self.profile,
            "seed": self.seed,
            "root": self.root,
            "faults": self.faults,
            "outcome": self.outcome,
            "reason": self.reason,
            "attempts": self.attempts,
            "stale_squashed": self.stale_squashed,
            "detail": self.detail,
        }


@dataclass
class CampaignReport:
    """All runs of one campaign plus the aggregate verdict."""

    config: ChaosConfig
    records: list[RunRecord] = field(default_factory=list)
    #: topology name -> outage-liveness violations; ``None`` when the
    #: preflight (:func:`check_outage_liveness`) was not requested.
    outage_liveness: dict[str, list[str]] | None = None

    def outcome_counts(self) -> dict[str, int]:
        counts = {RECOVERED: 0, DEGRADED_CORRECT: 0, WRONG_RESULT: 0, HUNG: 0}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        """The acceptance bar: nothing hung, nothing lied, and — when the
        preflight ran — the full-outage liveness claim held."""
        counts = self.outcome_counts()
        if counts[WRONG_RESULT] or counts[HUNG]:
            return False
        if self.outage_liveness is not None:
            return all(not v for v in self.outage_liveness.values())
        return True

    def to_dict(self) -> dict:
        return {
            "config": {
                "runs": self.config.runs,
                "seed": self.config.seed,
                "services": list(self.config.services),
                "topologies": list(self.config.topologies),
                "profiles": list(self.config.profiles),
                "max_attempts": self.config.max_attempts,
            },
            "summary": self.outcome_counts(),
            "ok": self.ok,
            "outage_liveness": self.outage_liveness,
            "records": [record.to_dict() for record in self.records],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format_summary(self) -> str:
        counts = self.outcome_counts()
        per_service: dict[str, dict[str, int]] = {}
        for record in self.records:
            bucket = per_service.setdefault(record.service, {})
            bucket[record.outcome] = bucket.get(record.outcome, 0) + 1
        lines = [
            f"chaos campaign: {len(self.records)} runs, seed {self.config.seed}",
            f"  recovered        {counts[RECOVERED]}",
            f"  degraded-correct {counts[DEGRADED_CORRECT]}",
            f"  wrong-result     {counts[WRONG_RESULT]}",
            f"  hung             {counts[HUNG]}",
        ]
        for service in sorted(per_service):
            bucket = per_service[service]
            parts = ", ".join(f"{k}={v}" for k, v in sorted(bucket.items()))
            lines.append(f"  {service:<10} {parts}")
        if self.outage_liveness is not None:
            for topology in sorted(self.outage_liveness):
                problems = self.outage_liveness[topology]
                status = "OK" if not problems else "; ".join(problems)
                lines.append(f"  outage-liveness {topology}: {status}")
        lines.append(f"verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Fault planning                                                        #
# --------------------------------------------------------------------- #


def _plan_faults(
    network: Network,
    profile: FaultProfile,
    service: str,
    root: int,
    rng: Rng,
    channel: ControlChannel | None,
) -> list[str]:
    """Draw and apply one run's faults; returns their descriptions.

    The smart-counter blackhole detection assumes visible failures are
    masked *before* a traversal starts (the paper's §3.3 premise: failover
    hides them from the sweep) — mid-traversal visible failures can strand
    its counters at misleading values, so they are injected for every
    service except ``blackhole``.  Duplication is skipped for ``critical``:
    two diverging copies of one stateful verdict traversal is a semantics
    change, not a fault model.
    """
    faults: list[str] = []
    edges = list(range(network.topology.num_edges))

    lossy_count = rng.randint(0, profile.lossy_links) if profile.lossy_links else 0
    for edge_id in sorted(rng.sample(edges, lossy_count)):
        probability = round(rng.uniform(0.05, profile.max_loss), 3)
        network.links[edge_id].set_loss(probability)
        faults.append(f"loss:{edge_id}:{probability}")

    if profile.blackholes and rng.random() < 0.8:
        edge_id = rng.choice(edges)
        direction = None
        if profile.directional and rng.random() < 0.3:
            direction = rng.choice([Direction.A_TO_B, Direction.B_TO_A])
        network.links[edge_id].set_blackhole(direction)
        tag = "both" if direction is None else direction.value
        faults.append(f"blackhole:{edge_id}:{tag}")

    if profile.mid_failures and service != "blackhole":
        count = rng.randint(0, profile.mid_failures)
        for _ in range(count):
            edge_id = rng.choice(edges)
            step = rng.randint(1, 60)
            fail_edge_after_steps(network, edge_id, step)
            faults.append(f"fail:{edge_id}@step{step}")

    if profile.dup_prob and service != "critical":
        for edge_id in sorted(rng.sample(edges, min(2, len(edges)))):
            network.links[edge_id].set_duplication(profile.dup_prob)
            faults.append(f"dup:{edge_id}:{profile.dup_prob}")

    if profile.jitter:
        for edge_id in sorted(rng.sample(edges, min(3, len(edges)))):
            network.links[edge_id].set_jitter(profile.jitter)
            faults.append(f"jitter:{edge_id}:{profile.jitter}")

    if profile.disconnect and channel is not None and rng.random() < 0.6:
        step = rng.randint(1, 25)
        network.at_packet_step(step, lambda: channel.disconnect(root))
        reconnect_at = round(rng.uniform(100.0, 800.0), 1)
        network.sim.at(reconnect_at, lambda: channel.reconnect(root))
        faults.append(f"disconnect:{root}@step{step}:until{reconnect_at}")

    channel_faulty = (
        profile.channel_loss > 0
        or profile.channel_dup > 0
        or profile.channel_delay > 0
        or profile.channel_jitter > 0
    )
    if channel_faulty and channel is not None:
        loss = (
            round(rng.uniform(0.05, profile.channel_loss), 3)
            if profile.channel_loss
            else 0.0
        )
        # Duplicating the trigger of a stateful verdict traversal is a
        # semantics change, same as the link-level dup rule above.
        dup = profile.channel_dup if service != "critical" else 0.0
        channel.set_faults(
            ChannelFaultConfig(
                loss_prob=loss,
                dup_prob=dup,
                delay=profile.channel_delay,
                max_extra_delay=profile.channel_jitter,
                seed=rng.randrange(1 << 32),
            )
        )
        faults.append(
            f"channel:loss{loss}:dup{dup}"
            f":delay{profile.channel_delay}+{profile.channel_jitter}"
        )

    if profile.flap_channel and channel is not None:
        start = round(rng.uniform(5.0, 40.0), 1)
        down = round(rng.uniform(20.0, 120.0), 1)
        up = round(rng.uniform(20.0, 80.0), 1)
        cycles = rng.randint(2, 4)
        channel.flap(root, start, down, up, cycles)
        faults.append(f"flap:{root}@{start}:down{down}:up{up}x{cycles}")

    return faults


# --------------------------------------------------------------------- #
# Ground-truth oracles                                                  #
# --------------------------------------------------------------------- #


def _topology_port_pairs(topology: Topology) -> set[frozenset[tuple[int, int]]]:
    return {
        frozenset(((e.a.node, e.a.port), (e.b.node, e.b.port)))
        for e in topology.edges()
    }


def _live_adjacency(network: Network) -> dict[int, set[int]]:
    adjacency: dict[int, set[int]] = {u: set() for u in network.topology.nodes()}
    for link in network.links:
        if link.up:
            adjacency[link.edge.a.node].add(link.edge.b.node)
            adjacency[link.edge.b.node].add(link.edge.a.node)
    return adjacency


def _component(adjacency: dict[int, set[int]], root: int) -> set[int]:
    seen = {root}
    frontier = [root]
    while frontier:
        u = frontier.pop()
        for v in adjacency[u]:
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return seen


def _is_articulation(network: Network, node: int) -> bool:
    """Is *node* an articulation point of its live component right now?"""
    adjacency = _live_adjacency(network)
    component = _component(adjacency, node)
    others = component - {node}
    if len(others) <= 1:
        return False
    for u in adjacency:
        adjacency[u] = adjacency[u] - {node}
    start = min(others)  # any member works; min() keeps it hash-order-free
    reachable = _component(adjacency, start) & others
    return reachable != others


def _dropping_edges(network: Network) -> set[int]:
    """Edges that silently dropped at least one packet (ground truth)."""
    return {
        link.edge.edge_id
        for link in network.links
        if any(link.dropped.values())
    }


def _reachable_symmetric_blackholes(network: Network, root: int) -> set[int]:
    """Up, drop-all-both-directions blackhole edges in root's component."""
    component = _component(_live_adjacency(network), root)
    return {
        link.edge.edge_id
        for link in network.links
        if link.up
        and all(p >= 1.0 for p in link.drop_prob.values())
        and link.edge.a.node in component
        and link.edge.b.node in component
    }


def _any_faults_experienced(network: Network, channel) -> bool:
    for link in network.links:
        if not link.up or any(link.dropped.values()):
            return True
        if any(p > 0 for p in link.drop_prob.values()):
            return True
        if any(p > 0 for p in link.dup_prob.values()) or link.jitter:
            return True
    if channel is not None and (
        channel.packet_outs_lost
        or channel.packet_ins_lost
        or channel.messages_duplicated
        # Any message that went through the fault queue was delayed (and
        # possibly reordered) relative to the synchronous channel.
        or channel.queue
    ):
        return True
    return False


# --------------------------------------------------------------------- #
# Per-service run + classification                                      #
# --------------------------------------------------------------------- #


def _ledger_problems(supervision) -> str | None:
    """Every supervised call must honour the epoch-ledger contract (the
    runtime half of invariant MC009); a violation is a lie, not a fault."""
    problems = check_epoch_ledger(supervision)
    return "; ".join(problems) if problems else None


def _classify_snapshot(
    runtime: SupervisedRuntime, network: Network, root: int,
    channel: ControlChannel,
) -> tuple[str, str, dict]:
    snap = runtime.snapshot(root)
    supervision = snap.supervision
    detail = {"nodes": sorted(snap.nodes), "links": len(snap.links)}
    ledger = _ledger_problems(supervision)
    if ledger:
        return WRONG_RESULT, f"epoch ledger: {ledger}", detail
    real_pairs = _topology_port_pairs(network.topology)
    all_nodes = set(network.topology.nodes())
    if not snap.degraded:
        if root not in snap.nodes or not snap.nodes <= all_nodes:
            return WRONG_RESULT, "snapshot names unknown nodes", detail
        if not snap.links <= real_pairs:
            return WRONG_RESULT, "snapshot invents links", detail
        if not _any_faults_experienced(network, channel):
            if snap.links != network.live_port_pairs():
                return WRONG_RESULT, "faultless snapshot not exact", detail
        return RECOVERED, supervision.reason, detail
    # Degraded contract: explicit under-approximation, never a lie.
    if snap.links:
        return WRONG_RESULT, "degraded snapshot claims links", detail
    if root not in snap.nodes or not snap.nodes <= all_nodes:
        return WRONG_RESULT, "degraded snapshot names unknown nodes", detail
    return DEGRADED_CORRECT, supervision.reason, detail


def _classify_anycast(
    runtime: SupervisedRuntime, network: Network, root: int, gid: int, groups
) -> tuple[str, str, dict]:
    delivery = runtime.anycast(root, gid, groups)
    members = groups[gid]
    detail = {
        "delivered_at": delivery.delivered_at,
        "fallback": delivery.fallback,
    }
    ledger = _ledger_problems(delivery.supervision)
    if ledger:
        return WRONG_RESULT, f"epoch ledger: {ledger}", detail
    if not delivery.degraded:
        if delivery.delivered_at not in members:
            return WRONG_RESULT, "delivered to a non-member", detail
        return RECOVERED, delivery.supervision.reason, detail
    if delivery.delivered_at is not None and delivery.delivered_at not in members:
        return WRONG_RESULT, "fallback names a non-member", detail
    return DEGRADED_CORRECT, delivery.supervision.reason, detail


def _classify_blackhole(
    runtime: SupervisedRuntime, network: Network, root: int
) -> tuple[str, str, dict]:
    result = runtime.detect_blackhole(root)
    dropping = _dropping_edges(network)
    detail: dict = {}
    ledger = _ledger_problems(result.supervision)
    if ledger:
        return WRONG_RESULT, f"epoch ledger: {ledger}", detail
    if not result.degraded and result.verdict is not None:
        verdict = result.verdict
        if verdict.found:
            node, port = verdict.location
            edge = network.topology.port_edge(node, port)
            detail["location"] = [node, port]
            if edge is None or edge.edge_id not in dropping:
                return WRONG_RESULT, "flagged a link that never dropped", detail
            return RECOVERED, "blackhole located", detail
        detail["location"] = None
        if _reachable_symmetric_blackholes(network, root):
            return WRONG_RESULT, "missed a reachable blackhole", detail
        return RECOVERED, "clean bill of health", detail
    # Degraded: the suspect interval must cover the silent culprit(s) that
    # killed our packets, when any exist on still-live ports.
    detail["suspects"] = len(result.suspects)
    suspect_edges = set()
    for node, port in result.suspects:
        edge = network.topology.port_edge(node, port)
        if edge is not None:
            suspect_edges.add(edge.edge_id)
    packet_ids = {
        pid
        for attempt in result.supervision.attempts
        for pid in attempt.packet_ids
    }
    our_dropping = set()
    for event in network.trace.events(EventKind.DROP):
        if event.packet_id in packet_ids and event.detail:
            edge = network.topology.port_edge(event.detail[0], event.detail[1])
            if edge is not None:
                our_dropping.add(edge.edge_id)
    if our_dropping and not (our_dropping & suspect_edges):
        return WRONG_RESULT, "suspect interval misses the culprit", detail
    return DEGRADED_CORRECT, result.supervision.reason, detail


def _classify_critical(
    runtime: SupervisedRuntime, network: Network, root: int,
    critical_before: bool,
) -> tuple[str, str, dict]:
    verdict = runtime.critical(root)
    detail = {"critical": verdict.critical}
    ledger = _ledger_problems(verdict.supervision)
    if ledger:
        return WRONG_RESULT, f"epoch ledger: {ledger}", detail
    if not verdict.degraded:
        critical_after = _is_articulation(network, root)
        if verdict.critical not in (critical_before, critical_after):
            return WRONG_RESULT, "verdict matches neither pre nor post", detail
        return RECOVERED, verdict.supervision.reason, detail
    if verdict.critical is not None:
        return WRONG_RESULT, "degraded verdict not explicit", detail
    return DEGRADED_CORRECT, verdict.supervision.reason, detail


# --------------------------------------------------------------------- #
# Control-plane oracles                                                 #
# --------------------------------------------------------------------- #


def resync_problems(report: ResyncReport) -> list[str]:
    """The resync-convergence oracle, on one post-crash :class:`ResyncReport`.

    A restarted controller must (a) jump its epoch clock past every epoch
    that could still be in flight — otherwise a pre-crash straggler could be
    accepted against a post-crash epoch — and (b) drive the inventory
    handshake to a fixed point.  Returns human-readable violations.
    """
    problems: list[str] = []
    if report.epoch_after == report.epoch_before:
        problems.append("epoch clock did not jump past in-flight epochs")
    if not report.converged:
        problems.append(
            f"inventory handshake did not converge in {report.rounds} rounds"
        )
    return problems


def readopt_problems(report: ReadoptReport) -> list[str]:
    """The switch-recovery oracle, on one post-run :class:`ReadoptReport`.

    The campaign driver forces every crashed victim back up before
    re-adopting, so a converged report with no dark switches is the only
    acceptable end state: every reachable switch's inventory digest reached
    the compiled fixed point despite partial-install interruptions (the
    attempt ledger in the report audits each retry).  Returns
    human-readable violations.
    """
    problems: list[str] = []
    if not report.converged:
        problems.append(
            f"switch re-adoption did not converge in {report.rounds} rounds "
            f"(still drifted: {sorted(report.drifted_nodes)})"
        )
    if report.dark_nodes:
        problems.append(
            f"switches dark after forced reboot: {sorted(report.dark_nodes)}"
        )
    return problems


def check_outage_liveness(
    seed: int = 0, topology_name: str = "torus3x3"
) -> list[str]:
    """The paper's headline claim as an executable oracle.

    With the controller process entirely gone (:meth:`fail_controller
    <repro.control.channel.ControlChannel.fail_controller>`) and a clean
    data plane, every in-band-triggered service must still produce an
    *exact* answer — not a degraded one — and must do so without a single
    message on the management network.  Returns human-readable violations
    (empty = the claim holds for this seed/topology).
    """
    problems: list[str] = []
    topology = TOPOLOGIES[topology_name]()
    network = Network(topology, seed=seed)
    channel = ControlChannel(network)
    channel.fail_controller()
    runtime = SupervisedRuntime(network, in_band=True)
    rng = seeded_rng(seed ^ 0x5DEECE66D)
    root = rng.randrange(topology.num_nodes)

    snap = runtime.snapshot(root)
    if _ledger_problems(snap.supervision):
        problems.append("snapshot: epoch ledger violated")
    if snap.degraded:
        problems.append("snapshot degraded during outage")
    elif snap.nodes != set(topology.nodes()):
        problems.append("snapshot missed nodes during outage")
    elif snap.links != network.live_port_pairs():
        problems.append("snapshot not exact during outage")

    gid = 1
    others = [n for n in topology.nodes() if n != root]
    groups = {gid: set(rng.sample(others, min(2, len(others))))}
    delivery = runtime.anycast(root, gid, groups)
    if _ledger_problems(delivery.supervision):
        problems.append("anycast: epoch ledger violated")
    if delivery.degraded:
        problems.append("anycast degraded during outage")
    elif delivery.delivered_at not in groups[gid]:
        problems.append("anycast delivered to a non-member during outage")

    blackhole = runtime.detect_blackhole(root)
    if _ledger_problems(blackhole.supervision):
        problems.append("blackhole: epoch ledger violated")
    if blackhole.degraded:
        problems.append("blackhole detection degraded during outage")
    elif blackhole.verdict is None or blackhole.verdict.found:
        problems.append("blackhole verdict wrong on a clean data plane")

    verdict = runtime.critical(root)
    if _ledger_problems(verdict.supervision):
        problems.append("critical: epoch ledger violated")
    if verdict.degraded:
        problems.append("critical-node check degraded during outage")
    elif verdict.critical != _is_articulation(network, root):
        problems.append("critical-node verdict wrong during outage")

    if channel.out_band_messages:
        problems.append(
            f"{channel.out_band_messages} messages used the dead "
            "management network"
        )
    return problems


def control_plane_config(runs: int = 216, seed: int = 0) -> ChaosConfig:
    """The CI control-plane campaign: every service through every control
    profile, well past the 200-run acceptance floor."""
    return ChaosConfig(runs=runs, seed=seed, profiles=CONTROL_PROFILES)


def switch_plane_config(runs: int = 216, seed: int = 0) -> ChaosConfig:
    """The CI switch-plane campaign: every service through every switch
    profile, well past the 200-run acceptance floor."""
    return ChaosConfig(runs=runs, seed=seed, profiles=SWITCH_PROFILES)


def run_switch_campaign(runs: int = 216, seed: int = 0) -> "CampaignReport":
    """The switch-plane chaos campaign (the CI ``chaos-switch`` job).

    Every run with a switch-fault profile finishes with a forced reboot of
    the victim and a full re-adoption sweep, judged by
    :func:`readopt_problems`; a failed recovery flips the run to
    wrong-result, so the report's ``ok`` covers switch recovery too.
    """
    return run_campaign(switch_plane_config(runs=runs, seed=seed))


def run_control_campaign(runs: int = 216, seed: int = 0) -> "CampaignReport":
    """The control-plane chaos campaign plus the full-outage preflight.

    This is what the CI ``chaos-control-plane`` job runs: the
    :func:`check_outage_liveness` oracle on every stock topology, then
    *runs* seeded campaign runs over the control-plane profile matrix.  The
    report's ``ok`` covers both."""
    config = control_plane_config(runs=runs, seed=seed)
    report = run_campaign(config)
    report.outage_liveness = {
        topology: check_outage_liveness(seed, topology)
        for topology in config.topologies
    }
    return report


# --------------------------------------------------------------------- #
# The campaign driver                                                   #
# --------------------------------------------------------------------- #


def run_one(
    run_id: int,
    service: str,
    topology_name: str,
    profile_name: str,
    run_seed: int,
    max_attempts: int = 6,
) -> RunRecord:
    """Execute and classify one seeded chaos run."""
    profile = PROFILES[profile_name]
    topology = TOPOLOGIES[topology_name]()
    network = Network(topology, seed=run_seed)
    plan_rng = seeded_rng(run_seed ^ 0x9E3779B9)
    root = plan_rng.randrange(topology.num_nodes)

    channel = None
    if service != "anycast":
        channel = ControlChannel(network)

    gid, groups = 0, {}
    if service == "anycast":
        gid = 2
        others = [n for n in topology.nodes() if n != root]
        groups = {gid: set(plan_rng.sample(others, min(2, len(others))))}

    critical_before = False
    if service == "critical":
        critical_before = _is_articulation(network, root)

    faults = _plan_faults(network, profile, service, root, plan_rng, channel)

    # Controller crash mid-traversal: the crash arms on a packet step (so it
    # fires *inside* a traversal, the hard case) and schedules its own
    # restore relative to the moment it actually fired.  The callback only
    # flips flags and queues one event — never re-enters the event loop.
    crash_log: list[float] = []
    if profile.crash and channel is not None:
        crash_step = plan_rng.randint(1, 40)
        outage = round(plan_rng.uniform(60.0, 300.0), 1)

        def _crash() -> None:
            crash_log.append(network.sim.now)
            channel.fail_controller()
            network.sim.at(
                network.sim.now + outage, channel.restore_controller
            )

        network.at_packet_step(crash_step, _crash)
        faults.append(f"ctrl-crash@step{crash_step}:outage{outage}")

    # Smart-counter blackhole detection builds a fresh engine per attempt
    # (the counters must start from zero), so there is no persistent switch
    # whose crash and recovery the oracle could observe — switch faults are
    # withheld from the blackhole service, same as visible mid-failures.
    switch_faulted = (
        profile.sw_crash or profile.sw_flap or profile.table_pressure > 0
    ) and service != "blackhole"

    config = SupervisorConfig(max_attempts=max_attempts)
    # Crash and switch-fault runs use compiled switches: the inventory
    # handshake reconciles real per-switch flow state, not a no-op.
    mode = "compiled" if profile.crash or switch_faulted else "interpreted"
    runtime = SupervisedRuntime(network, mode=mode, config=config, channel=channel)

    # Switch-plane faults: the victim box crashes mid-traversal (possibly
    # through several flap cycles) or comes under table pressure.  All
    # durations and the victim are drawn at plan time; the armed callbacks
    # only flip switch flags and queue timer events — they never re-enter
    # the event loop.  Switch objects are resolved at fire time (the
    # engines compile lazily on the first supervised call).
    victim = -1
    install_seed = 0
    pressure_stats: dict = {}
    if switch_faulted:
        victim = plan_rng.randrange(topology.num_nodes)
        install_seed = plan_rng.randrange(1 << 32)
        if profile.sw_crash or profile.sw_flap:
            crash_step = plan_rng.randint(1, 40)
            cycles = plan_rng.randint(2, 3) if profile.sw_flap else 1
            outages = [
                round(plan_rng.uniform(40.0, 200.0), 1) for _ in range(cycles)
            ]
            gaps = [
                round(plan_rng.uniform(30.0, 90.0), 1) for _ in range(cycles)
            ]

            def _sw_crash() -> None:
                switches = runtime.switches_at(victim)

                def _crash_all() -> None:
                    for sw in switches:
                        sw.crash()

                def _reboot_all() -> None:
                    for sw in switches:
                        sw.reboot()

                _crash_all()
                now = network.sim.now
                offset = 0.0
                for index in range(cycles):
                    network.sim.at(now + offset + outages[index], _reboot_all)
                    offset += outages[index] + gaps[index]
                    if index + 1 < cycles:
                        network.sim.at(now + offset, _crash_all)

            network.at_packet_step(crash_step, _sw_crash)
            kind = "sw-flap" if profile.sw_flap else "sw-crash"
            cycle_tags = ",".join(
                f"down{outage}+up{gap}" for outage, gap in zip(outages, gaps)
            )
            faults.append(f"{kind}:{victim}@step{crash_step}:{cycle_tags}")
        if profile.table_pressure:
            pressure_step = plan_rng.randint(1, 30)
            capacity = plan_rng.randint(6, 10)
            junk = [
                plan_rng.randint(0, 5) for _ in range(profile.table_pressure)
            ]

            def _pressure() -> None:
                for sw in runtime.switches_at(victim):
                    table = sw.table(PRESSURE_TABLE)
                    table.set_capacity(capacity, evict=True)
                    rejected = 0
                    for position, priority in enumerate(junk):
                        try:
                            table.install(
                                Match(junk=position),
                                Instructions(),
                                priority=priority,
                                cookie=f"chaos-junk-{position}",
                            )
                        except TableFullError:
                            rejected += 1
                    pressure_stats["capacity"] = capacity
                    pressure_stats["installed"] = len(table)
                    pressure_stats["rejected"] = rejected
                    pressure_stats["evicted"] = table.evictions

            network.at_packet_step(pressure_step, _pressure)
            faults.append(
                f"table-pressure:{victim}@step{pressure_step}"
                f":cap{capacity}x{profile.table_pressure}"
            )

    record = RunRecord(
        run_id=run_id,
        service=service,
        topology=topology_name,
        profile=profile_name,
        seed=run_seed,
        root=root,
        faults=faults,
        outcome=HUNG,
    )
    try:
        if service == "snapshot":
            outcome, reason, detail = _classify_snapshot(
                runtime, network, root, channel
            )
        elif service == "anycast":
            outcome, reason, detail = _classify_anycast(
                runtime, network, root, gid, groups
            )
        elif service == "blackhole":
            outcome, reason, detail = _classify_blackhole(runtime, network, root)
        elif service == "critical":
            outcome, reason, detail = _classify_critical(
                runtime, network, root, critical_before
            )
        else:  # pragma: no cover - ChaosConfig.validate rejects this
            raise ValueError(f"unknown service {service!r}")
        record.outcome = outcome
        record.reason = reason
        record.detail = detail
        if crash_log and channel is not None:
            # The controller actually died mid-run: it must come back and
            # resynchronize, and the resync must converge (the
            # resync-convergence oracle).  The scheduled restore may still
            # be pending; restoring twice is idempotent.
            channel.restore_controller()
            resync = runtime.resynchronize(root)
            record.detail["resync"] = {
                "converged": resync.converged,
                "rounds": resync.rounds,
                "epoch_jump": [resync.epoch_before, resync.epoch_after],
                "reprogrammed": list(resync.reprogrammed_nodes),
                "unreachable": sorted(set(resync.unreachable_nodes)),
                "relearned_nodes": len(resync.relearned_nodes),
                "topology_degraded": resync.topology_degraded,
            }
            problems = resync_problems(resync)
            if problems and record.outcome in (RECOVERED, DEGRADED_CORRECT):
                record.outcome = WRONG_RESULT
                record.reason = "resync: " + "; ".join(problems)
        if switch_faulted:
            # The switch-recovery oracle: force any still-dark victim back
            # up (rebooting an up switch is a no-op), arm the seeded
            # partial-install fault model, and drive re-adoption to the
            # inventory-digest fixed point.  A recovery that fails to
            # converge — or leaves switches dark — flips the run.
            for sw in runtime.switches_at(victim):
                sw.reboot()
                if profile.install_fail:
                    sw.set_faults(
                        SwitchFaultConfig(
                            partial_install_prob=profile.install_fail,
                            fail_budget=2,
                            seed=install_seed,
                        )
                    )
            readopt = runtime.readopt()
            ledger: dict[str, int] = {}
            for attempt in readopt.attempts:
                ledger[attempt.status] = ledger.get(attempt.status, 0) + 1
            record.detail["readopt"] = {
                "converged": readopt.converged,
                "rounds": readopt.rounds,
                "reprogrammed": list(readopt.reprogrammed_nodes),
                "dark": sorted(set(readopt.dark_nodes)),
                "unreachable": sorted(set(readopt.unreachable_nodes)),
                "ledger": ledger,
            }
            if pressure_stats:
                record.detail["table_pressure"] = dict(pressure_stats)
            problems = readopt_problems(readopt)
            if problems and record.outcome in (RECOVERED, DEGRADED_CORRECT):
                record.outcome = WRONG_RESULT
                record.reason = "readopt: " + "; ".join(problems)
    except SimulationLimitError:
        record.outcome = HUNG
        record.reason = "event budget exhausted"
    except Exception as exc:  # noqa: BLE001 - chaos must classify, not crash
        record.outcome = HUNG
        record.reason = f"{type(exc).__name__}: {exc}"
    return record


def run_campaign(config: ChaosConfig | None = None) -> CampaignReport:
    """Run a full seeded campaign over the service × topology × profile grid.

    Runs are dealt round-robin over the grid so every combination gets
    within-one-of-equal coverage regardless of the total run count.
    """
    config = config or ChaosConfig()
    config.validate()
    grid = [
        (service, topology, profile)
        for service in config.services
        for topology in config.topologies
        for profile in config.profiles
    ]
    report = CampaignReport(config=config)
    for index in range(config.runs):
        service, topology, profile = grid[index % len(grid)]
        run_seed = config.seed * 1_000_003 + index
        report.records.append(
            run_one(
                index, service, topology, profile, run_seed,
                max_attempts=config.max_attempts,
            )
        )
    return report


def replay_run(report: dict, run_id: int) -> tuple[RunRecord, list[str]]:
    """Re-run one recorded campaign run and diff it against its record.

    *report* is a parsed campaign JSON (the :meth:`CampaignReport.to_dict`
    shape).  The run's service/topology/profile/seed and the campaign's
    retry budget all come from the file, so a replay needs nothing but the
    report — and, the harness being deterministic, must reproduce the
    record byte-for-byte.  Returns the fresh record plus the field-level
    mismatches (an empty list is a faithful replay); this is how a single
    flagged run from a CI campaign is pulled out and studied locally.
    """
    records = {rec["run_id"]: rec for rec in report.get("records", ())}
    if run_id not in records:
        raise ValueError(
            f"no run {run_id} in report ({len(records)} records)"
        )
    original = records[run_id]
    max_attempts = report.get("config", {}).get("max_attempts", 6)
    fresh = run_one(
        run_id,
        original["service"],
        original["topology"],
        original["profile"],
        original["seed"],
        max_attempts=max_attempts,
    )
    fresh_dict = fresh.to_dict()
    mismatches = []
    for key in sorted(set(original) | set(fresh_dict)):
        was = json.dumps(original.get(key), sort_keys=True)
        now = json.dumps(fresh_dict.get(key), sort_keys=True)
        if was != now:
            mismatches.append(f"{key}: recorded {was} != replayed {now}")
    return fresh, mismatches


def ledger_violations(report: CampaignReport) -> list[str]:  # pragma: no cover
    """Convenience for tests: re-run the campaign's supervised calls is not
    possible post hoc, so this only validates the records' invariant that no
    outcome class is missing."""
    problems = []
    for record in report.records:
        if record.outcome not in (RECOVERED, DEGRADED_CORRECT, WRONG_RESULT, HUNG):
            problems.append(f"run {record.run_id}: bad outcome {record.outcome}")
    return problems
