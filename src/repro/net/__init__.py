"""Network substrate: topologies, link state, traces, and the event simulator."""

from repro.net.link import Direction, Link
from repro.net.simulator import Network, Simulator
from repro.net.topofile import load as load_topology
from repro.net.topofile import save as save_topology
from repro.net.topology import Topology, TopologyError, generators
from repro.net.trace import Trace, TraceEvent

__all__ = [
    "Direction",
    "Link",
    "Network",
    "Simulator",
    "Topology",
    "TopologyError",
    "Trace",
    "TraceEvent",
    "generators",
    "load_topology",
    "save_topology",
]
